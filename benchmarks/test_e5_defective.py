"""E5 — Corollary 1.2(5)/(6): d-defective O((Delta/d)^2) colorings."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e5
from repro.core import corollaries
from repro.verify.coloring import assert_defective_coloring


def test_e5_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(
        run_e5, kwargs=dict(n=300, delta=16, epsilons=(0.25, 0.5, 0.75)), rounds=1, iterations=1
    )
    record_table("E5_defective", table)
    for d, defect in zip(table.column("d"), table.column("max defect")):
        assert defect <= d


@pytest.mark.parametrize("d", [2, 4, 8])
def test_e5_kernel_one_round(benchmark, d):
    graph, colors, m = delta4_colored_graph("random_regular", 600, 16, seed=5)

    def kernel():
        return corollaries.defective_coloring_one_round(graph, colors, m, d=d, backend="array")

    result = benchmark(kernel)
    assert result.rounds == 1
    assert_defective_coloring(graph, result.colors, d=d)
