"""E8 — Theorem 1.5: (2, r)-ruling sets vs the SEW13-style baseline."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e8
from repro.core import ruling_sets
from repro.verify.ruling import assert_ruling_set


def test_e8_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(
        run_e8, kwargs=dict(n=300, delta=16, rs=(2, 3)), rounds=1, iterations=1
    )
    record_table("E8_ruling_sets", table)
    rows = table.to_dicts()
    # For every r, the Lemma 3.2 phase with the better coloring (Theorem 1.5)
    # must use at most as many ruling rounds as the Delta^2 baseline.
    for r in (2, 3):
        ours = next(x for x in rows if x["r"] == r and x["method"] == "Theorem 1.5")
        base = next(x for x in rows if x["r"] == r and x["method"] == "SEW13 baseline")
        assert ours["ruling rounds only"] <= base["ruling rounds only"]


@pytest.mark.parametrize("r", [2, 3])
def test_e8_kernel_theorem15(benchmark, r):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=8)

    def kernel():
        return ruling_sets.ruling_set_theorem15(graph, colors, m, r=r, backend="array")

    result = benchmark(kernel)
    assert_ruling_set(graph, result.vertices, r=max(r, result.r))


@pytest.mark.parametrize("r", [2, 3])
def test_e8_kernel_sew13_baseline(benchmark, r):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=8)

    def kernel():
        return ruling_sets.ruling_set_sew13_baseline(graph, colors, m, r=r, backend="array")

    result = benchmark(kernel)
    assert_ruling_set(graph, result.vertices, r=max(r, result.r))
