"""E3 — Corollary 1.2(3): Delta^2 colors in O(1) rounds (k = ceil(Delta/16))."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e3
from repro.core import corollaries
from repro.verify.coloring import assert_proper_coloring


def test_e3_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(run_e3, kwargs=dict(n=400, deltas=(8, 16, 32)), rounds=1, iterations=1)
    record_table("E3_delta_squared", table)
    assert all(r <= 256 for r in table.column("rounds"))
    for used, bound in zip(table.column("colors used"), table.column("color bound Delta^2")):
        assert used <= max(bound, 256)


@pytest.mark.parametrize("delta", [16, 32])
def test_e3_kernel(benchmark, delta):
    graph, colors, m = delta4_colored_graph("random_regular", 600, delta, seed=3)

    def kernel():
        return corollaries.delta_squared_coloring(graph, colors, m, backend="array")

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors)
    assert result.rounds <= 256
