"""E6 — the (Delta+1)-coloring pipeline: IDs -> Linial -> k=1 mother -> class removal."""

import pytest

from repro.analysis.experiments import run_e6
from repro.congest import generators
from repro.core import pipelines
from repro.verify.coloring import assert_proper_coloring


def test_e6_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(
        run_e6, kwargs=dict(sizes=(100, 400, 1000), delta=12), rounds=1, iterations=1
    )
    record_table("E6_delta_plus_one", table)
    for used, target in zip(table.column("colors used"), table.column("Delta+1")):
        assert used <= target


@pytest.mark.parametrize("n,delta", [(500, 8), (500, 16), (2000, 8)])
def test_e6_kernel_pipeline(benchmark, n, delta):
    graph = generators.random_regular(n, delta, seed=6)

    def kernel():
        return pipelines.delta_plus_one_coloring(graph, seed=6, backend="array")

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)
