"""E10 — the mother algorithm vs the baselines the paper discusses."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e10
from repro.core import baselines
from repro.core.corollaries import kdelta_coloring
from repro.core.reduce import kuhn_wattenhofer_reduction, remove_color_class_reduction
from repro.verify.coloring import assert_proper_coloring


def test_e10_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(run_e10, kwargs=dict(n=300, delta=16), rounds=1, iterations=1)
    record_table("E10_baselines", table)
    assert len(table.rows) >= 7


def test_e10_kernel_beg18_baseline(benchmark):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=10)

    def kernel():
        return baselines.locally_iterative_beg18(graph, colors, m, backend="array")

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)


def test_e10_kernel_kw_reduction(benchmark):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=10)
    start = kdelta_coloring(graph, colors, m, k=1, backend="array")

    def kernel():
        return kuhn_wattenhofer_reduction(graph, start.colors, start.color_space_size)

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)


def test_e10_kernel_class_removal(benchmark):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=10)
    start = kdelta_coloring(graph, colors, m, k=1, backend="array")

    def kernel():
        return remove_color_class_reduction(graph, start.colors)

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)


def test_e10_kernel_luby(benchmark):
    graph, _, _ = delta4_colored_graph("random_regular", 400, 16, seed=10)

    def kernel():
        return baselines.luby_randomized_coloring(graph, seed=10)

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)
