"""E9 — Theorem 1.6: one-round reduction of exactly k colors, and its tightness."""

import pytest

from repro.analysis.experiments import run_e9
from repro.congest import generators
from repro.congest.ids import random_proper_coloring
from repro.core import one_round
from repro.verify.coloring import assert_proper_coloring


def test_e9_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(run_e9, kwargs=dict(n=200, deltas=(4, 6, 8)), rounds=1, iterations=1)
    record_table("E9_one_round", table)
    assert all(table.column("proper"))
    assert all(r == 1 for r in table.column("rounds"))


@pytest.mark.parametrize("delta", [8, 16, 32])
def test_e9_kernel_lemma41(benchmark, delta):
    k = min(delta - 1, (delta + 3) // 2)
    m = one_round.required_input_colors(delta, k)
    graph = generators.random_regular(1000, delta, seed=9)
    colors, m = random_proper_coloring(graph, num_colors=m, seed=9)

    def kernel():
        return one_round.one_round_color_reduction(graph, colors, m, k=k, delta=delta)

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors, max_colors=m - k)


def test_e9_kernel_lemma43_exhaustive_checker(benchmark):
    # The impossibility side for the smallest non-trivial case (Delta = 3).
    def kernel():
        return one_round.one_round_reduction_exists(m=4, delta=3, output_colors=3)

    assert benchmark(kernel) is False
