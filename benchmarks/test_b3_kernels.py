"""B3 — frontier-compacted array kernels vs the pre-compaction kernels.

The acceptance bar of the kernel-compaction work: on a large-graph
(``n >= 50,000``) ``delta_plus_one`` sweep the compacted array backend must be
at least 3x faster in wall-clock than the *pre-compaction* kernels while
producing bit-identical colors and round counts.

The pre-compaction kernels are replicated verbatim below (full ``(n, q)``
sequence table up front, a Python loop over the batch's trial positions with
full-edge temporaries per position, a per-call ``np.repeat`` edge-source
array, a full ``2|E|`` scan per removed color class, and input validation
inside every interior mother call) so the comparison measures exactly what
this change removed.  Output identity against the legacy pipeline is asserted
inside the benchmark; identity against the model-faithful reference backend
is property-tested in ``tests/`` and spot-checked here on a cell the
reference simulator can handle.
"""

import time

import numpy as np

from repro.analysis.tables import Table
from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.ids import assign_unique_ids, validate_proper_coloring
from repro.core import pipelines
from repro.core.params import MotherParameters
from repro.core.vectorized import evaluate_all_sequences
from repro.engine import BatchRunner, GraphSpec
from repro.verify.coloring import assert_proper_coloring

FAMILY = "random_regular"
N = 50_000
DELTA = 8
SEEDS = (3, 4)
MIN_SPEEDUP = 3.0
PARITY_CELL_CEILING_SECONDS = 60.0


# --------------------------------------------------------------------------- #
# The pre-compaction kernels, replicated exactly (the "before" side).
# --------------------------------------------------------------------------- #


def _legacy_run_mother(graph, input_colors, m, d=0, k=1, params=None, validate_input=True):
    """The pre-compaction vectorized mother kernel: full-graph work per batch."""
    input_colors = np.asarray(input_colors, dtype=np.int64)
    delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if params is None:
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)

    n = graph.n
    q, k_eff, dd = params.q, params.k, params.d
    values = evaluate_all_sequences(input_colors, params)

    indices = graph.indices
    src_index = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)

    colors = -np.ones(n, dtype=np.int64)
    parts = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rounds = 0

    for batch in range(params.num_batches):
        if not active.any():
            break
        rounds = batch + 1
        lo = batch * k_eff
        hi = min(lo + k_eff, q)
        width = hi - lo

        counts = np.zeros((n, width), dtype=np.int64)
        nbr_active = active[indices]
        nbr_colors = colors[indices]
        for l in range(width):
            x = lo + l
            val = values[:, x]
            trial_color = (x % k_eff) * q + val
            same_value = (val[indices] == val[src_index]) & nbr_active
            same_final = (~nbr_active) & (nbr_colors == trial_color[src_index])
            hits = (same_value | same_final).astype(np.int64)
            counts[:, l] = np.bincount(src_index, weights=hits, minlength=n).astype(np.int64)

        ok = counts <= dd
        has_slot = ok.any(axis=1)
        first = np.argmax(ok, axis=1)
        adopters = active & has_slot
        if np.any(adopters):
            xs = lo + first[adopters]
            vals = values[adopters, xs]
            colors[adopters] = (xs % k_eff) * q + vals
            parts[adopters] = batch + 1
            active[adopters] = False

    assert not active.any()
    return colors, parts, rounds, params


def _legacy_remove_color_class(graph, colors, target_colors):
    """The pre-compaction array reduction: one full ``2|E|`` scan per class."""
    colors = np.asarray(colors, dtype=np.int64).copy()
    indices = graph.indices
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    rounds = 0
    while colors.size and int(colors.max()) >= target_colors:
        current = int(colors.max())
        affected_mask = colors == current
        vertices = np.nonzero(affected_mask)[0]
        sel = affected_mask[src]
        rows = np.searchsorted(vertices, src[sel])
        nbr_colors = colors[indices[sel]]
        used = np.zeros((vertices.size, target_colors), dtype=bool)
        in_range = nbr_colors < target_colors
        used[rows[in_range], nbr_colors[in_range]] = True
        colors[vertices] = np.argmax(~used, axis=1)
        rounds += 1
    return colors, rounds


def _legacy_single_batch_params(m, delta):
    probe = MotherParameters.derive(m=m, delta=delta, d=0, k=1)
    return MotherParameters(m=probe.m, delta=probe.delta, d=probe.d, k=probe.q,
                            f=probe.f, q=probe.q)


def _legacy_delta_plus_one(graph: Graph, seed: int):
    """The pre-compaction (Delta+1) pipeline: Linial -> k=1 mother -> removal.

    Replicates the exact stage structure of
    :func:`repro.core.pipelines.delta_plus_one_coloring` on the old kernels,
    including the per-interior-call input validation the compacted pipeline
    hoisted to the entry.
    """
    delta = max(1, graph.max_degree)

    # Stage 1: Linial's iterated one-round reduction from unique IDs.
    ids = assign_unique_ids(graph, seed=seed)
    colors = np.asarray(ids, dtype=np.int64)
    space = int(ids.max()) + 1 if ids.size else 1
    target = 256 * delta * delta
    stage1_rounds = 0
    for _ in range(64):
        if space <= target:
            break
        params = _legacy_single_batch_params(space, delta)
        colors, _, _, params = _legacy_run_mother(
            graph, colors, space, d=0, k=params.k, params=params
        )
        new_space = params.color_space_size
        if new_space >= space:
            break
        stage1_rounds += 1
        space = new_space

    # Stage 2: the k = 1 mother algorithm down to O(Delta) colors.
    colors, _, stage2_rounds, _ = _legacy_run_mother(graph, colors, space, d=0, k=1)

    # Stage 3: color-class removal down to Delta + 1.
    colors, stage3_rounds = _legacy_remove_color_class(graph, colors, delta + 1)
    return colors, stage1_rounds + stage2_rounds + stage3_rounds


# --------------------------------------------------------------------------- #
# The benchmark
# --------------------------------------------------------------------------- #


def test_b3_compacted_kernels_speedup(record_table, record_json, machine_cores):
    graphs = [generators.random_regular(N, DELTA, seed=s) for s in SEEDS]

    legacy_seconds = 0.0
    compacted_seconds = 0.0
    rows = []
    for seed, graph in zip(SEEDS, graphs):
        start = time.perf_counter()
        legacy_colors, legacy_rounds = _legacy_delta_plus_one(graph, seed=seed)
        legacy_cell = time.perf_counter() - start

        start = time.perf_counter()
        res = pipelines.delta_plus_one_coloring(graph, seed=seed, backend="array")
        compacted_cell = time.perf_counter() - start

        # Bit-identical outputs: the compaction changed the cost model only.
        assert np.array_equal(res.colors, legacy_colors)
        assert res.rounds == legacy_rounds
        assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)

        legacy_seconds += legacy_cell
        compacted_seconds += compacted_cell
        rows.append((seed, legacy_cell, compacted_cell, res.rounds))

    speedup = legacy_seconds / max(compacted_seconds, 1e-9)
    cores = machine_cores
    table = Table(
        f"B3 — frontier-compacted array kernels: {len(SEEDS)}-cell delta_plus_one sweep, "
        f"{FAMILY}(n={N}, Delta={DELTA}), pre-compaction vs compacted kernels",
        ["seed", "pre-compaction seconds", "compacted seconds", "speedup", "rounds"],
    )
    for seed, legacy_cell, compacted_cell, rounds in rows:
        table.add_row(seed, round(legacy_cell, 3), round(compacted_cell, 3),
                      round(legacy_cell / max(compacted_cell, 1e-9), 2), rounds)
    table.add_row("total", round(legacy_seconds, 3), round(compacted_seconds, 3),
                  round(speedup, 2), "")
    table.add_note(
        "Identical colors and round counts per cell (asserted in the benchmark): the "
        "compacted kernels gather only the CSR entries incident to still-active vertices, "
        "count conflicts with one 2-D scatter-add over the compacted edges, evaluate "
        "polynomial sequences lazily per chunk, bucket removal classes with one argsort, "
        "and validate the input coloring once at pipeline entry.  The pre-compaction side "
        "is the verbatim pre-change kernel code, kept in this file.  Reference-backend "
        f"parity is property-tested in tests/.  Measured on {cores} CPU core(s)."
    )
    record_table("B3_kernels", table)
    record_json("B3", {
        "benchmark": "B3_kernels",
        "task": "delta_plus_one",
        "family": FAMILY,
        "n": N,
        "delta": DELTA,
        "seeds": list(SEEDS),
        "cells": len(SEEDS),
        "cores": cores,
        "legacy_seconds": round(legacy_seconds, 4),
        "compacted_seconds": round(compacted_seconds, 4),
        "speedup": round(speedup, 2),
        "cells_per_sec": round(len(SEEDS) / max(compacted_seconds, 1e-9), 3),
        "vertices_per_sec": round(len(SEEDS) * N / max(compacted_seconds, 1e-9)),
        "outputs_identical": True,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"compacted kernels only {speedup:.2f}x faster than the pre-compaction kernels "
        f"({compacted_seconds:.3f}s vs {legacy_seconds:.3f}s)"
    )


def test_b3_parity_checked_cell_under_ceiling():
    """The CI smoke bar: a parity-checked large-ish cell finishes quickly.

    The reference simulator bounds the cell size (one Python object per node),
    so the parity-checked cell runs at n=2000; the n=50,000 array-only cell is
    covered by the speedup benchmark above and by the CI kernel-smoke job.
    """
    runner = BatchRunner(backend="array", parity_check=True)
    start = time.perf_counter()
    result = runner.run("delta_plus_one", [GraphSpec(FAMILY, 2000, DELTA, seed=1)])
    elapsed = time.perf_counter() - start
    assert len(result) == 1
    assert elapsed < PARITY_CELL_CEILING_SECONDS, (
        f"parity-checked n=2000 cell took {elapsed:.1f}s "
        f"(ceiling {PARITY_CELL_CEILING_SECONDS}s)"
    )


def test_b3_kernel_compacted_pipeline(benchmark):
    graph = generators.random_regular(N, DELTA, seed=SEEDS[0])

    def kernel():
        return pipelines.delta_plus_one_coloring(graph, seed=SEEDS[0], backend="array")

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)
