"""B5 — the compiled jit backend vs the array backend.

The acceptance bar of the jit-backend work: on the B3 kernel sweep
(``delta_plus_one`` over ``random_regular(n=50,000, Delta=8)`` cells) the jit
backend must be at least 3x faster end-to-end than the array backend while
producing bit-identical colors and round counts, with compile/warm-up time
excluded from the timed cells and reported separately.  A second bar tracks
the proportional drop on B4's n = 10^6 per-cell wall-clock through the
``BatchRunner`` path.

The jit backend resolves its kernels from a tiered provider — numba
``@njit(parallel=True)`` when numba is installed, an OpenMP C extension
compiled on first use otherwise (see ``repro.core.kernels_jit``).  When
neither tier is available the engine runs on the array path; the benchmark
then records ``fallback: true`` instead of asserting the bar, so the file
stays green on machines without any compiled tier while CI's numba job
enforces the speedup.

The machine-readable record lands in ``benchmarks/results/BENCH_B5.json``
(per-kernel and end-to-end speedups, kernel tier, thread count, cold-compile
vs warm-setup seconds); CI uploads it as an artifact.
"""

import time

import numpy as np

from repro.analysis.tables import Table
from repro.congest import generators
from repro.core import pipelines
from repro.core.kernels_jit import get_provider
from repro.engine import BatchRunner, GraphSpec, JitEngine, get_engine
from repro.verify.coloring import assert_proper_coloring

FAMILY = "random_regular"
N = 50_000
DELTA = 8
SEEDS = (3, 4)
MIN_SPEEDUP = 3.0
SCALE_CELL = GraphSpec("grid", 1_000_000, 4, seed=0)
SCALE_TASK = "delta_plus_one"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _cold_setup_seconds(provider) -> dict:
    """Cold-path setup costs, measured outside every timed cell.

    ``warmup_seconds`` is a fresh engine's :meth:`JitEngine.warmup` (numba's
    first-call compilation, or the C tier's load) — possibly served from the
    tier's on-disk cache.  For the C tier a genuinely cold compile is also
    measured into a throwaway cache directory.
    """
    import tempfile

    engine = JitEngine()
    _, warmup_seconds = _timed(engine.warmup)
    cold = {"warmup_seconds": round(warmup_seconds, 4)}
    if provider is not None and provider.kind == "cc":
        from repro.core import kernels_cc

        with tempfile.TemporaryDirectory() as tmp:
            _, info = kernels_cc.build_library(tmp)
        cold["cc_cold_compile_seconds"] = round(info["compile_seconds"], 4)
    return cold


def test_b5_jit_speedup(record_table, record_json, machine_cores):
    provider = get_provider()
    available = provider is not None
    kind = provider.kind if available else None
    threads = provider.threads if available else 1

    cold = _cold_setup_seconds(provider)
    arr = get_engine("array")
    jit = get_engine("jit")
    jit.warmup()

    # ------------------------------------------------------------------ #
    # Per-kernel timings (seed SEEDS[0] graph), outputs asserted identical
    # ------------------------------------------------------------------ #
    graph = generators.random_regular(N, DELTA, seed=SEEDS[0])
    ids = np.arange(graph.n, dtype=np.int64)

    mother_a, t_mother_a = _timed(lambda: arr.run_mother(graph, ids, m=graph.n, d=0, k=1))
    mother_j, t_mother_j = _timed(lambda: jit.run_mother(graph, ids, m=graph.n, d=0, k=1))
    assert np.array_equal(mother_a.colors, mother_j.colors)
    assert mother_a.rounds == mother_j.rounds

    remove_a, t_remove_a = _timed(lambda: arr.remove_color_class(graph, mother_a.colors))
    remove_j, t_remove_j = _timed(lambda: jit.remove_color_class(graph, mother_j.colors))
    assert np.array_equal(remove_a.colors, remove_j.colors)
    assert remove_a.rounds == remove_j.rounds

    kw_a, t_kw_a = _timed(lambda: arr.kuhn_wattenhofer(graph, ids, graph.n))
    kw_j, t_kw_j = _timed(lambda: jit.kuhn_wattenhofer(graph, ids, graph.n))
    assert np.array_equal(kw_a.colors, kw_j.colors)
    assert kw_a.rounds == kw_j.rounds

    kernels = {
        "run_mother": (t_mother_a, t_mother_j),
        "remove_color_class": (t_remove_a, t_remove_j),
        "kuhn_wattenhofer": (t_kw_a, t_kw_j),
    }

    # ------------------------------------------------------------------ #
    # End-to-end: the B3 sweep, array vs jit (warm; compile cost excluded)
    # ------------------------------------------------------------------ #
    array_seconds = 0.0
    jit_seconds = 0.0
    rows = []
    for seed in SEEDS:
        cell_graph = generators.random_regular(N, DELTA, seed=seed)
        res_a, cell_a = _timed(
            lambda: pipelines.delta_plus_one_coloring(cell_graph, seed=seed, backend="array")
        )
        res_j, cell_j = _timed(
            lambda: pipelines.delta_plus_one_coloring(cell_graph, seed=seed, backend="jit")
        )
        assert np.array_equal(res_a.colors, res_j.colors)
        assert res_a.rounds == res_j.rounds
        assert_proper_coloring(cell_graph, res_j.colors, max_colors=cell_graph.max_degree + 1)
        array_seconds += cell_a
        jit_seconds += cell_j
        rows.append((seed, cell_a, cell_j, res_j.rounds))

    speedup = array_seconds / max(jit_seconds, 1e-9)

    tier = kind if available else "array fallback"
    table = Table(
        f"B5 — jit backend ({tier}, {threads} thread(s)): {len(SEEDS)}-cell "
        f"delta_plus_one sweep, {FAMILY}(n={N}, Delta={DELTA}), array vs jit",
        ["cell", "array seconds", "jit seconds", "speedup", "rounds"],
    )
    for name, (ka, kj) in kernels.items():
        table.add_row(f"kernel: {name}", round(ka, 3), round(kj, 3),
                      round(ka / max(kj, 1e-9), 2), "")
    for seed, cell_a, cell_j, rounds in rows:
        table.add_row(f"sweep seed {seed}", round(cell_a, 3), round(cell_j, 3),
                      round(cell_a / max(cell_j, 1e-9), 2), rounds)
    table.add_row("sweep total", round(array_seconds, 3), round(jit_seconds, 3),
                  round(speedup, 2), "")
    table.add_note(
        "Identical colors and round counts asserted per kernel and per cell.  The jit "
        "kernels fuse the gather + conflict-count loops per vertex over the raw CSR "
        "triplet, never materializing the (active_edges x trials) intermediates; the "
        "driver keeps the array twin's exact batch structure so tie-breaking matches "
        "bit for bit.  Compile/warm-up cost is excluded from every timed cell and "
        f"reported separately ({cold}).  Measured on {machine_cores} CPU core(s)."
    )
    record_table("B5_jit", table)
    record_json("B5", {
        "benchmark": "B5_jit",
        "task": "delta_plus_one",
        "family": FAMILY,
        "n": N,
        "delta": DELTA,
        "seeds": list(SEEDS),
        "cores": machine_cores,
        "kernel_tier": kind,
        "threads": threads,
        "fallback": not available,
        "cold": cold,
        "kernels": {
            name: {
                "array_seconds": round(ka, 4),
                "jit_seconds": round(kj, 4),
                "speedup": round(ka / max(kj, 1e-9), 2),
            }
            for name, (ka, kj) in kernels.items()
        },
        "end_to_end": {
            "array_seconds": round(array_seconds, 4),
            "jit_seconds": round(jit_seconds, 4),
            "speedup": round(speedup, 2),
            "min_required_speedup": MIN_SPEEDUP,
        },
        "outputs_identical": True,
    }, backend="jit")

    if available:
        assert speedup >= MIN_SPEEDUP, (
            f"jit backend ({kind}) only {speedup:.2f}x faster than the array backend "
            f"({jit_seconds:.3f}s vs {array_seconds:.3f}s)"
        )


def test_b5_scale_cell_wall_clock(record_json, machine_cores):
    """B4's n = 10^6 per-cell wall-clock through the jit backend.

    Runs the B4 sweep cell through ``BatchRunner`` on both backends and
    records the proportional drop; records must be byte-identical modulo the
    wall-clock ``seconds`` and the ``backend`` tag.
    """
    provider = get_provider()

    serial_a, array_elapsed = _timed(
        lambda: BatchRunner(backend="array").run(SCALE_TASK, [SCALE_CELL])
    )
    serial_j, jit_elapsed = _timed(
        lambda: BatchRunner(backend="jit").run(SCALE_TASK, [SCALE_CELL])
    )

    def stripped(result):
        return [{k: v for k, v in rec.items() if k not in ("seconds", "backend")}
                for rec in result]

    assert stripped(serial_j) == stripped(serial_a)

    import json
    import pathlib

    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_B5.json"
    payload = json.loads(path.read_text()) if path.exists() else {"benchmark": "B5_jit"}
    payload["scale"] = {
        "task": SCALE_TASK,
        "cell": [SCALE_CELL.family, SCALE_CELL.n, SCALE_CELL.delta, SCALE_CELL.seed],
        "cores": machine_cores,
        "kernel_tier": provider.kind if provider is not None else None,
        "fallback": provider is None,
        "array_seconds": round(array_elapsed, 3),
        "jit_seconds": round(jit_elapsed, 3),
        "speedup": round(array_elapsed / max(jit_elapsed, 1e-9), 2),
        "records_identical": True,
    }
    record_json("B5", payload, backend="jit")


_SCALING_SCRIPT = """
import json, time
from repro.congest import generators
from repro.core import pipelines
from repro.core.kernels_jit import get_provider

provider = get_provider()
graph = generators.random_regular({n}, {delta}, seed={seed})
pipelines.delta_plus_one_coloring(graph, seed={seed}, backend="jit")  # warm
start = time.perf_counter()
result = pipelines.delta_plus_one_coloring(graph, seed={seed}, backend="jit")
elapsed = time.perf_counter() - start
print(json.dumps({{
    "seconds": elapsed,
    "tier": provider.kind if provider is not None else None,
    "threads": provider.threads if provider is not None else 1,
    "rounds": result.rounds,
    "colors": int(result.colors.max()) + 1,
}}))
"""


def test_b5_thread_scaling(record_json, machine_cores):
    """REPRO_NUM_THREADS sweep (1, 2, 4) over one warm jit cell.

    The thread cap is read at kernel-provider init, so each setting runs in
    a fresh subprocess.  Results must be identical at every thread count
    (the kernels are deterministic regardless of team size); wall-clock
    monotone non-regression is asserted only on multi-core machines — on one
    core extra threads are pure overhead and only the record is kept.
    """
    import json as json_mod
    import os
    import pathlib
    import subprocess
    import sys

    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    script = _SCALING_SCRIPT.format(n=N, delta=DELTA, seed=SEEDS[0])
    sweep: dict[str, dict] = {}
    for threads in (1, 2, 4):
        env = {**os.environ, "REPRO_NUM_THREADS": str(threads),
               "PYTHONPATH": str(src) + os.pathsep + os.environ.get("PYTHONPATH", "")}
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True,
                              timeout=300)
        sweep[str(threads)] = json_mod.loads(proc.stdout.strip().splitlines()[-1])

    outcomes = list(sweep.values())
    assert len({(o["rounds"], o["colors"]) for o in outcomes}) == 1, \
        f"thread count changed the result: {sweep}"
    fallback = outcomes[0]["tier"] is None

    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_B5.json"
    payload = json_mod.loads(path.read_text()) if path.exists() else {"benchmark": "B5_jit"}
    payload["scaling"] = {
        "task": "delta_plus_one",
        "cell": [FAMILY, N, DELTA, SEEDS[0]],
        "cores": machine_cores,
        "kernel_tier": outcomes[0]["tier"],
        "fallback": fallback,
        "threads": {t: {"seconds": round(o["seconds"], 4),
                        "effective_threads": o["threads"]}
                    for t, o in sweep.items()},
        "results_identical": True,
        "monotone_checked": machine_cores > 1 and not fallback,
    }
    record_json("B5", payload, backend="jit")

    if machine_cores > 1 and not fallback:
        # Monotone non-regression: more threads must never be slower than
        # fewer (15% tolerance absorbs scheduler noise; 1 -> 2 -> 4).
        t1, t2, t4 = (sweep[k]["seconds"] for k in ("1", "2", "4"))
        assert t2 <= t1 * 1.15, f"2 threads slower than 1: {sweep}"
        assert t4 <= t2 * 1.15, f"4 threads slower than 2: {sweep}"
