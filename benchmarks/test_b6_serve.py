"""B6 — the job server under concurrent load.

Boots an in-process ``repro serve`` instance (free port, temp state dir) and
drives it with concurrent HTTP clients: each submits a distinct JobSpec and
polls it to completion.  Recorded: submit->done latency (p50/p99), sustained
throughput (jobs/sec), and the latency of a content-addressed cache hit (a
resubmission of a finished spec must be answered from the store without
re-execution — orders of magnitude faster than executing).

The bars are deliberately conservative (the sandbox may be a single core):

* every job completes, every record set is correct (``proper`` per cell),
* p99 submit->done latency under 30 s,
* throughput above 0.2 jobs/sec,
* a cache hit answers in under 2 s and never bumps the job's ``attempts``.

The machine-readable record lands in ``benchmarks/results/BENCH_B6.json``;
CI's serve-smoke job re-checks the bars from that file.
"""

import concurrent.futures
import json
import statistics
import time
import urllib.request

from repro.analysis.tables import Table
from repro.server import JobServer

N_JOBS = 10
CLIENTS = 5
WORKERS = 2
P99_LATENCY_BAR = 30.0
THROUGHPUT_BAR = 0.2
CACHE_HIT_BAR = 2.0


def _spec(index: int) -> dict:
    return {
        "problems": [
            {"graph": {"family": "random_regular", "n": 400 + 40 * index,
                       "delta": 6, "seed": index}}
            for _ in range(1)
        ],
        "run": {"algorithm": "delta_plus_one", "backend": "array"},
    }


def _post(url: str, document: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(document).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.load(response)


def _submit_and_wait(base: str, document: dict) -> tuple[float, dict]:
    start = time.perf_counter()
    submitted = _post(base + "/jobs", document)
    job_id = submitted["id"]
    while True:
        status = _get(f"{base}/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return time.perf_counter() - start, status
        time.sleep(0.02)


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def test_b6_serve_load(tmp_path, record_table, record_json, machine_cores):
    server = JobServer(tmp_path / "state", port=0, workers=WORKERS).start_background()
    try:
        health = _get(server.url + "/healthz")
        assert health["status"] == "ok"

        documents = [_spec(i) for i in range(N_JOBS)]
        wall_start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            outcomes = list(pool.map(
                lambda doc: _submit_and_wait(server.url, doc), documents
            ))
        wall = time.perf_counter() - wall_start

        latencies = [latency for latency, _ in outcomes]
        statuses = [status for _, status in outcomes]
        assert all(s["state"] == "done" for s in statuses)
        assert all(s["manifest"]["spec_hash"] == s["id"] for s in statuses)
        for status in statuses:
            records = _get(f"{server.url}/jobs/{status['id']}/records")["records"]
            assert len(records) == 1
            record = records[0]["record"]
            assert record["colors used"] <= 6 + 1  # Delta + 1 colors, verified

        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)
        throughput = N_JOBS / wall

        # cache hits: resubmit every finished spec; answered from the store
        hit_latencies = []
        for document, status in zip(documents, statuses):
            start = time.perf_counter()
            again = _post(server.url + "/jobs", document)
            hit_latencies.append(time.perf_counter() - start)
            assert again["cached"] is True and again["id"] == status["id"]
            assert again["attempts"] == status["attempts"]  # no re-execution
        hit_p99 = _percentile(hit_latencies, 0.99)

        assert p99 < P99_LATENCY_BAR, f"p99 submit->done {p99:.2f}s >= {P99_LATENCY_BAR}s"
        assert throughput > THROUGHPUT_BAR, \
            f"throughput {throughput:.2f} jobs/s <= {THROUGHPUT_BAR}"
        assert hit_p99 < CACHE_HIT_BAR, f"cache-hit p99 {hit_p99:.2f}s >= {CACHE_HIT_BAR}s"

        table = Table(
            f"B6 — job server: {N_JOBS} jobs, {CLIENTS} clients, "
            f"{WORKERS} workers ({machine_cores} cores)",
            ["metric", "value", "bar"],
        )
        table.add_row("submit->done p50", f"{p50 * 1000:.0f} ms", "—")
        table.add_row("submit->done p99", f"{p99 * 1000:.0f} ms", f"< {P99_LATENCY_BAR:.0f} s")
        table.add_row("throughput", f"{throughput:.2f} jobs/s", f"> {THROUGHPUT_BAR} jobs/s")
        table.add_row("cache-hit p99", f"{hit_p99 * 1000:.0f} ms", f"< {CACHE_HIT_BAR:.0f} s")
        table.add_row("mean execute latency", f"{statistics.mean(latencies) * 1000:.0f} ms", "—")
        table.add_note("each job: delta_plus_one on one random_regular cell "
                       "(n = 400..760, Delta = 6), array backend")
        table.add_note("cache hit = resubmission of a finished spec; answered from "
                       "the content-addressed store, attempts unchanged")
        record_table("B6_serve", table)

        record_json("B6", {
            "jobs": N_JOBS,
            "clients": CLIENTS,
            "workers": WORKERS,
            "cores": machine_cores,
            "execution": health["execution"],
            "latency_p50_seconds": round(p50, 4),
            "latency_p99_seconds": round(p99, 4),
            "latency_mean_seconds": round(statistics.mean(latencies), 4),
            "throughput_jobs_per_second": round(throughput, 3),
            "cache_hit_p99_seconds": round(hit_p99, 4),
            "bars": {
                "latency_p99_seconds_max": P99_LATENCY_BAR,
                "throughput_jobs_per_second_min": THROUGHPUT_BAR,
                "cache_hit_p99_seconds_max": CACHE_HIT_BAR,
            },
            "backend_tier": statuses[0]["backend_tier"],
        })
    finally:
        server.stop()
