"""E7 — Theorem 1.3: O(Delta^{1+eps})-coloring via defective coloring + per-class coloring."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e7
from repro.core import pipelines
from repro.verify.coloring import assert_proper_coloring


def test_e7_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(
        run_e7, kwargs=dict(n=300, deltas=(8, 16, 32), epsilon=0.5), rounds=1, iterations=1
    )
    record_table("E7_theorem13", table)
    assert len(table.rows) == 3


@pytest.mark.parametrize("epsilon", [0.25, 0.5])
def test_e7_kernel(benchmark, epsilon):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=7)

    def kernel():
        return pipelines.theorem13_coloring(graph, colors, m, epsilon=epsilon, backend="array")

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors)
