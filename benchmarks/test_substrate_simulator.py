"""Substrate benchmarks: message-passing simulator vs the vectorized twin.

Not tied to a single experiment — this quantifies the cost of the faithful
per-node simulation versus the whole-graph NumPy implementation (both produce
identical colorings; see tests/test_core_vectorized.py), which justifies using
the vectorized twin for the large-n experiment rows.
"""

import pytest

from repro.analysis.experiments import delta4_colored_graph
from repro.core.algorithm1 import run_mother_algorithm
from repro.core.vectorized import run_mother_algorithm_vectorized


@pytest.mark.parametrize("n", [200, 400])
def test_message_passing_simulator(benchmark, n):
    graph, colors, m = delta4_colored_graph("random_regular", n, 12, seed=42)

    def kernel():
        return run_mother_algorithm(graph, colors, m, d=0, k=2, validate_input=False)

    result = benchmark(kernel)
    assert result.colors.size == graph.n


@pytest.mark.parametrize("n", [200, 400, 2000])
def test_vectorized_twin(benchmark, n):
    graph, colors, m = delta4_colored_graph("random_regular", n, 12, seed=42)

    def kernel():
        return run_mother_algorithm_vectorized(graph, colors, m, d=0, k=2, validate_input=False)

    result = benchmark(kernel)
    assert result.colors.size == graph.n
