"""B4 — million-vertex scale: array-native construction and the shared graph plane.

Two acceptance bars for the scale work:

1. **Construction**: building million-vertex graphs through the array-native
   generators and the vectorized CSR constructor must be at least 5x faster
   than the pre-change path (Python tuple lists fed to the set-based
   ``Graph.__init__``), with bit-identical graphs where the generator's
   randomness stream is unchanged.  The pre-change construction code is
   replicated verbatim below, so the comparison measures exactly what this
   change removed.

2. **Shared-memory sweeps**: a 2-worker parallel sweep over n = 10^6 cells
   must produce records byte-identical to the serial sweep (modulo the
   wall-clock ``seconds`` field), with every worker *attached* to the graph
   segment the parent published — one physical copy of each graph, asserted
   via segment sharing rather than W x private copies — and no ``/dev/shm``
   segment may survive the sweep.

The machine-readable record lands in ``benchmarks/results/BENCH_B4.json``
(construction speedup, sweep identity, peak RSS of parent and workers); the
CI scale-smoke job runs this file under a wall-clock ceiling and uploads the
JSON as an artifact.
"""

import os
import resource
import time

import numpy as np

from repro.analysis.tables import Table
from repro.congest import generators
from repro.congest.graph import Graph
from repro.engine import BatchRunner, GraphSpec

N = 1_000_000
MIN_CONSTRUCTION_SPEEDUP = 5.0
SWEEP_CELLS = [GraphSpec("grid", N, 4, seed=0), GraphSpec("grid", N, 4, seed=1)]
SWEEP_TASK = "delta_plus_one"


def _shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith("repro-g-")}


def b4_probe_task(workload, engine):
    """Importable probe: report which shared segment backs the worker's graph."""
    return {
        "segment": workload.graph.shared_name or "private",
        "pid": os.getpid(),
    }


# --------------------------------------------------------------------------- #
# The pre-change construction path, replicated exactly (the "before" side).
# --------------------------------------------------------------------------- #


def _legacy_graph_build(n, edges):
    """The set-based ``Graph.__init__`` edge walk, verbatim pre-change."""
    pairs = set()
    for u, v in edges:
        u = int(u)
        v = int(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        if u > v:
            u, v = v, u
        pairs.add((u, v))
    if pairs:
        arr = np.array(sorted(pairs), dtype=np.int64)
        src = np.concatenate([arr[:, 0], arr[:, 1]])
        dst = np.concatenate([arr[:, 1], arr[:, 0]])
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=n)
    else:
        dst = np.empty(0, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


def _legacy_ring(n):
    """Pre-change ring: a Python list comprehension of n tuples."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _legacy_graph_build(n, edges)


def _legacy_random_tree(n, seed):
    """Pre-change random recursive tree: one scalar RNG call per vertex."""
    rng = generators.canonical_rng(seed)
    edges = [(i, int(rng.integers(0, i))) for i in range(1, n)]
    return _legacy_graph_build(n, edges)


def _legacy_random_bipartite(a, b, p, seed):
    """Pre-change random bipartite: per-row mask with a per-edge append loop."""
    rng = generators.canonical_rng(seed)
    edges = []
    for i in range(a):
        mask = rng.random(b) < p
        for j in np.nonzero(mask)[0]:
            edges.append((i, a + int(j)))
    return _legacy_graph_build(a + b, edges)


# --------------------------------------------------------------------------- #
# Bar 1: construction speedup at n = 10^6
# --------------------------------------------------------------------------- #


def test_b4_construction_speedup_at_scale(record_table, record_json, machine_cores):
    cases = [
        ("ring", lambda: _legacy_ring(N), lambda: generators.ring(N)),
        (
            "random_tree",
            lambda: _legacy_random_tree(N, 1),
            lambda: generators.random_tree(N, seed=1),
        ),
        (
            "random_bipartite",
            lambda: _legacy_random_bipartite(4000, 250, 0.5, 1),
            lambda: generators.random_bipartite(4000, 250, 0.5, seed=1),
        ),
    ]

    legacy_total = 0.0
    array_total = 0.0
    rows = []
    for name, legacy_fn, array_fn in cases:
        start = time.perf_counter()
        legacy_indptr, legacy_indices = legacy_fn()
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        graph = array_fn()
        array_seconds = time.perf_counter() - start

        # These three families keep their randomness stream (or are
        # deterministic), so the array-native path must reproduce the legacy
        # CSR bit for bit.
        assert np.array_equal(graph.indptr, legacy_indptr), name
        assert np.array_equal(graph.indices, legacy_indices), name

        legacy_total += legacy_seconds
        array_total += array_seconds
        rows.append((name, graph.n, graph.num_edges, legacy_seconds, array_seconds))

    speedup = legacy_total / max(array_total, 1e-9)

    table = Table(
        f"B4 — array-native graph construction at n = 10^6: Python tuple lists + "
        f"set-based dedup (pre-change, verbatim) vs vectorized from_edge_array",
        ["family", "n", "edges", "tuple-list seconds", "array seconds", "speedup"],
    )
    for name, n, m, legacy_seconds, array_seconds in rows:
        table.add_row(name, n, m, round(legacy_seconds, 3), round(array_seconds, 3),
                      round(legacy_seconds / max(array_seconds, 1e-9), 1))
    table.add_row("total", "", "", round(legacy_total, 3), round(array_total, 3),
                  round(speedup, 1))
    table.add_note(
        "Identical CSR arrays asserted per family (ring is deterministic; "
        "random_tree and random_bipartite consume their canonical_rng streams in the "
        "historical order).  The array path canonicalizes, dedups and CSR-sorts with "
        "integer-key sorts instead of walking Python tuples through a set.  Measured "
        f"on {machine_cores} CPU core(s)."
    )
    record_table("B4_scale", table)

    assert speedup >= MIN_CONSTRUCTION_SPEEDUP, (
        f"array-native construction only {speedup:.1f}x faster than the tuple-list "
        f"path ({array_total:.3f}s vs {legacy_total:.3f}s)"
    )

    record_json("B4", {
        "benchmark": "B4_scale",
        "n": N,
        "cores": machine_cores,
        "construction": {
            "families": [r[0] for r in rows],
            "tuple_list_seconds": round(legacy_total, 4),
            "array_seconds": round(array_total, 4),
            "speedup": round(speedup, 2),
            "min_required_speedup": MIN_CONSTRUCTION_SPEEDUP,
            "identical_csr": True,
        },
    })


# --------------------------------------------------------------------------- #
# Bar 2: 2-worker shared-memory sweep — byte-identical, one graph copy
# --------------------------------------------------------------------------- #


def _stripped(result):
    return [{k: v for k, v in rec.items() if k != "seconds"} for rec in result]


def test_b4_shared_memory_sweep_parity_and_flat_memory(record_json, machine_cores):
    before = _shm_segments()

    start = time.perf_counter()
    serial = BatchRunner(backend="array").run(SWEEP_TASK, SWEEP_CELLS)
    serial_seconds = time.perf_counter() - start
    rss_serial_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    start = time.perf_counter()
    parallel = BatchRunner(backend="array", workers=2).run(SWEEP_TASK, SWEEP_CELLS)
    parallel_seconds = time.perf_counter() - start
    rss_workers_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024

    # Byte-identical records modulo the wall-clock field.
    assert _stripped(parallel) == _stripped(serial)

    # Per-worker graph memory eliminated: every worker ran on the segment the
    # parent published (segment sharing), not on a private regenerated copy.
    probes = BatchRunner(backend="array", workers=2).run(b4_probe_task, SWEEP_CELLS)
    segments = [rec["segment"] for rec in probes]
    assert all(seg.startswith("repro-g-") for seg in segments), segments
    per_spec = {}
    for spec, rec in zip(SWEEP_CELLS, probes):
        per_spec.setdefault(spec, set()).add(rec["segment"])
    assert all(len(names) == 1 for names in per_spec.values()), per_spec

    # Nothing leaked into /dev/shm.
    assert _shm_segments() == before

    import json
    import pathlib

    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_B4.json"
    payload = json.loads(path.read_text()) if path.exists() else {"benchmark": "B4_scale"}
    payload["sweep"] = {
        "task": SWEEP_TASK,
        "cells": [[c.family, c.n, c.delta, c.seed] for c in SWEEP_CELLS],
        "workers": 2,
        "cores": machine_cores,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "records_byte_identical": True,
        "graphs_shared_not_copied": True,
        "leaked_shm_segments": 0,
        "peak_rss_serial_mb": round(rss_serial_mb, 1),
        "peak_rss_worker_mb": round(rss_workers_mb, 1),
    }
    record_json("B4", payload)
