"""Fixtures for the benchmark harness.

Each benchmark file regenerates one experiment table (E1-E10, see DESIGN.MD;
B1 for the engine-layer backend comparison, B2 for serial-vs-parallel
sharding) and times its core computation with pytest-benchmark.  The rendered tables are written to
``benchmarks/results/`` so EXPERIMENTS.md can quote exactly what the harness
produced.

Only pytest *fixtures* belong here.  Importable helpers must live in a
regular module instead (the tests use ``tests/helpers.py``): pytest loads
every ``conftest.py`` under the single module name ``conftest``, so ``from
conftest import ...`` silently resolves to whichever directory's conftest was
imported first.
"""

from __future__ import annotations

import json
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture
def record_table():
    """Persist a rendered experiment table under ``benchmarks/results/``."""

    def _record(name: str, table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.md"
        path.write_text(table.render() + "\n", encoding="utf-8")

    return _record


@pytest.fixture
def machine_cores() -> int:
    """CPU cores available to this process (what the B-series records report)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture
def record_json():
    """Persist a machine-readable benchmark record (``BENCH_<name>.json``).

    The B-series benchmarks write one JSON file each (cells/sec, speedup,
    instance sizes, machine cores) so the perf trajectory can be tracked
    across commits by tooling, not just by humans reading the markdown tables.
    Every record carries a ``backend`` field (default ``"array"``) so
    trajectory comparisons never mix execution paths; callers override it via
    the ``backend=`` argument or an explicit key in ``payload``.  Every record
    also carries ``cores`` (CPU cores available to the run) and ``workers``
    (process-pool width, default 1 = serial) under those exact keys — the same
    names :class:`repro.engine.sink.RunManifest` uses — so B-series records
    are comparable without per-file key archaeology.
    """

    from repro.engine.sink import machine_cores as _cores

    def _record(name: str, payload: dict, backend: str = "array") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        payload.setdefault("backend", backend)
        payload.setdefault("cores", _cores())
        payload.setdefault("workers", 1)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    return _record
