"""B2 — parallel sharding: serial vs a 4-worker process pool, parity-checked.

The acceptance bar of the parallel execution layer: a parity-checked sweep
over >= 20 (graph, seed) cells sharded across 4 workers must

* produce records *identical* to the serial sweep modulo the wall-clock
  ``seconds`` field (deterministic cell ordering + cross-process-deterministic
  generators), and
* finish faster than the serial sweep in wall-clock terms.

Every cell re-runs on the reference backend inside its own worker (the
parallel-safe parity oracle), so the speedup is measured on real, verified
work — not on an unchecked fast path.

The speedup assertion is physical: it needs more than one CPU core.  On a
single-core machine (some CI sandboxes) the benchmark instead asserts the
sharding overhead is bounded — records identity is asserted unconditionally.
"""

import time

from repro.analysis.tables import Table
from repro.engine import BatchRunner

CELLS = BatchRunner.grid(("random_regular", "gnp"), 300, (8, 12), seeds=range(6))  # 24 cells
TASK = "delta_plus_one"
WORKERS = 4


def _timed_sweep(workers: int) -> tuple[float, "BatchResult"]:
    runner = BatchRunner(backend="array", parity_check=True, workers=workers)
    start = time.perf_counter()
    result = runner.run(TASK, CELLS)
    return time.perf_counter() - start, result


def _stripped(result):
    return [{k: v for k, v in rec.items() if k != "seconds"} for rec in result]


def test_b2_parallel_speedup(record_table, record_json, machine_cores):
    serial_seconds, serial_result = _timed_sweep(1)
    parallel_seconds, parallel_result = _timed_sweep(WORKERS)

    # Byte-identity modulo wall-clock: same records, same order.
    assert _stripped(parallel_result) == _stripped(serial_result)

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    cores = machine_cores
    table = Table(
        f"B2 — parallel BatchRunner: {len(CELLS)}-cell parity-checked sweep "
        f"({TASK}), serial vs {WORKERS} workers",
        ["execution", "cells", "wall-clock seconds", "speedup vs serial"],
    )
    table.add_row("serial (workers=1)", len(serial_result), round(serial_seconds, 3), 1.0)
    table.add_row(f"process pool (workers={WORKERS})", len(parallel_result),
                  round(parallel_seconds, 3), round(speedup, 2))
    table.add_note(
        "Identical records modulo the wall-clock field (asserted): deterministic cell "
        "ordering + cross-process-deterministic generators. Every cell parity-checked "
        "against the reference backend inside its worker. "
        f"Measured on {cores} available CPU core(s); the speedup scales with cores "
        "(a 1-core sandbox can only demonstrate bounded sharding overhead)."
    )
    record_table("B2_parallel", table)
    record_json("B2", {
        "benchmark": "B2_parallel",
        "task": TASK,
        "cells": len(CELLS),
        "workers": WORKERS,
        "cores": cores,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "cells_per_sec": round(len(CELLS) / max(parallel_seconds, 1e-9), 3),
        "records_identical": True,
    })

    assert len(parallel_result) >= 20
    if cores >= 2:
        assert speedup > 1.2, (
            f"parallel sweep only {speedup:.2f}x faster than serial on {cores} cores "
            f"({parallel_seconds:.3f}s vs {serial_seconds:.3f}s)"
        )
    else:
        # Single core: no speedup is possible; sharding must not cost > 50%.
        assert parallel_seconds < serial_seconds * 1.5, (
            f"sharding overhead too high on a single core "
            f"({parallel_seconds:.3f}s vs {serial_seconds:.3f}s serial)"
        )


def test_b2_kernel_parallel_sweep(benchmark):
    runner = BatchRunner(backend="array", parity_check=True, workers=WORKERS)
    result = benchmark(lambda: runner.run(TASK, CELLS))
    assert len(result) == len(CELLS)
