"""B8 — corpus ingestion: cold parse vs warm content-addressed cache.

Two measurements, recorded to ``benchmarks/results/BENCH_B8.json``:

* **cold vs warm ingest**: a large generated edge list (~200k edges, with
  comments, 1-based ids, and both-direction duplicates — the shape of a real
  SNAP export) ingested cold (text parse + CSR build + cache store) and then
  warm (digest + mmap of the cached ``.npz``, no text touched).  The warm
  path must be at least ``MIN_WARM_SPEEDUP``x faster — that is the cache's
  reason to exist.

* **vendored corpus sweep**: the whole vendored ``corpus/`` swept through a
  two-algorithm zoo with verification on, in cells/sec — the wall-clock
  shape of ``repro corpus``.
"""

import gzip
import json
import pathlib
import time

import numpy as np

from repro.analysis.tables import Table
from repro.corpus import cache, corpus_specs, ingest, load_manifest, run_corpus_sweep

EDGES = 200_000
N_HINT = 40_000
MIN_WARM_SPEEDUP = 10.0
SWEEP_ZOO = [{"algorithm": "linial"}, {"algorithm": "delta_plus_one"}]

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"


def _write_snap_like(path: pathlib.Path, rng: np.random.Generator) -> None:
    """A big 1-indexed, both-directions, commented edge list (gzip)."""
    u = rng.integers(0, N_HINT, size=EDGES, dtype=np.int64)
    v = rng.integers(0, N_HINT, size=EDGES, dtype=np.int64)
    keep = u != v
    u, v = u[keep] + 1, v[keep] + 1
    lines = ["# Synthetic SNAP-like export", "# FromNodeId\tToNodeId"]
    lines += [f"{a}\t{b}" for a, b in zip(u.tolist(), v.tolist())]
    lines += [f"{b}\t{a}" for a, b in zip(u.tolist(), v.tolist())]
    with gzip.GzipFile(path, "wb", mtime=0) as handle:
        handle.write(("\n".join(lines) + "\n").encode())


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_b8_cold_vs_warm_ingest(tmp_path, monkeypatch, record_table, record_json,
                                machine_cores):
    monkeypatch.setenv(cache.CACHE_ENV, str(tmp_path / "cache"))
    path = tmp_path / "big.txt.gz"
    _write_snap_like(path, np.random.default_rng(8))

    cold, cold_seconds = _timed(lambda: ingest(path))
    assert cold.cached is False
    warm, warm_seconds = _timed(lambda: ingest(path))
    assert warm.cached is True
    assert warm.digest == cold.digest
    assert warm.graph.n == cold.graph.n

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    table = Table(
        f"B8 — corpus ingest: {cold.meta['edges_raw']:,} raw edge rows "
        f"(n={cold.graph.n:,}, m={cold.meta['m']:,}) cold vs warm "
        f"({machine_cores} core(s))",
        ["path", "wall-clock seconds", "what runs"],
    )
    table.add_row("cold (first ingest)", round(cold_seconds, 3),
                  "gunzip + parse + relabel + CSR build + cache store")
    table.add_row("warm (cache hit)", round(warm_seconds, 4),
                  "SHA-256 of the file + mmap of the cached .npz")
    table.add_row("speedup", f"{speedup:.0f}x", "—")
    table.add_note(
        "The cache is keyed by the SHA-256 of the file's bytes: a warm load "
        "memory-maps the stored CSR arrays and never touches the text, so the "
        "floor is the digest pass over the compressed file.  Editing the file "
        "changes the digest and misses naturally."
    )
    record_table("B8_corpus", table)

    payload = {
        "benchmark": "B8_corpus",
        "cores": machine_cores,
        "ingest": {
            "edges_raw": int(cold.meta["edges_raw"]),
            "n": int(cold.graph.n),
            "m": int(cold.meta["m"]),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 5),
            "speedup": round(speedup, 1),
            "min_speedup": MIN_WARM_SPEEDUP,
        },
    }
    record_json("B8", payload)
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm ingest only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
    )


def test_b8_vendored_corpus_sweep(tmp_path, monkeypatch, record_json,
                                  machine_cores):
    monkeypatch.setenv(cache.CACHE_ENV, str(tmp_path / "cache"))
    entries = load_manifest(CORPUS_DIR, verify=True)
    pairs = corpus_specs(entries)
    specs = [spec for _entry, spec in pairs]

    result, sweep_seconds = _timed(
        lambda: run_corpus_sweep(specs, zoo=SWEEP_ZOO, backend="array"))
    cells = len(result.records)
    assert cells == len(specs) * len(SWEEP_ZOO)
    assert all(rec.get("verified") for rec in result.records)

    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_B8.json"
    payload = json.loads(path.read_text()) if path.exists() else {"benchmark": "B8_corpus"}
    payload["vendored_sweep"] = {
        "graphs": len(specs),
        "algorithms": sorted(entry["algorithm"] for entry in SWEEP_ZOO),
        "cells": cells,
        "seconds": round(sweep_seconds, 4),
        "cells_per_sec": round(cells / max(sweep_seconds, 1e-9), 2),
        "cores": machine_cores,
        "all_verified": True,
    }
    record_json("B8", payload)
