"""E4 — Corollary 1.2(4): beta-outdegree colorings (the arbdefective schedule)."""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e4
from repro.core import corollaries
from repro.verify.orientation import assert_outdegree_orientation


def test_e4_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(
        run_e4, kwargs=dict(n=300, delta=16, epsilons=(0.25, 0.5, 0.75)), rounds=1, iterations=1
    )
    record_table("E4_outdegree", table)
    for beta, out in zip(table.column("beta"), table.column("max outdegree")):
        assert out <= beta


@pytest.mark.parametrize("beta", [2, 4])
def test_e4_kernel(benchmark, beta):
    graph, colors, m = delta4_colored_graph("random_regular", 400, 16, seed=4)

    def kernel():
        return corollaries.outdegree_coloring(graph, colors, m, beta=beta)

    result = benchmark(kernel)
    assert_outdegree_orientation(graph, result.colors, result.orientation, beta)
