"""B1 — the engine-layer sweep: array backend vs the reference scheduler.

Also emits ``results/BENCH_B1.json`` (cells/sec, speedup, machine cores) —
the machine-readable perf-trajectory record.

The acceptance bar of the engine layer: a BatchRunner sweep over >= 20
(graph, seed) cells on the ``array`` backend must be at least 3x faster in
wall-clock than the identical sweep on the ``reference`` backend, while both
backends report identical measurements (rounds, colors) per cell.
"""

import time

from repro.analysis.tables import Table
from repro.engine import BatchRunner

CELLS = BatchRunner.grid(("random_regular", "gnp"), 200, 8, seeds=range(10))  # 20 cells
TASK = "kdelta"
PARAMS = [{"k": 1}]


def _timed_sweep(backend: str) -> tuple[float, "BatchResult"]:
    runner = BatchRunner(backend=backend)
    for spec in CELLS:  # pre-build graphs + colorings: time the sweep, not the generators
        runner.workload(spec)
    start = time.perf_counter()
    result = runner.run(TASK, CELLS, params_grid=PARAMS)
    return time.perf_counter() - start, result


def test_b1_array_backend_speedup(record_table, record_json, machine_cores):
    array_seconds, array_result = _timed_sweep("array")
    reference_seconds, reference_result = _timed_sweep("reference")

    # Both backends must agree on every measurement of every cell.
    for key in ("rounds", "colors used", "color space"):
        assert array_result.column(key) == reference_result.column(key), key

    speedup = reference_seconds / max(array_seconds, 1e-9)
    table = Table(
        "B1 — BatchRunner sweep: array vs reference backend (20 cells, k=1 mother algorithm)",
        ["backend", "cells", "wall-clock seconds", "speedup vs reference"],
    )
    table.add_row("reference", len(reference_result), round(reference_seconds, 3), 1.0)
    table.add_row("array", len(array_result), round(array_seconds, 3), round(speedup, 1))
    table.add_note("Identical rounds / colors per cell on both backends (asserted).")
    record_table("B1_batch_backends", table)
    record_json("B1", {
        "benchmark": "B1_batch_backends",
        "task": TASK,
        "cells": len(CELLS),
        "cores": machine_cores,
        "reference_seconds": round(reference_seconds, 4),
        "array_seconds": round(array_seconds, 4),
        "speedup": round(speedup, 2),
        "cells_per_sec": round(len(CELLS) / max(array_seconds, 1e-9), 3),
        "outputs_identical": True,
    })

    assert len(array_result) >= 20
    assert speedup >= 3.0, (
        f"array backend only {speedup:.1f}x faster than reference "
        f"({array_seconds:.3f}s vs {reference_seconds:.3f}s)"
    )


def test_b1_kernel_array_sweep(benchmark):
    runner = BatchRunner(backend="array")
    for spec in CELLS:
        runner.workload(spec)
    result = benchmark(lambda: runner.run(TASK, CELLS, params_grid=PARAMS))
    assert len(result) == len(CELLS)
