"""B7 — fleet-scale sweeps: shard+merge overhead and the execution planes.

Two measurements, recorded to ``benchmarks/results/BENCH_B7.json``:

* **shard+merge**: the same sweep run unsharded vs as ``k`` sequential
  shards joined by ``merge_shards``.  The merged file must be byte-identical
  (modulo the wall-clock ``seconds`` field) to the unsharded run — that is
  the whole point of deterministic sharding — and the shard+merge path must
  not cost more than a conservative overhead multiple of the straight run
  (on one box the shards run back-to-back, so the floor is ~1x + merge I/O).

* **execution planes**: the job server's ``thread`` vs ``process`` execution
  over a batch of multi-cell jobs, in jobs/sec.  On one core the process
  pool is pure overhead, so only conservative absolute bars apply; on
  multi-core machines the process plane must not lose to the thread plane
  (that is what it is for) — CI's fleet-smoke job enforces the recorded bars.
"""

import json
import time

from repro.analysis.tables import Table
from repro.engine import BatchRunner
from repro.engine.merge import merge_shards
from repro.engine.sink import JsonlSink
from repro.server import JobServer

TASK = "delta_plus_one"
FAMILY = "random_regular"
CELLS = BatchRunner.grid(FAMILY, (400, 600, 800), 6, seeds=(0, 1))  # 6 cells
SHARDS = 2

N_JOBS = 6
CELLS_PER_JOB = 3
JOB_N = 2000
MIN_JOBS_PER_SEC = 0.05     # conservative: holds even on one busy core
MAX_SHARD_OVERHEAD = 2.5    # sequential shards + merge vs straight run


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _normalized(path):
    out = []
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        if "record" in obj:
            obj["record"].pop("seconds", None)
        out.append(obj)
    return out


def test_b7_shard_merge_round_trip(tmp_path, record_table, record_json,
                                   machine_cores):
    runner = BatchRunner(backend="array")

    full = tmp_path / "full.jsonl"
    with JsonlSink(full) as sink:
        _, full_seconds = _timed(lambda: runner.run(TASK, CELLS, sink=sink))

    shard_paths, shard_seconds = [], 0.0
    for index in range(SHARDS):
        path = tmp_path / f"s{index}.jsonl"
        with JsonlSink(path) as sink:
            _, elapsed = _timed(
                lambda: runner.run(TASK, CELLS, sink=sink, shard=(index, SHARDS)))
        shard_seconds += elapsed
        shard_paths.append(path)

    merged = tmp_path / "merged.jsonl"
    result, merge_seconds = _timed(lambda: merge_shards(shard_paths, merged))
    assert result.cells == len(CELLS)
    byte_identical = _normalized(merged) == _normalized(full)
    assert byte_identical

    overhead = (shard_seconds + merge_seconds) / max(full_seconds, 1e-9)
    table = Table(
        f"B7 — shard+merge: {len(CELLS)}-cell {TASK} sweep as {SHARDS} "
        f"sequential shards vs one run ({machine_cores} core(s))",
        ["path", "wall-clock seconds", "cells/sec"],
    )
    table.add_row("unsharded", round(full_seconds, 3),
                  round(len(CELLS) / max(full_seconds, 1e-9), 2))
    table.add_row(f"{SHARDS} shards (sequential)", round(shard_seconds, 3),
                  round(len(CELLS) / max(shard_seconds, 1e-9), 2))
    table.add_row("merge", round(merge_seconds, 3), "—")
    table.add_note(
        "Merged file byte-identical to the unsharded run modulo the wall-clock "
        "seconds field (asserted).  Shards ran back-to-back on one box, so the "
        "honest overhead floor is ~1x plus merge I/O; a real fleet runs them "
        "concurrently on separate machines."
    )
    record_table("B7_fleet", table)

    payload = {
        "benchmark": "B7_fleet",
        "cores": machine_cores,
        "shard_merge": {
            "task": TASK,
            "cells": len(CELLS),
            "shards": SHARDS,
            "full_seconds": round(full_seconds, 4),
            "shard_seconds": round(shard_seconds, 4),
            "merge_seconds": round(merge_seconds, 4),
            "overhead_vs_full": round(overhead, 3),
            "max_overhead": MAX_SHARD_OVERHEAD,
            "byte_identical": byte_identical,
        },
    }
    record_json("B7", payload)
    assert overhead <= MAX_SHARD_OVERHEAD, (
        f"shard+merge cost {overhead:.2f}x the unsharded run "
        f"({shard_seconds:.3f}s + {merge_seconds:.3f}s vs {full_seconds:.3f}s)"
    )


def _job_spec(index: int) -> dict:
    return {
        "problems": [
            {"graph": {"family": FAMILY, "n": JOB_N, "delta": 6,
                       "seed": index * CELLS_PER_JOB + offset}}
            for offset in range(CELLS_PER_JOB)
        ],
        "run": {"algorithm": TASK, "backend": "array"},
    }


def _serve_throughput(state_dir, execution: str) -> dict:
    import urllib.request

    server = JobServer(state_dir, port=0, workers=1,
                       execution=execution).start_background()
    try:
        def post(document):
            request = urllib.request.Request(
                server.url + "/jobs", data=json.dumps(document).encode(),
                method="POST", headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.load(response)

        def get(path):
            with urllib.request.urlopen(server.url + path, timeout=60) as response:
                return json.load(response)

        health = get("/healthz")
        start = time.perf_counter()
        ids = [post(_job_spec(i))["id"] for i in range(N_JOBS)]
        for job_id in ids:
            while get(f"/jobs/{job_id}")["state"] not in ("done", "failed"):
                time.sleep(0.02)
        wall = time.perf_counter() - start
        states = [get(f"/jobs/{job_id}")["state"] for job_id in ids]
        assert states == ["done"] * N_JOBS, states
        return {
            "execution": health["execution"],
            "seconds": round(wall, 4),
            "jobs_per_sec": round(N_JOBS / wall, 4),
        }
    finally:
        server.stop()


def test_b7_execution_planes(tmp_path, record_table, record_json, machine_cores):
    thread = _serve_throughput(tmp_path / "thread", "thread")
    process = _serve_throughput(tmp_path / "process", "process")

    table = Table(
        f"B7 — job server execution planes: {N_JOBS} jobs x {CELLS_PER_JOB} "
        f"cells ({TASK}, n={JOB_N}), 1 job slot ({machine_cores} core(s))",
        ["execution", "wall-clock seconds", "jobs/sec"],
    )
    table.add_row("thread", thread["seconds"], thread["jobs_per_sec"])
    table.add_row(f"process (budget {process['execution']['job_workers']})",
                  process["seconds"], process["jobs_per_sec"])
    table.add_note(
        "Same durable-sink and SSE semantics on both planes; the process plane "
        "fans each job's cells through the crash-containing process pool.  On "
        "one core the pool is pure overhead, so the process>=thread bar is "
        "asserted only on multi-core machines."
    )
    record_table("B7_serve", table)

    import pathlib

    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_B7.json"
    payload = json.loads(path.read_text()) if path.exists() else {"benchmark": "B7_fleet"}
    payload["execution_planes"] = {
        "jobs": N_JOBS,
        "cells_per_job": CELLS_PER_JOB,
        "n": JOB_N,
        "cores": machine_cores,
        "thread": thread,
        "process": process,
        "min_jobs_per_sec": MIN_JOBS_PER_SEC,
        "process_vs_thread_checked": machine_cores > 1,
    }
    record_json("B7", payload)

    assert thread["jobs_per_sec"] > MIN_JOBS_PER_SEC, thread
    assert process["jobs_per_sec"] > MIN_JOBS_PER_SEC, process
    if machine_cores > 1:
        # The process plane exists to beat the GIL: with cores to spare it
        # must not lose to the thread plane (10% scheduler-noise tolerance).
        assert process["jobs_per_sec"] >= thread["jobs_per_sec"] * 0.9, (
            f"process plane slower than thread plane on {machine_cores} cores: "
            f"{process} vs {thread}"
        )
