"""E2 — Corollary 1.2(2): the O(k*Delta) colors vs O(Delta/k) rounds trade-off.

Regenerates the k-sweep table and times the mother algorithm kernel at the two
extremes of the trade-off (k = 1 and a single-batch k).
"""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e2
from repro.core import corollaries
from repro.verify.coloring import assert_proper_coloring


def test_e2_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(run_e2, kwargs=dict(n=400, delta=16), rounds=1, iterations=1)
    record_table("E2_rounds_vs_k", table)
    rounds = table.column("rounds")
    # rounds are non-increasing in k; color budget grows with k
    assert all(a >= b for a, b in zip(rounds, rounds[1:]))
    for measured, bound in zip(rounds, table.column("round bound 16*Delta/k")):
        assert measured <= bound


@pytest.mark.parametrize("k", [1, 4, 16, 64])
def test_e2_kernel_k_sweep(benchmark, k):
    graph, colors, m = delta4_colored_graph("random_regular", 800, 16, seed=2)

    def kernel():
        return corollaries.kdelta_coloring(graph, colors, m, k=k, backend="array")

    result = benchmark(kernel)
    assert_proper_coloring(graph, result.colors)
    assert result.color_space_size <= 16 * graph.max_degree * k
