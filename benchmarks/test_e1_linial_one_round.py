"""E1 — Corollary 1.2(1): Linial's one-round color reduction.

Regenerates the E1 table (rounds, colors, 256*Delta^2 bound per graph family)
and times the one-round reduction kernel on a larger instance.
"""

import pytest

from repro.analysis.experiments import delta4_colored_graph, run_e1
from repro.core import corollaries
from repro.verify.coloring import assert_proper_coloring


def test_e1_regenerate_table(benchmark, record_table):
    table = benchmark.pedantic(run_e1, kwargs=dict(n=300, deltas=(4, 8, 16)), rounds=1, iterations=1)
    record_table("E1_linial_one_round", table)
    assert all(r == 1 for r in table.column("rounds"))
    for used, space, bound in zip(
        table.column("colors used"), table.column("color space"),
        table.column("paper bound 256*Delta^2"),
    ):
        assert used <= space <= bound


@pytest.mark.parametrize("delta", [8, 16, 32])
def test_e1_kernel_one_round_reduction(benchmark, delta):
    graph, colors, m = delta4_colored_graph("random_regular", 1000, delta, seed=1)

    def kernel():
        return corollaries.linial_color_reduction(graph, colors, m, backend="array")

    result = benchmark(kernel)
    assert result.rounds == 1
    assert_proper_coloring(graph, result.colors)
