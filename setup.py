"""Setup shim.

The execution environment used for the reproduction has no network access and
no ``wheel`` package, so PEP 517/660 editable installs (which build an editable
wheel) are not available.  Keeping a classic ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` code path;
all actual metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
