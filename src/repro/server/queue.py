"""Bounded-worker job execution for the job server.

Jobs execute through :func:`repro.api.solve.run_spec` — the exact machinery
behind ``repro run --spec`` — against the store's resumable JSONL sink, so a
served job's records are byte-identical to a local replay of the same spec
(modulo wall-clock fields), restart recovery is the sink's ``resume=True``
path, and the manifest pins the spec hash the job is addressed by.

The pool is a :class:`~concurrent.futures.ThreadPoolExecutor`: the hot loops
are NumPy/compiled kernels that release the GIL, a spec may itself request
process-pool sharding (``run.workers > 1``), and threads can share the
process-wide engine instances (and their warmed-up JIT kernels) for free.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.server.store import JobStore

__all__ = ["JobQueue"]


class JobQueue:
    """Execute stored jobs on a bounded worker pool with progress events.

    ``on_event(job_id, event)`` — when given — is called from worker threads
    for every lifecycle transition and completed cell; the HTTP layer bridges
    these onto the asyncio loop for SSE.  Event shapes::

        {"type": "status", "state": "running", "attempts": n}
        {"type": "progress", "done": d, "total": t, "resumed": d}   # on start
        {"type": "cell", "cell": id, "done": d, "total": t, "record": {...}}
        {"type": "done", "cells_done": d, "cells_total": t, "backend_tier": ...}
        {"type": "failed", "error": "..."}
    """

    #: Test seam: called as ``hook(job_id, done, total)`` after every cell's
    #: status update.  Tests raise a BaseException from it to simulate the
    #: process dying mid-job (the job is left ``running`` on disk, exactly
    #: like a SIGKILL — *not* marked failed).
    _test_cell_hook: Callable[[str, int, int], None] | None = None

    def __init__(
        self,
        store: JobStore,
        workers: int = 2,
        on_event: Callable[[str, dict[str, Any]], None] | None = None,
    ):
        if int(workers) < 1:
            raise ValueError(f"JobQueue workers must be >= 1, got {workers!r}")
        self.store = store
        self.workers = int(workers)
        self.on_event = on_event
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="repro-job")
        self._futures: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission / recovery
    # ------------------------------------------------------------------ #

    def submit(self, job_id: str) -> Future:
        """Queue one stored job for execution (idempotent while in flight)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("JobQueue is shut down")
            future = self._futures.get(job_id)
            if future is not None and not future.done():
                return future
            future = self._pool.submit(self._execute, job_id)
            self._futures[job_id] = future
            return future

    def recover(self) -> list[str]:
        """Re-queue every incomplete (queued/running) job in the store.

        This is the restart path: jobs the previous process died under go
        back on the pool, and their sinks resume — completed cells are loaded
        from ``records.jsonl``, never recomputed.
        """
        incomplete = self.store.incomplete_job_ids()
        for job_id in incomplete:
            self.store.update(job_id, state="queued")
            self.submit(job_id)
        return incomplete

    def pending(self) -> int:
        with self._lock:
            return sum(1 for f in self._futures.values() if not f.done())

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.  ``wait=False`` abandons queued jobs (they stay
        ``queued``/``running`` on disk and are recovered on restart)."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _emit(self, job_id: str, event: dict[str, Any]) -> None:
        if self.on_event is not None:
            self.on_event(job_id, event)

    def _execute(self, job_id: str) -> None:
        from repro.api.solve import run_spec
        from repro.engine.sink import JsonlSink

        status = self.store.load(job_id)
        if status is None or status.terminal:
            return  # deleted or already finished (e.g. duplicate recovery)
        status = self.store.update(
            job_id, state="running", started_at=time.time(),
            attempts=status.attempts + 1, error=None,
        )
        self._emit(job_id, {"type": "status", "state": "running",
                            "attempts": status.attempts})

        def progress(done: int, total: int, cell: str | None, record) -> None:
            changes: dict[str, Any] = {"cells_done": done, "cells_total": total}
            if cell is None:
                # First callback: the sink has started, so the manifest (and
                # the backend tier that will run the job) is durable already.
                manifest = self.store.manifest(job_id)
                if manifest is not None:
                    changes["backend_tier"] = manifest.get("backend_tier")
                self.store.update(job_id, **changes)
                self._emit(job_id, {"type": "progress", "done": done,
                                    "total": total, "resumed": done})
            else:
                self.store.update(job_id, **changes)
                self._emit(job_id, {"type": "cell", "cell": cell, "done": done,
                                    "total": total, "record": dict(record)})
            hook = type(self)._test_cell_hook
            if hook is not None and cell is not None:
                hook(job_id, done, total)

        sink = JsonlSink(self.store.records_path(job_id), resume=True)
        try:
            try:
                run_spec(status.spec, sink=sink, progress=progress)
            finally:
                sink.close()
        except Exception as exc:  # noqa: BLE001 — any job failure is recorded
            status = self.store.update(
                job_id, state="failed", finished_at=time.time(),
                error=f"{type(exc).__name__}: {exc}",
            )
            self._emit(job_id, {"type": "failed", "error": status.error})
            return
        manifest = self.store.manifest(job_id) or {}
        status = self.store.update(
            job_id, state="done", finished_at=time.time(),
            backend_tier=manifest.get("backend_tier"),
        )
        self._emit(job_id, {
            "type": "done",
            "cells_done": status.cells_done,
            "cells_total": status.cells_total,
            "backend_tier": status.backend_tier,
        })
