"""Bounded-worker job execution for the job server.

Jobs execute through :func:`repro.api.solve.run_spec` — the exact machinery
behind ``repro run --spec`` — against the store's resumable JSONL sink, so a
served job's records are byte-identical to a local replay of the same spec
(modulo wall-clock fields), restart recovery is the sink's ``resume=True``
path, and the manifest pins the spec hash the job is addressed by.

The pool is a :class:`~concurrent.futures.ThreadPoolExecutor`: the hot loops
are NumPy/compiled kernels that release the GIL, a spec may itself request
process-pool sharding (``run.workers > 1``), and threads can share the
process-wide engine instances (and their warmed-up JIT kernels) for free.

With ``execution="process"`` each job *additionally* fans its cells out
through the crash-containing process pool of :mod:`repro.engine.parallel`:
the job still runs on its queue thread (keeping the durable-sink, progress,
and SSE semantics identical), but ``run_spec`` is called with a per-job
``workers`` budget, so the cells execute in worker processes — hardware-bound
instead of GIL-bound, with pool-worker crashes contained and re-dispatched by
the pool itself (kill-restart recovery extends to pool workers for free).
The budget overrides the spec's own ``run.workers`` (the server owns its
execution resources; the spec hash is untouched — execution overrides never
change it).  Single-cell jobs still run serially in-thread: there is nothing
to fan out.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Any, Callable

from repro.engine.retry import RetryPolicy, describe_error
from repro.engine.sink import machine_cores
from repro.server.store import JobStore
from repro.testing import faults

__all__ = ["JobQueue", "EXECUTION_MODES"]

#: Job execution modes: "thread" runs a job's cells on its queue thread;
#: "process" fans them out through the engine's crash-containing process pool.
EXECUTION_MODES = ("thread", "process")


class JobQueue:
    """Execute stored jobs on a bounded worker pool with progress events.

    ``on_event(job_id, event)`` — when given — is called from worker threads
    for every lifecycle transition and completed cell; the HTTP layer bridges
    these onto the asyncio loop for SSE.  Event shapes::

        {"type": "status", "state": "running", "attempts": n}
        {"type": "progress", "done": d, "total": t, "resumed": d}   # on start
        {"type": "cell", "cell": id, "done": d, "total": t, "record": {...}}
        {"type": "done", "cells_done": d, "cells_total": t, "backend_tier": ...}
        {"type": "failed", "error": {"kind": ..., "type": ..., "message": ...,
                                     "traceback_digest": ..., "attempts": ...}}

    ``default_retry`` — when given — is the server-wide
    :class:`~repro.engine.retry.RetryPolicy` applied to jobs whose spec does
    not declare its own ``run.retry``; a spec-declared policy always wins
    (the spec is the contract the job is addressed by).

    ``execution`` selects the per-job execution plane (see the module
    docstring): ``"thread"`` or ``"process"``.  ``job_workers`` is the
    per-job worker budget of process mode; when ``None`` it defaults to
    ``max(2, cores // workers)`` — the machine's cores split across the
    concurrently executing jobs, floored at 2 so the crash-containing pool
    actually engages.  Thread mode ignores the budget unless one is given
    explicitly (an explicit budget is honored in either mode).

    The per-cell progress hook doubles as the ``"server-cell"`` fault-injection
    site (:mod:`repro.testing.faults`): chaos tests inject a raise/hang there
    to simulate a job executor dying mid-job without patching queue internals.
    """

    def __init__(
        self,
        store: JobStore,
        workers: int = 2,
        on_event: Callable[[str, dict[str, Any]], None] | None = None,
        default_retry: RetryPolicy | None = None,
        execution: str = "thread",
        job_workers: int | None = None,
    ):
        if int(workers) < 1:
            raise ValueError(f"JobQueue workers must be >= 1, got {workers!r}")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"JobQueue execution must be one of {EXECUTION_MODES}, "
                             f"got {execution!r}")
        if job_workers is not None and int(job_workers) < 1:
            raise ValueError(f"JobQueue job_workers must be >= 1, got {job_workers!r}")
        self.store = store
        self.workers = int(workers)
        self.execution = execution
        if job_workers is not None:
            self.job_workers: int | None = int(job_workers)
        elif execution == "process":
            self.job_workers = max(2, machine_cores() // self.workers)
        else:
            self.job_workers = None
        self.on_event = on_event
        self.default_retry = default_retry
        self.reaped_total = 0
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="repro-job")
        self._futures: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission / recovery
    # ------------------------------------------------------------------ #

    def submit(self, job_id: str) -> Future:
        """Queue one stored job for execution (idempotent while in flight)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("JobQueue is shut down")
            future = self._futures.get(job_id)
            if future is not None and not future.done():
                return future
            future = self._pool.submit(self._execute, job_id)
            self._futures[job_id] = future
            return future

    def recover(self) -> list[str]:
        """Re-queue every incomplete (queued/running) job in the store.

        This is the restart path: jobs the previous process died under go
        back on the pool, and their sinks resume — completed cells are loaded
        from ``records.jsonl``, never recomputed.
        """
        incomplete = self.store.incomplete_job_ids()
        for job_id in incomplete:
            self.store.update(job_id, state="queued")
            self.submit(job_id)
        return incomplete

    def pending(self) -> int:
        with self._lock:
            return sum(1 for f in self._futures.values() if not f.done())

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.  ``wait=False`` abandons queued jobs (they stay
        ``queued``/``running`` on disk and are recovered on restart)."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful drain: refuse new work, drop *queued* jobs back to the
        store (they stay ``queued`` on disk — restart recovery re-queues
        them), and wait up to ``timeout`` seconds for the jobs already
        running to finish their cells and close their sinks.

        Returns ``True`` when every running job completed within the budget;
        ``False`` means the drain timed out and the caller should force-abort
        (running jobs stay ``running`` on disk and resume on restart, losing
        at most their in-flight cells).
        """
        with self._lock:
            self._closed = True
            futures = list(self._futures.values())
        # cancel_futures drops queued (not-yet-started) jobs; wait=False so
        # *we* own the bounded wait below instead of blocking indefinitely.
        self._pool.shutdown(wait=False, cancel_futures=True)
        running = [f for f in futures if not f.done() and not f.cancelled()]
        _, not_done = futures_wait(running, timeout=timeout)
        return not not_done

    # ------------------------------------------------------------------ #
    # Reaping dead executors
    # ------------------------------------------------------------------ #

    def reap(self) -> list[str]:
        """Mark jobs whose executor died without a terminal state as failed.

        A ``BaseException`` escaping a job thread (``SystemExit`` from
        library code, an injected chaos fault) ends the future but skips the
        ``except Exception`` bookkeeping, leaving ``job.json`` saying
        ``running`` forever on a server that is never restarted.  This scans
        for exactly that: a *done* future whose job is still non-terminal on
        disk.  Cancelled futures are skipped — their jobs are legitimately
        ``queued`` (the drain path).  Returns the reaped job ids.
        """
        reaped: list[str] = []
        with self._lock:
            items = list(self._futures.items())
        for job_id, future in items:
            if not future.done() or future.cancelled():
                continue
            status = self.store.load(job_id)
            if status is None or status.terminal or status.state == "queued":
                continue
            exc = future.exception()
            if exc is not None:
                error = describe_error(exc, attempts=status.attempts)
            else:
                error = {
                    "kind": "crash",
                    "type": "DeadExecutor",
                    "message": "job executor ended without recording a terminal state",
                    "traceback_digest": None,
                    "attempts": status.attempts,
                }
            self.store.update(job_id, state="failed", finished_at=time.time(),
                              error=error)
            self._emit(job_id, {"type": "failed", "error": error})
            reaped.append(job_id)
        self.reaped_total += len(reaped)
        return reaped

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _emit(self, job_id: str, event: dict[str, Any]) -> None:
        if self.on_event is not None:
            self.on_event(job_id, event)

    def _execute(self, job_id: str) -> None:
        from repro.api.solve import run_spec
        from repro.engine.sink import JsonlSink

        status = self.store.load(job_id)
        if status is None or status.terminal:
            return  # deleted or already finished (e.g. duplicate recovery)
        status = self.store.update(
            job_id, state="running", started_at=time.time(),
            attempts=status.attempts + 1, error=None,
        )
        self._emit(job_id, {"type": "status", "state": "running",
                            "attempts": status.attempts})

        def progress(done: int, total: int, cell: str | None, record) -> None:
            changes: dict[str, Any] = {"cells_done": done, "cells_total": total}
            if cell is None:
                # First callback: the sink has started, so the manifest (and
                # the backend tier that will run the job) is durable already.
                manifest = self.store.manifest(job_id)
                if manifest is not None:
                    changes["backend_tier"] = manifest.get("backend_tier")
                self.store.update(job_id, **changes)
                self._emit(job_id, {"type": "progress", "done": done,
                                    "total": total, "resumed": done})
            else:
                self.store.update(job_id, **changes)
                self._emit(job_id, {"type": "cell", "cell": cell, "done": done,
                                    "total": total, "record": dict(record)})
            if cell is not None:
                faults.fire("server-cell", job_id=job_id, done=done, total=total)

        # The server-wide default policy applies only when the spec does not
        # declare its own (the spec is the contract the job is addressed by).
        retry = None
        if self.default_retry is not None and \
                not (status.spec.get("run") or {}).get("retry"):
            retry = self.default_retry

        sink = JsonlSink(self.store.records_path(job_id), resume=True)
        try:
            try:
                run_spec(status.spec, sink=sink, retry=retry, progress=progress,
                         workers=self.job_workers)
            finally:
                sink.close()
        except Exception as exc:  # noqa: BLE001 — any job failure is recorded
            error = describe_error(exc, attempts=status.attempts)
            status = self.store.update(
                job_id, state="failed", finished_at=time.time(), error=error,
            )
            self._emit(job_id, {"type": "failed", "error": error})
            return
        manifest = self.store.manifest(job_id) or {}
        status = self.store.update(
            job_id, state="done", finished_at=time.time(),
            backend_tier=manifest.get("backend_tier"),
        )
        self._emit(job_id, {
            "type": "done",
            "cells_done": status.cells_done,
            "cells_total": status.cells_total,
            "backend_tier": status.backend_tier,
        })
