"""repro.server — coloring-as-a-service: a job server over :class:`JobSpec`.

The declarative spec layer (:mod:`repro.api.spec`), the content-addressed
``spec_hash``, and the resumable sinks (:mod:`repro.engine.sink`) are exactly
the ingredients of a service API; this package assembles them into a
long-running HTTP server (``repro serve``):

* :class:`~repro.server.store.JobStore` — the durable state directory: one
  content-addressed directory per job (``jobs/<spec_hash>/``) holding the
  job's status document and its resumable JSONL record sink.
* :class:`~repro.server.queue.JobQueue` — a bounded worker pool executing
  jobs through :func:`repro.api.solve.run_spec` (the exact same machinery as
  ``repro run --spec``, so a served job's records are byte-identical to a
  local run), with per-cell progress callbacks.
* :class:`~repro.server.app.JobServer` — the asyncio HTTP front end: POST a
  JobSpec, poll ``GET /jobs/<id>``, stream per-cell progress over SSE, check
  ``GET /healthz``.  Duplicate submissions dedupe by ``spec_hash`` into the
  store (a finished job is a cache hit — no re-execution), and a restarted
  server re-queues incomplete jobs, whose sinks resume where they left off.
"""

from repro.server.app import JobServer
from repro.server.queue import JobQueue
from repro.server.store import JobStore

__all__ = ["JobServer", "JobQueue", "JobStore"]
