"""Durable, content-addressed job state for the job server.

Layout of the state directory::

    <state_dir>/
      jobs/
        <spec_hash>/
          job.json        # JobStatus document (atomically replaced on update)
          records.jsonl   # the job's JSONL sink (manifest first line)

The job id *is* the spec's canonical hash, so the store doubles as the
result cache: a resubmission of the same document lands in the same
directory, and a finished job's records are served without re-execution.
Status updates are write-temp-then-rename so a killed server never leaves a
torn ``job.json``; the records file is the sink's own torn-line-tolerant
JSONL, so restart recovery is the sink's ``resume=True`` path.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any, Iterator

from repro.api.spec import JobStatus, SpecError

__all__ = ["JobStoreError", "JobStore"]


class JobStoreError(RuntimeError):
    """An unusable job directory (missing/corrupt status document)."""


class JobStore:
    """The server's persistent job table (one directory per spec hash)."""

    def __init__(self, state_dir: os.PathLike | str):
        self.root = pathlib.Path(state_dir)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        # One lock for all read-modify-write status updates: worker threads
        # (progress callbacks) and the asyncio thread (submissions) both
        # touch job.json.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def job_dir(self, job_id: str) -> pathlib.Path:
        if not job_id or any(c not in "0123456789abcdef" for c in job_id):
            raise JobStoreError(f"malformed job id {job_id!r} (expected a hex spec hash)")
        return self.jobs_dir / job_id

    def status_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "job.json"

    def records_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "records.jsonl"

    # ------------------------------------------------------------------ #
    # Status documents
    # ------------------------------------------------------------------ #

    def create(self, job_id: str, spec: dict[str, Any]) -> JobStatus:
        """Create a queued job (or return the existing one — content address)."""
        with self._lock:
            existing = self._load_unlocked(job_id)
            if existing is not None:
                return existing
            status = JobStatus(id=job_id, spec=spec, state="queued",
                               submitted_at=time.time())
            self._write_unlocked(status)
            return status

    def load(self, job_id: str) -> JobStatus | None:
        with self._lock:
            return self._load_unlocked(job_id)

    def _load_unlocked(self, job_id: str) -> JobStatus | None:
        path = self.status_path(job_id)
        if not path.exists():
            return None
        try:
            return JobStatus.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (json.JSONDecodeError, SpecError) as exc:
            raise JobStoreError(f"corrupt job status {path}: {exc}") from None

    def update(self, job_id: str, **changes: Any) -> JobStatus:
        """Atomically apply field changes to a job's status document."""
        with self._lock:
            status = self._load_unlocked(job_id)
            if status is None:
                raise JobStoreError(f"unknown job {job_id!r}")
            for field_name, value in changes.items():
                if not hasattr(status, field_name):
                    raise JobStoreError(f"JobStatus has no field {field_name!r}")
                setattr(status, field_name, value)
            if status.state not in ("queued", "running", "done", "failed"):
                raise JobStoreError(f"unknown job state {status.state!r}")
            self._write_unlocked(status)
            return status

    def _write_unlocked(self, status: JobStatus) -> None:
        directory = self.job_dir(status.id)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.status_path(status.id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(status.to_dict(), indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path)  # atomic on POSIX: never a torn job.json

    # ------------------------------------------------------------------ #
    # Enumeration / recovery
    # ------------------------------------------------------------------ #

    def job_ids(self) -> list[str]:
        """All known job ids (sorted for deterministic listings)."""
        return sorted(
            p.name for p in self.jobs_dir.iterdir()
            if p.is_dir() and (p / "job.json").exists()
        )

    def statuses(self) -> Iterator[JobStatus]:
        for job_id in self.job_ids():
            status = self.load(job_id)
            if status is not None:
                yield status

    def incomplete_job_ids(self) -> list[str]:
        """Jobs a restarted server must re-queue (``queued`` or ``running``).

        A job found ``running`` at startup is a job the previous process died
        under; its sink holds every cell that completed durably, so re-running
        it resumes — it never recomputes finished cells.
        """
        return [s.id for s in self.statuses() if not s.terminal]

    def counts(self) -> dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for status in self.statuses():
            counts[status.state] = counts.get(status.state, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Records (the job's sink file, read-side)
    # ------------------------------------------------------------------ #

    def manifest(self, job_id: str) -> dict[str, Any] | None:
        """The sink manifest of a job's records file (first JSONL line)."""
        path = self.records_path(job_id)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as fh:
            head = fh.readline()
        if not head.endswith("\n"):
            return None  # torn first line: the manifest write did not survive
        try:
            return json.loads(head).get("manifest")
        except json.JSONDecodeError:
            return None

    def records(self, job_id: str) -> list[dict[str, Any]]:
        """The ``{cell, record}`` entries written so far (torn tail skipped)."""
        path = self.records_path(job_id)
        if not path.exists():
            return []
        out = []
        text = path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1] != "":
            lines = lines[:-1]  # torn final line: not durable, not reported
        for line in lines[1:]:  # skip the manifest line
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict) and "cell" in obj and "record" in obj:
                out.append(obj)
        return out
