"""``repro serve`` — the asyncio HTTP front end of the job server.

Stdlib only (``asyncio`` streams + a small HTTP/1.1 layer): no framework
dependency, which keeps the server importable everywhere the package is.

Routes
------

* ``POST /jobs`` — submit a :class:`~repro.api.spec.JobSpec` document.
  Validated against the spec schema, the algorithm registry (names *and*
  params), the backend registry, and the generator families — malformed or
  unknown anything is a ``422`` naming the problem, never a queued job that
  fails later.  The job id is the spec's canonical hash: resubmitting the
  same document (field order and omitted defaults don't matter — the
  document is normalised before hashing) returns the *same* job, and a
  finished job is a cache hit served straight from the store.
* ``GET /jobs`` — list all jobs (id, state, progress).
* ``GET /jobs/<id>`` — one job's status (plus its sink manifest, which pins
  ``spec_hash`` and the ``backend_tier`` that executed it).
* ``GET /jobs/<id>/records`` — the records written so far (durable ones
  only: the sink's torn-tail rule applies).
* ``GET /jobs/<id>/events`` — Server-Sent Events: replays the durable
  per-cell history from the sink, then streams live ``cell`` events until a
  terminal ``done``/``failed`` event.
* ``GET /healthz`` — liveness + the full backend report
  (:func:`repro.engine.registry.describe_backends`), including each
  backend's *active tier* — the per-process answer to "is the jit backend
  silently running on the array fallback?" — and the execution plane
  (thread vs process mode, per-job worker budget, pool size).

Restart story: on startup the server re-queues every job the previous
process left ``queued``/``running``; their JSONL sinks resume, so completed
cells are never recomputed and the finished records are identical to an
uninterrupted run (modulo wall-clock fields of re-run cells).
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading
import time
from typing import Any
from urllib.parse import unquote, urlsplit

from repro.api.registry import AlgorithmError, get_algorithm
from repro.api.spec import JobSpec, SpecError, spec_hash
from repro.engine.base import EngineError
from repro.server.queue import JobQueue
from repro.server.store import JobStore, JobStoreError

__all__ = ["JobServer"]

#: Largest accepted request body (a JobSpec document), in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024

_JSON = "application/json"


class _HttpError(Exception):
    """Terminate request handling with a status + JSON error body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
}


class JobServer:
    """The long-running coloring service: HTTP + SSE over store and queue.

    Parameters
    ----------
    state_dir:
        Durable state directory (jobs survive restarts here).
    host / port:
        Bind address; ``port=0`` picks a free port (``self.port`` reports the
        actual one after :meth:`start`).
    workers:
        Bound on concurrently *executing* jobs (the :class:`JobQueue` pool);
        further submissions queue.
    drain_timeout:
        Seconds a graceful stop waits for running jobs to finish their cells
        and close their sinks before giving up (``None`` = wait forever).
        A drain that times out sets :attr:`drained_clean` to ``False``; the
        abandoned jobs stay ``running`` on disk and resume on restart.
    reap_interval:
        Seconds between scans of :meth:`JobQueue.reap` — the background
        reaper that marks jobs with dead executors as ``failed`` instead of
        leaving them ``running`` on disk forever.  ``None`` disables the
        background thread (``reap()`` can still be driven manually).
    default_retry:
        Server-wide :class:`~repro.engine.retry.RetryPolicy` for jobs whose
        spec declares none (see :class:`JobQueue`).
    execution:
        The per-job execution plane: ``"thread"`` runs a job's cells on its
        queue thread, ``"process"`` fans them out through the engine's
        crash-containing process pool (see :class:`JobQueue`), and
        ``"auto"`` (the default) picks ``"process"`` on a multi-core
        machine and ``"thread"`` on a single core.
    job_workers:
        Per-job worker budget of process mode (default: cores split across
        the job pool — see :class:`JobQueue`).
    """

    def __init__(self, state_dir, host: str = "127.0.0.1", port: int = 8765,
                 workers: int = 2, drain_timeout: float | None = 30.0,
                 reap_interval: float | None = 5.0, default_retry=None,
                 execution: str = "auto", job_workers: int | None = None):
        from repro.engine.sink import machine_cores

        self.store = JobStore(state_dir)
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.drain_timeout = drain_timeout
        self.reap_interval = reap_interval
        self.drained_clean = True
        if execution == "auto":
            execution = "process" if machine_cores() > 1 else "thread"
        self.queue = JobQueue(self.store, workers=self.workers,
                              on_event=self._publish_threadsafe,
                              default_retry=default_retry,
                              execution=execution, job_workers=job_workers)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._reaper: threading.Thread | None = None
        self._reaper_stop = threading.Event()
        self._abort = False
        self._started_at: float | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the socket, resolve backends, and re-queue incomplete jobs."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # Resolve every backend once up front (JIT warmup / tier resolution)
        # so the first request never pays compilation and /healthz is cheap.
        from repro.engine.registry import describe_backends

        await self._loop.run_in_executor(None, describe_backends)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=1 << 20
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self.queue.recover()
        if self.reap_interval is not None:
            self._reaper_stop.clear()
            self._reaper = threading.Thread(target=self._reap_loop,
                                            name="repro-reaper", daemon=True)
            self._reaper.start()

    def _reap_loop(self) -> None:
        """The background reaper: periodically fail jobs with dead executors."""
        while not self._reaper_stop.wait(self.reap_interval):
            try:
                self.queue.reap()
            except Exception:  # noqa: BLE001 — the reaper itself must survive
                pass

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or task cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self._aclose()

    async def _aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._reaper_stop.set()
        # Graceful stop drains running jobs (bounded by drain_timeout) so
        # their cells land in the sink and queued jobs persist as `queued`;
        # abort abandons everything mid-flight (they stay queued/running on
        # disk — the restart-recovery path picks them up).
        if self._abort:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.queue.shutdown(wait=False)
            )
        else:
            self.drained_clean = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.queue.drain(self.drain_timeout)
            )

    # -- background-thread harness (tests, benchmarks, embedding) -------- #

    def start_background(self) -> "JobServer":
        """Run the server on a daemon thread with its own event loop."""
        started = threading.Event()
        failure: list[BaseException] = []

        def _main() -> None:
            async def _run() -> None:
                try:
                    await self.start()
                except BaseException as exc:  # noqa: BLE001 — reported to caller
                    failure.append(exc)
                    started.set()
                    return
                started.set()
                await self.serve_forever()

            asyncio.run(_run())

        self._thread = threading.Thread(target=_main, name="repro-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("job server failed to start within 30s")
        if failure:
            raise failure[0]
        return self

    def request_stop(self, abort: bool = False) -> None:
        """Ask the server to stop without blocking — safe from signal
        handlers and foreign threads.  ``serve_forever`` then runs the
        graceful drain (or the abort) and returns."""
        self._abort = abort or self._abort
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed

    def stop(self, abort: bool = False) -> None:
        """Stop a background server.  ``abort=True`` models a crash: running
        jobs are abandoned mid-flight (left incomplete on disk) instead of
        drained."""
        self.request_stop(abort=abort)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Event hub (worker threads -> asyncio subscribers)
    # ------------------------------------------------------------------ #

    def _publish_threadsafe(self, job_id: str, event: dict[str, Any]) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._publish, job_id, event)
        except RuntimeError:
            pass  # shutting down

    def _publish(self, job_id: str, event: dict[str, Any]) -> None:
        for queue in self._subscribers.get(job_id, ()):
            queue.put_nowait(event)

    def _subscribe(self, job_id: str) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, set()).add(queue)
        return queue

    def _unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id)
        if listeners is not None:
            listeners.discard(queue)
            if not listeners:
                self._subscribers.pop(job_id, None)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(reader.readline(), timeout=30)
            except asyncio.TimeoutError:
                return
            if not request_line:
                return
            try:
                method, target, _version = request_line.decode("latin-1").split(None, 2)
            except ValueError:
                await self._respond_error(writer, 400, "malformed request line")
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            if length > MAX_BODY_BYTES:
                await self._respond_error(writer, 413, "request body too large")
                return
            body = await reader.readexactly(length) if length else b""
            parts = urlsplit(target)
            path = unquote(parts.path)
            try:
                await self._route(writer, method.upper(), path, body)
            except _HttpError as exc:
                await self._respond_error(writer, exc.status, exc.message)
            except (SpecError, AlgorithmError, EngineError) as exc:
                # Validation failures of an otherwise well-formed document.
                await self._respond_error(writer, 422, str(exc))
            except JobStoreError as exc:
                await self._respond_error(writer, 500, str(exc))
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {_JSON}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _respond_error(self, writer: asyncio.StreamWriter, status: int,
                             message: str) -> None:
        await self._respond(writer, status, {"error": message, "status": status})

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _route(self, writer: asyncio.StreamWriter, method: str, path: str,
                     body: bytes) -> None:
        if path in ("/healthz", "/health"):
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            await self._respond(writer, 200, self._healthz())
            return
        if path in ("/jobs", "/jobs/"):
            if method == "POST":
                await self._submit(writer, body)
                return
            if method == "GET":
                await self._respond(writer, 200, {
                    "jobs": [self._status_payload(s) for s in self.store.statuses()]
                })
                return
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            status = self.store.load(job_id) if job_id else None
            if status is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if sub == "":
                payload = self._status_payload(status)
                payload["manifest"] = self.store.manifest(job_id)
                await self._respond(writer, 200, payload)
            elif sub == "records":
                await self._respond(writer, 200, {
                    "id": job_id,
                    "state": status.state,
                    "manifest": self.store.manifest(job_id),
                    "records": self.store.records(job_id),
                })
            elif sub == "events":
                await self._stream_events(writer, job_id)
            else:
                raise _HttpError(404, f"unknown job endpoint {sub!r}")
            return
        raise _HttpError(404, f"no route for {path!r}")

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def _healthz(self) -> dict[str, Any]:
        from repro import __version__
        from repro.engine.registry import available_backends, describe_backends, get_engine

        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": (
                None if self._started_at is None else time.time() - self._started_at
            ),
            "workers": self.workers,
            "jobs": self.store.counts(),
            # The execution plane: thread- vs process-mode job execution,
            # the per-job worker budget, and the job pool size — so a client
            # can tell a GIL-bound server from a hardware-bound one.
            "execution": {
                "mode": self.queue.execution,
                "job_workers": self.queue.job_workers,
                "pool_size": self.workers,
            },
            # Fault-tolerance state: how many dead executors the reaper has
            # failed, and the drain configuration — the /healthz view of the
            # execution plane's health, not just the process's.
            "queue": {
                "pending": self.queue.pending(),
                "reaped_total": self.queue.reaped_total,
                "reap_interval": self.reap_interval,
                "drain_timeout": self.drain_timeout,
            },
            "backends": describe_backends(),
            # The per-process degradation report: e.g. "jit:numba" vs
            # "jit:fallback-array" — no warning-scraping required.
            "backend_tiers": {
                name: get_engine(name).active_tier() for name in available_backends()
            },
        }

    def _status_payload(self, status) -> dict[str, Any]:
        payload = status.to_dict()
        payload["url"] = f"/jobs/{status.id}"
        return payload

    def _validate_document(self, body: bytes) -> tuple[str, JobSpec]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise _HttpError(422, "request body must be a JobSpec JSON object")
        job = JobSpec.from_dict(document)  # SpecError -> 422 (schema/backend)
        algorithm = get_algorithm(job.run.algorithm)  # AlgorithmError -> 422
        for grid_entry in job.effective_grid() or [{}]:
            algorithm.validate_params(grid_entry)
        from repro.congest import generators

        for problem in job.problems:
            if not problem.is_serializable:  # unreachable from JSON; belt+braces
                raise SpecError("job problems must be GraphSpec-described")
            family = problem.graph.family
            if family == "file":
                # corpus cell: the file must exist server-side; content drift
                # still 422s at canonical-hash time (file_digest raises there)
                path = getattr(problem.graph, "path", None)
                if not path or not pathlib.Path(path).is_file():
                    raise _HttpError(
                        422, f"graph file not found on server: {path!r}"
                    )
            elif family not in generators.FAMILIES:
                raise _HttpError(
                    422,
                    f"unknown graph family {family!r}; known: "
                    f"{sorted(generators.FAMILIES)} + ['file']",
                )
        return spec_hash(job), job

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        job_id, job = self._validate_document(body)
        existing = self.store.load(job_id)
        if existing is not None and existing.state != "failed":
            # Content-addressed dedupe: same canonical document, same job.
            # Finished jobs are cache hits; in-flight ones just gain a watcher.
            payload = self._status_payload(existing)
            payload["cached"] = True
            await self._respond(writer, 200, payload)
            return
        if existing is not None:  # failed: a resubmission retries it
            status = self.store.update(job_id, state="queued")
        else:
            status = self.store.create(job_id, job.to_dict())
        self.queue.submit(job_id)
        payload = self._status_payload(status)
        payload["cached"] = False
        await self._respond(writer, 201, payload)

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        """SSE: durable history first (from the sink), then live events."""
        queue = self._subscribe(job_id)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            status = self.store.load(job_id)
            manifest = self.store.manifest(job_id)
            total = (manifest or {}).get("cells", status.cells_total)
            sent_cells: set[str] = set()
            history = self.store.records(job_id)
            for i, obj in enumerate(history):
                sent_cells.add(obj["cell"])
                self._write_event(writer, "cell", {
                    "cell": obj["cell"], "done": i + 1, "total": total,
                    "record": obj["record"],
                })
            if status.terminal:
                self._write_event(writer, status.state, self._status_payload(status))
                await writer.drain()
                return
            await writer.drain()
            while True:
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=15)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")  # hold the connection open
                    await writer.drain()
                    continue
                kind = event.get("type")
                if kind == "cell":
                    if event["cell"] in sent_cells:
                        continue
                    sent_cells.add(event["cell"])
                    self._write_event(writer, "cell", event)
                elif kind == "done":
                    self._write_event(writer, "done", event)
                    await writer.drain()
                    return
                elif kind == "failed":
                    self._write_event(writer, "failed", event)
                    await writer.drain()
                    return
                else:
                    self._write_event(writer, kind or "message", event)
                await writer.drain()
        finally:
            self._unsubscribe(job_id, queue)

    @staticmethod
    def _write_event(writer: asyncio.StreamWriter, kind: str, data: Any) -> None:
        writer.write(
            f"event: {kind}\ndata: {json.dumps(data, separators=(',', ':'))}\n\n"
            .encode("utf-8")
        )
