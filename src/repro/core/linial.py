"""Linial's ``O(log* n)``-round ``O(Delta^2)``-coloring, realised via the mother algorithm.

Linial's algorithm treats the unique ``O(log n)``-bit IDs as an input coloring
with ``m = poly(n)`` colors and repeatedly applies a one-round color reduction
that maps an ``m``-coloring to an ``O(Delta^2 * polylog m)``-coloring.  After
``O(log* n)`` iterations the number of colors stabilises at ``O(Delta^2)``.

Here each iteration is exactly Corollary 1.2 (1) — the mother algorithm with
``d = 0`` and a single batch — so this module is also the standard preprocessing
step that produces the ``Delta^4`` / ``Delta^2`` input colorings every other
algorithm in the package starts from.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import assign_unique_ids, validate_proper_coloring
from repro.core.corollaries import linial_color_reduction
from repro.core.results import ColoringResult
from repro.engine.base import Engine
from repro.engine.registry import resolve_backend

__all__ = ["linial_coloring", "iterated_color_reduction"]


def iterated_color_reduction(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    target_colors: int | None = None,
    max_iterations: int = 64,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Iterate the one-round reduction until the color space stops shrinking.

    Parameters
    ----------
    target_colors:
        Stop as soon as the color-space bound is at most this value (default:
        ``256 * Delta^2``, the bound of Corollary 1.2 (1)).
    validate_input:
        Check that ``input_colors`` is a proper ``m``-coloring *once*, here at
        entry.  The interior reduction steps always skip re-validation: every
        step's output is a proper coloring by Theorem 1.1, so validating it
        again inside each iteration is ``O(|E|)`` of pure overhead.

    Returns
    -------
    ColoringResult
        ``rounds`` counts one round per reduction step (the paper's
        ``O(log* n)``); metadata records the sequence of color-space sizes.
    """
    engine = resolve_backend(backend, vectorized)
    delta = max(1, graph.max_degree)
    if target_colors is None:
        target_colors = 256 * delta * delta

    colors = np.asarray(input_colors, dtype=np.int64)
    space = int(m)
    if validate_input and space > target_colors:
        # Validate once, up front — but only when a reduction step will
        # actually run (the no-op path never validated before the hoist
        # either: validation used to live inside the first mother call).
        validate_proper_coloring(graph, colors, m)
    history = [space]
    rounds = 0
    result: ColoringResult | None = None

    for _ in range(max_iterations):
        if space <= target_colors:
            break
        step = linial_color_reduction(graph, colors, space, backend=engine, validate_input=False)
        new_space = step.color_space_size
        if new_space >= space:
            # No further progress possible (already at the fixed point of the
            # reduction); stop rather than looping forever.
            break
        rounds += 1
        result = step
        # The next iteration's input coloring is the output color space of this
        # step *as is* (no global relabelling — that would not be a legal
        # distributed step); the encoded colors already lie in
        # [step.color_space_size].
        colors = step.colors
        space = new_space
        history.append(space)

    metadata = {"color_space_history": history, "target_colors": target_colors}
    return ColoringResult(
        colors=colors if result is not None else colors.copy(),
        rounds=rounds,
        color_space_size=space,
        metadata=metadata,
    )


def linial_coloring(
    graph: Graph,
    ids: np.ndarray | None = None,
    id_space: int | None = None,
    seed: int | None = None,
    target_colors: int | None = None,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """Compute an ``O(Delta^2)``-coloring from unique IDs in ``O(log* n)`` rounds.

    Parameters
    ----------
    ids:
        Unique IDs (one per vertex); assigned automatically when omitted
        (identity IDs, or a seeded random injection into ``[n^2]`` when ``seed``
        is given).
    id_space:
        Size of the ID space (``m`` for the first reduction step); defaults to
        ``max(ids) + 1``.
    target_colors:
        Stop once the color space is at most this bound (default ``256 Delta^2``).
    """
    if ids is None:
        ids = assign_unique_ids(graph, id_space=id_space, seed=seed)
    ids = np.asarray(ids, dtype=np.int64)
    if np.unique(ids).size != ids.size:
        raise ValueError("ids must be unique")
    space = int(id_space) if id_space is not None else (int(ids.max()) + 1 if ids.size else 1)
    return iterated_color_reduction(
        graph, ids, space, target_colors=target_colors,
        backend=resolve_backend(backend, vectorized),
    )


# --------------------------------------------------------------------------- #
# Registry entry (see repro.api.registry)
# --------------------------------------------------------------------------- #

from repro.api.records import coloring_record  # noqa: E402
from repro.api.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "linial",
    summary="Linial's O(Delta^2)-coloring from unique IDs",
    guarantee="proper; <= 256*Delta^2 colors in O(log* n) rounds",
    source="Linial via iterated Corollary 1.2 (1)",
    requires_input_coloring=False,
)
def _run_linial(w, engine):
    res = linial_coloring(w.graph, seed=w.spec.seed, backend=engine)
    return coloring_record(res, verify_graph=w.graph)
