"""Result containers shared by all coloring / ruling-set algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ColoringResult", "RulingSetResult"]


@dataclass
class ColoringResult:
    """Output of a (possibly defective) coloring algorithm.

    Attributes
    ----------
    colors:
        ``colors[v]`` — the color of vertex ``v``.  For tuple-valued colorings
        (e.g. the ``(psi, phi)`` colors of Theorem 1.3) the array has dtype
        ``object``.
    rounds:
        Round complexity in the paper's sense: the number of communication
        rounds the algorithm needs (for the mother algorithm, the number of
        batch-trial iterations).  Simulator bookkeeping rounds (e.g. the final
        "announce my color" round) are reported separately in ``metadata``.
    color_space_size:
        Upper bound on the color space the algorithm draws from (the ``C`` in
        "``C``-coloring"); ``num_colors`` counts the colors actually used.
    parts:
        Optional partition indices ``P_1 .. P_R`` from Theorem 1.1 point (2).
    orientation:
        Optional orientation of monochromatic edges (set of ``(u, v)`` pairs
        meaning ``u -> v``) from Theorem 1.1 point (1).
    metadata:
        Free-form extras: parameters, message statistics, sub-phase rounds.
    """

    colors: np.ndarray
    rounds: int
    color_space_size: int
    parts: np.ndarray | None = None
    orientation: set[tuple[int, int]] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def num_colors(self) -> int:
        """Number of distinct colors actually used."""
        if self.colors.size == 0:
            return 0
        if self.colors.dtype == object:
            return len(set(self.colors.tolist()))
        return int(np.unique(self.colors).size)

    @property
    def n(self) -> int:
        """Number of vertices colored."""
        return int(self.colors.shape[0])

    def normalized_colors(self) -> np.ndarray:
        """Relabel the used colors to ``0 .. num_colors - 1`` (stable order).

        Useful when a result with a sparse color space (e.g. encoded
        ``(x mod k, p(x))`` pairs) is fed into another algorithm as an input
        coloring with ``m = num_colors``.
        """
        if self.colors.size == 0:
            return self.colors.astype(np.int64, copy=True)
        if self.colors.dtype == object:
            distinct = sorted(set(self.colors.tolist()))
            lookup = {c: i for i, c in enumerate(distinct)}
            return np.array([lookup[c] for c in self.colors.tolist()], dtype=np.int64)
        distinct, inverse = np.unique(self.colors, return_inverse=True)
        return inverse.astype(np.int64)

    def summary(self) -> dict[str, Any]:
        """Compact summary used by the experiment tables."""
        return {
            "n": self.n,
            "rounds": self.rounds,
            "colors_used": self.num_colors,
            "color_space": self.color_space_size,
        }


@dataclass
class RulingSetResult:
    """Output of a ruling-set algorithm."""

    vertices: np.ndarray
    rounds: int
    r: int
    alpha: int = 2
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of vertices in the ruling set."""
        return int(self.vertices.shape[0])

    def summary(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "rounds": self.rounds,
            "r": self.r,
            "alpha": self.alpha,
        }
