"""Algorithm 1 / Theorem 1.1 — the mother algorithm, as a per-node CONGEST algorithm.

Every node locally computes its color sequence from its input color (no
communication), then repeats: broadcast the input color (from which neighbors
reconstruct this round's batch of trials), count conflicts for each trial in
the current batch, and permanently adopt the first trial with at most ``d``
conflicts.  A freshly colored node announces its final color in the next round
and halts.

Messages are either ``("TRY", input_color)`` or ``("COLORED", encoded_color)``
— ``O(log m + log Delta)`` bits, i.e. CONGEST-compatible, exactly as argued in
the paper's "CONGEST implementation" paragraph.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.congest.messages import Broadcast
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.runner import run_algorithm
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.core.sequences import ColorSequence, batch_positions, build_sequence

__all__ = [
    "MotherAlgorithmNode",
    "run_mother_algorithm",
    "derive_orientation",
]

TRY = "TRY"
COLORED = "COLORED"


class MotherAlgorithmNode(NodeAlgorithm):
    """Per-node state machine of Algorithm 1."""

    def __init__(self, ctx: NodeContext, input_color: int, params: MotherParameters):
        super().__init__(ctx)
        self.params = params
        self.input_color = int(input_color)
        self.sequence: ColorSequence = build_sequence(self.input_color, params)
        self.batch_index = 0
        #: neighbors that announced a permanent color -> encoded color
        self.colored_neighbors: dict[int, int] = {}
        self.my_color: int | None = None
        self.my_part: int | None = None
        self._announced = False

    # ------------------------------------------------------------------ #

    def start(self):
        return Broadcast((TRY, self.input_color))

    def _neighbor_batch_value(self, neighbor_color: int, x: int) -> int:
        """Evaluate the neighbor's polynomial at position ``x`` (locally computable)."""
        seq = _neighbor_sequence_cache(self.params, neighbor_color)
        return int(seq[x])

    def receive(self, inbox: dict[int, Any]):
        if self.my_color is not None:
            # The COLORED announcement was sent this round; we are done.
            self.halt()
            return None

        # Split the inbox into this round's active triers and newly colored neighbors.
        active_trials: dict[int, int] = {}
        for sender, payload in inbox.items():
            tag, value = payload
            if tag == TRY:
                active_trials[sender] = int(value)
            elif tag == COLORED:
                self.colored_neighbors[sender] = int(value)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unexpected message tag {tag!r}")

        positions = batch_positions(self.params, self.batch_index)
        if positions.size == 0:
            raise RuntimeError(
                f"node {self.ctx.node} exhausted its color sequence — this contradicts "
                "Theorem 1.1 and indicates invalid parameters or a bug"
            )

        colored_values = list(self.colored_neighbors.values())
        for x in positions:
            x = int(x)
            my_value = int(self.sequence.values[x])
            my_encoded = self.params.encode_color(x, my_value)
            conflicts = 0
            # Active neighbors trying the same tuple this round: within a batch
            # the first coordinates are distinct, so only position x matters.
            for nbr_color in active_trials.values():
                if self._neighbor_batch_value(nbr_color, x) == my_value:
                    conflicts += 1
            # Neighbors already permanently colored with this exact color.
            conflicts += sum(1 for c in colored_values if c == my_encoded)
            if conflicts <= self.params.d:
                self.my_color = my_encoded
                self.my_part = self.batch_index + 1
                return Broadcast((COLORED, self.my_color))

        self.batch_index += 1
        return Broadcast((TRY, self.input_color))

    def output(self) -> dict[str, int]:
        if self.my_color is None:  # pragma: no cover - defensive
            raise RuntimeError(f"node {self.ctx.node} finished without a color")
        return {
            "color": self.my_color,
            "part": int(self.my_part),
            "input_color": self.input_color,
        }


# --------------------------------------------------------------------------- #
# Sequence cache: nodes recompute their neighbors' sequences locally (that is
# exactly what the CONGEST implementation does — the polynomial enumeration is
# global knowledge).  Caching per (params, color) merely avoids recomputing the
# same polynomial evaluation many times inside the simulator process.
# --------------------------------------------------------------------------- #

_SEQ_CACHE: dict[tuple[int, int, int, int], np.ndarray] = {}


def _neighbor_sequence_cache(params: MotherParameters, input_color: int) -> np.ndarray:
    key = (params.q, params.f, params.k, int(input_color))
    if key not in _SEQ_CACHE:
        if len(_SEQ_CACHE) > 200_000:  # keep the cache bounded across many runs
            _SEQ_CACHE.clear()
        _SEQ_CACHE[key] = build_sequence(int(input_color), params).values
    return _SEQ_CACHE[key]


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #


def derive_orientation(
    graph: Graph,
    colors: np.ndarray,
    parts: np.ndarray,
    input_colors: np.ndarray,
) -> set[tuple[int, int]]:
    """Orientation of monochromatic edges guaranteed by Theorem 1.1 point (1).

    An edge ``{u, v}`` with the same output color is oriented away from the
    vertex that got colored *later* (larger part index); ties within the same
    iteration are broken from the smaller to the larger input color.  The
    out-neighbors of a vertex are therefore a subset of the at most ``d``
    conflicts it tolerated when it adopted its color, giving outdegree ``<= d``.

    Vectorized: the monochromatic edges are filtered and oriented with flat
    array operations (via the graph's cached edge-source array), so only the
    final — typically tiny — set of oriented edges is materialised in Python.
    """
    edges = graph.edge_array()
    if edges.size == 0:
        return set()
    u, v = edges[:, 0], edges[:, 1]
    mono = colors[u] == colors[v]
    if not np.any(mono):
        return set()
    u, v = u[mono], v[mono]
    from_u = (parts[u] > parts[v]) | ((parts[u] == parts[v]) & (input_colors[u] < input_colors[v]))
    src = np.where(from_u, u, v)
    dst = np.where(from_u, v, u)
    return set(zip(src.tolist(), dst.tolist()))


def run_mother_algorithm(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    d: int = 0,
    k: int = 1,
    params: MotherParameters | None = None,
    validate_input: bool = True,
    model: str = "CONGEST",
    with_orientation: bool = True,
    bandwidth_factor: float = 32.0,
    strict_bandwidth: bool = False,
) -> ColoringResult:
    """Run Algorithm 1 on ``graph`` and return the coloring of Theorem 1.1.

    Parameters
    ----------
    graph:
        The network graph.
    input_colors:
        A proper ``m``-coloring of the graph (``input_colors[v] in [m]``).
    m, d, k:
        The parameters of Theorem 1.1 (``m`` input colors, defect tolerance
        ``d``, batch size ``k``).
    params:
        Pre-derived :class:`MotherParameters`; derived from ``(m, Delta, d, k)``
        when omitted.
    validate_input:
        Check that ``input_colors`` is a proper coloring (the theorem requires
        it); disable only in tight benchmark loops.
    model:
        ``"CONGEST"`` (default) or ``"LOCAL"``.
    with_orientation:
        Also derive the monochromatic-edge orientation (point (1)).
    bandwidth_factor / strict_bandwidth:
        CONGEST bandwidth accounting knobs, passed through to
        :class:`repro.congest.network.SynchronousNetwork`.

    Returns
    -------
    ColoringResult
        ``colors`` are encoded ``(x mod k, p(x))`` pairs; ``parts[v]`` is the
        iteration in which ``v`` adopted its color; ``rounds`` is the number of
        batch-trial iterations (``<= ceil(X/k)``).
    """
    input_colors = np.asarray(input_colors, dtype=np.int64)
    delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if params is None:
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)

    if graph.n == 0:
        return ColoringResult(
            colors=np.empty(0, dtype=np.int64),
            rounds=0,
            color_space_size=params.color_space_size,
            parts=np.empty(0, dtype=np.int64),
            orientation=set() if with_orientation else None,
            metadata={"params": params.describe()},
        )

    def factory(ctx: NodeContext) -> MotherAlgorithmNode:
        return MotherAlgorithmNode(ctx, int(input_colors[ctx.node]), params)

    run = run_algorithm(
        graph,
        factory,
        globals={"m": params.m, "d": params.d, "k": params.k},
        model=model,
        max_rounds=params.num_batches + 2,
        bandwidth_factor=bandwidth_factor,
        strict_bandwidth=strict_bandwidth,
    )

    colors = np.array([out["color"] for out in run.outputs], dtype=np.int64)
    parts = np.array([out["part"] for out in run.outputs], dtype=np.int64)
    trial_rounds = int(parts.max()) if parts.size else 0

    orientation = (
        derive_orientation(graph, colors, parts, input_colors) if with_orientation else None
    )

    return ColoringResult(
        colors=colors,
        rounds=trial_rounds,
        color_space_size=params.color_space_size,
        parts=parts,
        orientation=orientation,
        metadata={
            "params": params.describe(),
            "simulator_rounds": run.rounds,
            "total_messages": run.total_messages,
            "max_message_bits": run.max_message_bits,
            "round_bound": params.round_bound,
            "model": model,
        },
    )
