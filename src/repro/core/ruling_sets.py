"""Ruling sets (Section 3.3): Lemma 3.2, Theorem 1.5, and the SEW13-style baseline.

A ``(2, r)``-ruling set is an independent set ``S`` such that every vertex has
a member of ``S`` within ``r`` hops.

* :func:`ruling_set_from_coloring` implements the coloring-to-ruling-set
  reduction of Lemma 3.2 ([KMW18]): given a ``C``-coloring and a base ``B``,
  it computes a ``(2, ceil(log_B C))``-ruling set in ``O(B log_B C)`` rounds.
  The colors are read as ``t = ceil(log_B C)`` base-``B`` digits; in phase
  ``j`` the surviving candidates are filtered digit value by digit value
  (one round each), keeping a candidate exactly when no neighbor has already
  survived the phase.  Adjacent survivors of a phase share that digit, so
  after all phases adjacent survivors would share *all* digits — impossible
  for a proper coloring — hence the final set is independent; every filtered
  vertex has a surviving neighbor, so each phase adds one hop of domination.

* :func:`mis_from_coloring` — the ``r = 1`` special case (process the color
  classes sequentially), i.e. the classical ``O(C)``-round MIS from a coloring.

* :func:`ruling_set_theorem15` — Theorem 1.5: balance the number of colors
  against the ruling-set phase by computing an ``O(Delta^{1+eps})``-coloring
  with ``eps = (r-2)/(r+2)`` (Theorem 1.3) and then applying Lemma 3.2 with
  ``B = C^{1/r}``.

* :func:`ruling_set_sew13_baseline` — the previous state of the art
  ([SEW13]-style): apply Lemma 3.2 directly to an ``O(Delta^2)``-coloring,
  giving ``O(Delta^{2/r}) * r`` rounds for the ruling phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.congest.graph import Graph
from repro.core.corollaries import linial_color_reduction
from repro.core.pipelines import theorem13_coloring
from repro.core.results import ColoringResult, RulingSetResult
from repro.engine.base import Engine
from repro.engine.registry import resolve_backend

__all__ = [
    "ruling_set_from_coloring",
    "mis_from_coloring",
    "ruling_set_theorem15",
    "ruling_set_sew13_baseline",
]


def ruling_set_from_coloring(
    graph: Graph,
    colors: np.ndarray,
    num_colors: int,
    base: int,
) -> RulingSetResult:
    """Lemma 3.2 [KMW18]: a ``(2, ceil(log_B C))``-ruling set from a ``C``-coloring.

    Parameters
    ----------
    colors:
        A proper coloring with values in ``[num_colors]``.
    base:
        The digit base ``B >= 2``; the result is a ``(2, t)``-ruling set with
        ``t = ceil(log_B C)`` computed in ``B * t`` rounds.
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size and (colors.min() < 0 or colors.max() >= num_colors):
        raise ValueError("colors out of the declared range [num_colors]")

    t = max(1, math.ceil(math.log(max(num_colors, 2)) / math.log(base)))
    candidates = np.ones(graph.n, dtype=bool)
    rounds = 0

    for phase in range(t):
        digit = (colors // (base ** phase)) % base
        survivors = np.zeros(graph.n, dtype=bool)
        for b in range(base):
            rounds += 1
            group = np.nonzero(candidates & (digit == b))[0]
            if group.size == 0:
                continue
            # A node joins unless a neighbor already survived this phase.  All
            # joins of one sub-round happen simultaneously (adjacent joiners
            # share the digit b, which is fine — they compete again later).
            blocked = np.zeros(graph.n, dtype=bool)
            for v in group:
                for u in graph.neighbors(int(v)):
                    if survivors[u]:
                        blocked[v] = True
                        break
            survivors[group[~blocked[group]]] = True
        candidates = survivors

    vertices = np.nonzero(candidates)[0].astype(np.int64)
    return RulingSetResult(
        vertices=vertices,
        rounds=rounds,
        r=t,
        alpha=2,
        metadata={"base": base, "num_colors": num_colors, "phases": t},
    )


def mis_from_coloring(graph: Graph, colors: np.ndarray, num_colors: int) -> RulingSetResult:
    """Maximal independent set from a ``C``-coloring in ``C`` rounds (the ``r = 1`` case).

    Color classes are processed in increasing color order; the vertices of the
    current class that have no neighbor already in the set join simultaneously
    (they are pairwise non-adjacent because the coloring is proper).
    """
    colors = np.asarray(colors, dtype=np.int64)
    in_set = np.zeros(graph.n, dtype=bool)
    dominated = np.zeros(graph.n, dtype=bool)
    rounds = 0
    for c in range(num_colors):
        rounds += 1
        group = np.nonzero((colors == c) & ~dominated & ~in_set)[0]
        if group.size == 0:
            continue
        for v in group:
            if not any(in_set[u] for u in graph.neighbors(int(v))):
                in_set[v] = True
        for v in np.nonzero(in_set)[0]:
            dominated[v] = True
            for u in graph.neighbors(int(v)):
                dominated[u] = True
    vertices = np.nonzero(in_set)[0].astype(np.int64)
    return RulingSetResult(
        vertices=vertices,
        rounds=rounds,
        r=1,
        alpha=2,
        metadata={"num_colors": num_colors, "method": "mis_from_coloring"},
    )


def _base_for_target_r(num_colors: int, r: int) -> int:
    """Smallest ``B >= 2`` with ``ceil(log_B C) <= r``."""
    if num_colors <= 2:
        return 2
    return max(2, math.ceil(num_colors ** (1.0 / r)))


def ruling_set_theorem15(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    r: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> RulingSetResult:
    """Theorem 1.5: a ``(2, r)``-ruling set in ``O(Delta^{2/(r+2)}) + log* n`` rounds.

    Stage 1: an ``O(Delta^{1+eps})``-coloring with ``eps = (r-2)/(r+2)``
    (Theorem 1.3; see the Theorem 3.1 substitution note in
    :mod:`repro.core.pipelines` — it inflates the measured stage-1 rounds but
    not the color bound).  Stage 2: Lemma 3.2 with ``B ~ C^{1/r}``.
    """
    if r < 2:
        raise ValueError("Theorem 1.5 requires r >= 2 (r = 1 is MIS, see mis_from_coloring)")
    epsilon = max(1e-9, (r - 2) / (r + 2))
    coloring: ColoringResult = theorem13_coloring(
        graph, input_colors, m, epsilon=epsilon,
        backend=resolve_backend(backend, vectorized),
    )
    num_colors = max(2, coloring.color_space_size)
    base = _base_for_target_r(num_colors, r)
    ruling = ruling_set_from_coloring(graph, coloring.colors, num_colors, base)
    total_rounds = coloring.rounds + ruling.rounds
    return RulingSetResult(
        vertices=ruling.vertices,
        rounds=total_rounds,
        r=max(r, ruling.r),
        alpha=2,
        metadata={
            "method": "theorem15",
            "coloring_rounds": coloring.rounds,
            "coloring_color_space": coloring.color_space_size,
            "ruling_rounds": ruling.rounds,
            "base": base,
            "epsilon": epsilon,
        },
    )


def ruling_set_sew13_baseline(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    r: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> RulingSetResult:
    """The previous state of the art: Lemma 3.2 on an ``O(Delta^2)``-coloring.

    Stage 1 is a single Linial-style reduction of the input coloring to
    ``O(Delta^2)`` colors (1 round); stage 2 applies Lemma 3.2 with
    ``B ~ (Delta^2)^{1/r}``, i.e. ``O(r * Delta^{2/r})`` rounds, matching the
    ``O(Delta^{2/r}) + log* n`` bound of [SEW13] that Theorem 1.5 improves.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    coloring = linial_color_reduction(
        graph, input_colors, m, backend=resolve_backend(backend, vectorized)
    )
    num_colors = max(2, coloring.color_space_size)
    if r == 1:
        ruling = mis_from_coloring(graph, coloring.colors, num_colors)
    else:
        base = _base_for_target_r(num_colors, r)
        ruling = ruling_set_from_coloring(graph, coloring.colors, num_colors, base)
    return RulingSetResult(
        vertices=ruling.vertices,
        rounds=coloring.rounds + ruling.rounds,
        r=max(r, ruling.r),
        alpha=2,
        metadata={
            "method": "sew13_baseline",
            "coloring_rounds": coloring.rounds,
            "coloring_color_space": coloring.color_space_size,
            "ruling_rounds": ruling.rounds,
        },
    )


# --------------------------------------------------------------------------- #
# Registry entry (see repro.api.registry)
# --------------------------------------------------------------------------- #

from repro.api.registry import ParamSpec, register_algorithm  # noqa: E402


@register_algorithm(
    "ruling_set",
    summary="(2, r)-ruling set (Theorem 1.5, or the SEW13-style baseline)",
    guarantee="independent and r-dominating (hard invariants, verified per run); "
              "O(Delta^(2/(r+2))) + log* n ruling rounds (baseline: O(Delta^(2/r)))",
    output="ruling set",
    source="Theorem 1.5 / [SEW13]",
    params=[
        ParamSpec("r", int, default=2, minimum=2, help="domination radius"),
        ParamSpec("baseline", bool, default=False,
                  help="use the SEW13-style Delta^2 baseline instead of Theorem 1.5"),
    ],
)
def _run_ruling_set(w, engine, r: int = 2, baseline: bool = False):
    from repro.verify.ruling import assert_ruling_set

    fn = ruling_set_sew13_baseline if baseline else ruling_set_theorem15
    res = fn(w.graph, w.input_colors, w.m, r=r, backend=engine)
    assert_ruling_set(w.graph, res.vertices, r=max(r, res.r))
    return {
        "rounds": int(res.rounds),
        "ruling rounds only": int(res.metadata["ruling_rounds"]),
        "set size": int(res.size),
        "_vertices": res.vertices,
    }
