"""Per-node (message-passing) implementation of the Lemma 4.1 one-round reduction.

:mod:`repro.core.one_round` implements Lemma 4.1 as a whole-graph array pass —
convenient for experiments and exhaustive tests.  This module runs the *same*
algorithm on the CONGEST simulator: every node broadcasts its input color,
receives its neighbors' input colors, and recolors locally, all within a single
communication round.  The two implementations produce identical colorings
(tested in ``tests/test_core_one_round_node.py``), and this one additionally
certifies the claim that a single ``O(log m)``-bit broadcast per node suffices.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.congest.messages import Broadcast
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.runner import run_algorithm
from repro.core.one_round import max_reducible_colors, required_input_colors
from repro.core.results import ColoringResult

__all__ = ["OneRoundReductionNode", "run_one_round_reduction_distributed"]


class OneRoundReductionNode(NodeAlgorithm):
    """One node of the Lemma 4.1 algorithm (Algorithm 2 of the paper)."""

    def __init__(self, ctx: NodeContext, input_color: int, m: int, k: int, delta: int):
        super().__init__(ctx)
        self.input_color = int(input_color)
        self.m = int(m)
        self.k = int(k)
        self.delta = int(delta)
        self.block = required_input_colors(self.delta, self.k)
        self.ell = self.k * (self.delta - self.k + 2)
        self.regime_size = self.delta - self.k + 2
        self.output_color: int | None = None

    # -- the three cases of Algorithm 2 -------------------------------------

    def _regime(self, i: int) -> list[int]:
        return [i * self.regime_size + j for j in range(self.regime_size)]

    def _steal(self, j: int, phi: int) -> int:
        t = phi - self.ell
        slot = t if t < j else t - 1
        return j * self.regime_size + slot

    def _recolor(self, neighbor_colors: set[int]) -> int:
        phi = self.input_color
        if phi < self.ell or phi >= self.block:
            return phi  # case 1 (or an untouched color beyond the block)
        if neighbor_colors and max(neighbor_colors) < self.ell:
            c = 0  # case 2: all neighbors keep their colors
            while c in neighbor_colors:
                c += 1
            return c
        if not neighbor_colors:
            return 0
        i = phi - self.ell  # case 3: own regime plus stolen colors
        available = set(self._regime(i))
        for j in range(self.k):
            if j != i and (self.ell + j) not in neighbor_colors:
                available.add(self._steal(j, phi))
        candidates = sorted(available - neighbor_colors)
        if not candidates:  # pragma: no cover - contradicts Lemma 4.1
            raise RuntimeError("no free color available — contradicts Lemma 4.1")
        return candidates[0]

    # -- NodeAlgorithm hooks --------------------------------------------------

    def start(self):
        return Broadcast(self.input_color)

    def receive(self, inbox: dict[int, Any]):
        raw = self._recolor({int(c) for c in inbox.values()})
        # compact the removed block locally (colors beyond the block shift down by k)
        self.output_color = raw - self.k if raw >= self.block else raw
        self.halt()
        return None

    def output(self) -> int:
        if self.output_color is None:  # pragma: no cover - defensive
            raise RuntimeError("node finished without an output color")
        return self.output_color


def run_one_round_reduction_distributed(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    k: int | None = None,
    delta: int | None = None,
    validate_input: bool = True,
    model: str = "CONGEST",
) -> ColoringResult:
    """Run Lemma 4.1 on the CONGEST simulator (one communication round).

    Same signature and output conventions as
    :func:`repro.core.one_round.one_round_color_reduction`.
    """
    input_colors = np.asarray(input_colors, dtype=np.int64)
    if delta is None:
        delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if k is None:
        k = max_reducible_colors(m, delta)
    if k < 1:
        raise ValueError(f"cannot remove any color in one round: m={m} < Delta + 2 = {delta + 2}")
    if k > min(delta - 1, (delta + 3) // 2):
        raise ValueError(
            f"k={k} exceeds the Theorem 1.6 range min(Delta-1, Delta/2+3/2) for Delta={delta}"
        )
    if m < required_input_colors(delta, k):
        raise ValueError(
            f"removing {k} colors needs m >= k(Delta-k+3) = {required_input_colors(delta, k)}, got m={m}"
        )

    def factory(ctx: NodeContext) -> OneRoundReductionNode:
        return OneRoundReductionNode(ctx, int(input_colors[ctx.node]), m, k, delta)

    run = run_algorithm(graph, factory, globals={"m": m, "k": k}, model=model, max_rounds=2)
    colors = np.array(run.outputs, dtype=np.int64)
    return ColoringResult(
        colors=colors,
        rounds=run.rounds,
        color_space_size=m - k,
        metadata={
            "method": "lemma41_one_round_distributed",
            "k": k,
            "delta": delta,
            "max_message_bits": run.max_message_bits,
            "total_messages": run.total_messages,
        },
    )
