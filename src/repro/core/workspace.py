"""A small arena of reusable scratch buffers for the array kernels.

The frontier-compacted kernels (:mod:`repro.core.vectorized`,
:mod:`repro.core.reduce`) run many rounds, and every round needs the same
short-lived temporaries: gathered neighbor colors, activity flags, conflict
counters, occupancy tables.  Allocating them afresh each round is pure
allocator churn — at ``n = 10^6`` tens of multi-megabyte allocations per call.
:class:`Workspace` replaces that with *named, grow-only* buffers: the first
round pays one allocation per name, every later round reuses (a view of) the
same memory.

A workspace is single-threaded scratch space: two live views of the same name
alias each other, so a kernel must finish using (or copy out of) a named view
before requesting that name again.  Buffers only ever grow (by doubling), so
a sweep's steady state performs zero scratch allocations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Grow-only arena of named scratch buffers.

    Usage::

        ws = Workspace()
        for _round in ...:
            counts = ws.zeros("counts", rows * width, np.int64).reshape(rows, width)
            nbr = ws.gather("nbr_colors", colors, positions)
            ...

    Requesting a name again returns a view of the *same* storage (regrown if
    needed), so per-round temporaries stop hitting the allocator.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """An *uninitialized* 1-D view of ``size`` elements of ``dtype``.

        Reshape for multi-dimensional use; the view's contents are whatever
        the previous round left behind.
        """
        size = int(size)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dtype or buf.size < size:
            grown = max(size, 2 * buf.size if buf is not None and buf.dtype == dtype else 0)
            buf = np.empty(grown, dtype=dtype)
            self._buffers[name] = buf
        return buf[:size]

    def zeros(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """Like :meth:`take` but zero-filled."""
        out = self.take(name, size, dtype)
        out[...] = 0
        return out

    def full(self, name: str, size: int, fill, dtype=np.int64) -> np.ndarray:
        """Like :meth:`take` but filled with ``fill``."""
        out = self.take(name, size, dtype)
        out[...] = fill
        return out

    def gather(self, name: str, source: np.ndarray, index: np.ndarray) -> np.ndarray:
        """``source[index]`` into a reused buffer (no fresh allocation)."""
        out = self.take(name, index.size, source.dtype)
        np.take(source, index, out=out)
        return out

    def nbytes(self) -> int:
        """Total bytes currently held by the arena (for diagnostics)."""
        return sum(buf.nbytes for buf in self._buffers.values())
