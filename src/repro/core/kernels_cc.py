"""The C tier of the ``jit`` backend: one-file extension built with the
system compiler, loaded via :mod:`ctypes`.

When numba is not installed (the preferred tier, see
:mod:`repro.core.kernels_jit`) but a C compiler is on PATH, the three hot
kernels are compiled *once* from the embedded source below into a small
shared library and called through :mod:`ctypes` — ctypes foreign calls drop
the GIL, and the kernels multi-thread their per-vertex loops with OpenMP
when the toolchain supports it (``REPRO_NUM_THREADS`` caps the team size).

The C code is a line-for-line translation of the pure-Python kernels in
:mod:`repro.core.kernels_jit` (the single source of semantics, parity-tested
against the array backend), operating on the same int64 CSR arrays and
caller-provided :class:`~repro.core.workspace.Workspace` scratch.  All
arithmetic is non-negative int64 modular arithmetic, so the results are
bit-identical to both the NumPy and the numba tiers.

Build artifacts are content-addressed: the library lands in
``$REPRO_JIT_CACHE`` (default ``~/.cache/repro/jit``) under a hash of the
source and compiler, so every later process just ``dlopen``\\ s it — compile
cost is paid once per machine, never per run.  Any failure (no compiler,
compile error, unloadable library) makes :func:`cc_provider` return ``None``
and the ``jit`` backend moves on to its array fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import pathlib
import subprocess
import tempfile
import time
from ctypes import POINTER, c_int64, c_uint8
from typing import Any

import numpy as np

__all__ = ["cc_provider", "build_library", "find_compiler"]

_SOURCE = r"""
#include <stdint.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* Horner evaluation of the degree-(f1-1) trial polynomial at x, mod q.
   All operands are non-negative and q*q fits int64 (q <= ~3e9), matching
   the int64 modular arithmetic of the NumPy and numba tiers exactly. */
static inline int64_t horner(const int64_t *c, int64_t f1, int64_t x, int64_t q)
{
    int64_t acc = 0;
    for (int64_t j = f1 - 1; j >= 0; j--)
        acc = (acc * x + c[j]) % q;
    return acc;
}

void repro_mother_first(int64_t nact, const int64_t *act,
                        const int64_t *indptr, const int64_t *indices,
                        const int64_t *coeffs, int64_t f1,
                        int64_t q, int64_t keff, int64_t d,
                        const uint8_t *active, const int64_t *colors,
                        int64_t lo, int64_t hi,
                        int64_t *first, int64_t *firstval)
{
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t r = 0; r < nact; r++) {
        int64_t v = act[r];
        const int64_t *cv = coeffs + v * f1;
        int64_t slot = -1, slotval = 0;
        for (int64_t x = lo; x < hi; x++) {
            int64_t val = horner(cv, f1, x, q);
            int64_t trial = (x % keff) * q + val;
            int64_t conflicts = 0;
            for (int64_t p = indptr[v]; p < indptr[v + 1]; p++) {
                int64_t u = indices[p];
                if (active[u]) {
                    if (horner(coeffs + u * f1, f1, x, q) == val)
                        conflicts++;
                } else if (colors[u] == trial) {
                    conflicts++;
                }
                if (conflicts > d)
                    break;
            }
            if (conflicts <= d) {
                slot = x;
                slotval = val;
                break;
            }
        }
        first[r] = slot;
        firstval[r] = slotval;
    }
}

void repro_remove_class(int64_t nv, const int64_t *verts,
                        const int64_t *indptr, const int64_t *indices,
                        int64_t *colors, int64_t target, uint8_t *used)
{
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t r = 0; r < nv; r++) {
        int64_t v = verts[r];
        uint8_t *row = used + r * target;
        for (int64_t c = 0; c < target; c++)
            row[c] = 0;
        for (int64_t p = indptr[v]; p < indptr[v + 1]; p++) {
            int64_t b = colors[indices[p]];
            if (b >= 0 && b < target)
                row[b] = 1;
        }
        int64_t c = 0;
        while (c < target && row[c])
            c++;
        if (c == target)  /* cannot happen on valid input; mirrors argmax */
            c = 0;
        colors[v] = c;
    }
}

void repro_kw_round(int64_t nv, const int64_t *verts,
                    const int64_t *indptr, const int64_t *indices,
                    int64_t *colors, int64_t block, int64_t target,
                    uint8_t *used)
{
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t r = 0; r < nv; r++) {
        int64_t v = verts[r];
        int64_t bo = colors[v] / block;
        uint8_t *row = used + r * target;
        for (int64_t c = 0; c < target; c++)
            row[c] = 0;
        for (int64_t p = indptr[v]; p < indptr[v + 1]; p++) {
            int64_t b = colors[indices[p]];
            if (b / block == bo) {
                int64_t slot = b % block;
                if (slot < target)
                    row[slot] = 1;
            }
        }
        int64_t s = 0;
        while (s < target && row[s])
            s++;
        if (s == target)
            s = 0;
        colors[v] = bo * block + s;
    }
}

void repro_set_threads(int64_t n)
{
#ifdef _OPENMP
    if (n >= 1)
        omp_set_num_threads((int)n);
#else
    (void)n;
#endif
}

int64_t repro_get_threads(void)
{
#ifdef _OPENMP
    return (int64_t)omp_get_max_threads();
#else
    return 1;
#endif
}
"""

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]


def find_compiler() -> str | None:
    """The C compiler to use: ``$CC``, then ``cc``/``gcc``/``clang`` on PATH."""
    import shutil

    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for name in candidates:
        if name and shutil.which(name):
            return name
    return None


def _cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_JIT_CACHE")
    if env:
        return pathlib.Path(env)
    home = pathlib.Path(os.path.expanduser("~"))
    if home != pathlib.Path("~"):  # expansion worked
        return home / ".cache" / "repro" / "jit"
    return pathlib.Path(tempfile.gettempdir()) / "repro-jit-cache"


def build_library(cache_dir: str | os.PathLike | None = None
                  ) -> tuple[pathlib.Path, dict[str, Any]] | None:
    """Compile (or reuse) the kernel library; ``None`` when impossible.

    Returns ``(path, info)`` with ``info`` carrying ``cached`` (disk-cache
    hit), ``compile_seconds`` (0.0 on a hit), ``openmp`` and ``compiler`` —
    B5 reports cold-compile cost separately from warm kernel timings.
    """
    compiler = find_compiler()
    if compiler is None:
        return None
    directory = pathlib.Path(cache_dir) if cache_dir is not None else _cache_dir()
    digest = hashlib.sha256(
        (_SOURCE + compiler + " ".join(_BASE_FLAGS)).encode()
    ).hexdigest()[:16]
    sofile = directory / f"repro_kernels_{digest}.so"
    meta = sofile.with_suffix(".json")
    if sofile.exists():
        try:
            info = json.loads(meta.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            info = {"openmp": None, "compiler": compiler}
        info.update({"cached": True, "compile_seconds": 0.0})
        return sofile, info
    try:
        directory.mkdir(parents=True, exist_ok=True)
        csource = directory / f"repro_kernels_{digest}.c"
        csource.write_text(_SOURCE, encoding="utf-8")
        tmp = directory / f".build_{digest}_{os.getpid()}.so"
        start = time.perf_counter()
        openmp = True
        cmd = [compiler, *_BASE_FLAGS, "-fopenmp", str(csource), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:  # toolchain without OpenMP: single-threaded build
            openmp = False
            cmd = [compiler, *_BASE_FLAGS, str(csource), "-o", str(tmp)]
            proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            return None
        compile_seconds = time.perf_counter() - start
        os.replace(tmp, sofile)  # atomic: concurrent builders race benignly
        info = {"openmp": openmp, "compiler": compiler}
        meta.write_text(json.dumps(info), encoding="utf-8")
        info.update({"cached": False, "compile_seconds": round(compile_seconds, 4)})
        return sofile, info
    except OSError:
        return None


def _p64(array: np.ndarray):
    return array.ctypes.data_as(POINTER(c_int64))


def _pu8(array: np.ndarray):
    return array.ctypes.data_as(POINTER(c_uint8))


class _CcKernels:
    """ctypes wrappers presenting the library under the provider interface.

    The contract mirrors the pure-Python kernels: int64 C-contiguous CSR and
    index arrays, ``active`` as a 1-byte bool array, ``used`` as uint8
    scratch.  Callers (the jit drivers) construct arrays with exactly these
    dtypes, so no conversion happens here.
    """

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.repro_mother_first.restype = None
        lib.repro_mother_first.argtypes = [
            c_int64, POINTER(c_int64), POINTER(c_int64), POINTER(c_int64),
            POINTER(c_int64), c_int64, c_int64, c_int64, c_int64,
            POINTER(c_uint8), POINTER(c_int64), c_int64, c_int64,
            POINTER(c_int64), POINTER(c_int64),
        ]
        lib.repro_remove_class.restype = None
        lib.repro_remove_class.argtypes = [
            c_int64, POINTER(c_int64), POINTER(c_int64), POINTER(c_int64),
            POINTER(c_int64), c_int64, POINTER(c_uint8),
        ]
        lib.repro_kw_round.restype = None
        lib.repro_kw_round.argtypes = [
            c_int64, POINTER(c_int64), POINTER(c_int64), POINTER(c_int64),
            POINTER(c_int64), c_int64, c_int64, POINTER(c_uint8),
        ]
        lib.repro_set_threads.restype = None
        lib.repro_set_threads.argtypes = [c_int64]
        lib.repro_get_threads.restype = c_int64
        lib.repro_get_threads.argtypes = []

    def set_threads(self, n: int) -> int:
        self._lib.repro_set_threads(int(n))
        return int(self._lib.repro_get_threads())

    def threads(self) -> int:
        return int(self._lib.repro_get_threads())

    def mother_first(self, act, indptr, indices, coeffs, q, keff, d, active,
                     colors, lo, hi, first, firstval) -> None:
        self._lib.repro_mother_first(
            act.size, _p64(act), _p64(indptr), _p64(indices),
            _p64(coeffs), coeffs.shape[1], q, keff, d,
            _pu8(active), _p64(colors), lo, hi, _p64(first), _p64(firstval),
        )

    def remove_class(self, verts, indptr, indices, colors, target, used) -> None:
        self._lib.repro_remove_class(
            verts.size, _p64(verts), _p64(indptr), _p64(indices),
            _p64(colors), target, _pu8(used),
        )

    def kw_round(self, verts, indptr, indices, colors, block, target, used) -> None:
        self._lib.repro_kw_round(
            verts.size, _p64(verts), _p64(indptr), _p64(indices),
            _p64(colors), block, target, _pu8(used),
        )


def cc_provider(cache_dir: str | os.PathLike | None = None):
    """Build/load the C tier as a :class:`~repro.core.kernels_jit.KernelProvider`;
    ``None`` when no compiler is available or the build/load fails."""
    from repro.core.kernels_jit import KernelProvider, requested_thread_cap

    built = build_library(cache_dir)
    if built is None:
        return None
    sofile, info = built
    try:
        kernels = _CcKernels(ctypes.CDLL(str(sofile)))
    except OSError:
        return None
    cap = requested_thread_cap()
    threads = kernels.set_threads(cap) if cap is not None else kernels.threads()
    return KernelProvider(
        kind="cc",
        version=str(info.get("compiler", "cc")),
        threads=threads,
        mother_first=kernels.mother_first,
        remove_class=kernels.remove_class,
        kw_round=kernels.kw_round,
        detail={"library": str(sofile), **info},
    )
