"""End-to-end coloring pipelines (Sections 3.1 and 3.2 of the paper).

* :func:`delta_plus_one_coloring` — the full ``(Delta + 1)``-coloring pipeline:
  unique IDs -> Linial (``O(log* n)`` rounds) -> mother algorithm with ``k = 1``
  (``O(Delta)`` colors in ``O(Delta)`` rounds) -> color-class removal
  (``O(Delta)`` rounds).  Total ``O(Delta) + log* n`` — the classical
  [BE09, Kuh09, BEK14] bound obtained with a single, simple algorithm.

* :func:`o_delta_coloring` — an ``O(Delta)``-coloring subroutine ("Theorem 3.1"
  in the paper, due to [Bar16, BEG18]).  The paper uses it as a black box; we
  substitute our own ``k = 1`` mother algorithm, which achieves the same
  ``O(Delta)`` color bound in ``O(Delta)`` (instead of ``O(sqrt(Delta))``)
  rounds.  The substitution is recorded in the result metadata and discussed in
  DESIGN.md / EXPERIMENTS.md — it affects measured round counts of
  Theorem 1.3 / 1.5 but none of the color-count or structural guarantees.

* :func:`theorem13_coloring` — Theorem 1.3: an ``O(Delta^{1+eps})``-coloring
  computed exactly as in the paper's proof: a ``d``-defective coloring with
  ``d = Delta^{1-eps}`` (Corollary 1.2 (6)), then an ``O(d)``-coloring of every
  defect class in parallel with a disjoint color space per class, output color
  ``(psi, phi)``.

* :func:`corollary14_coloring` — Corollary 1.4: the ``O(k Delta)`` colors /
  ``O(sqrt(Delta / k))``-style trade-off obtained by instantiating Theorem 1.3
  with ``eps = log_Delta k``.

Every pipeline accepts ``backend="reference" | "array" | Engine`` and runs all
its stages through the selected execution engine (:mod:`repro.engine`); the
two built-in backends produce identical colors and round counts.  The legacy
``vectorized=`` flag is kept as a deprecated alias (``True`` -> ``"array"``).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.core.corollaries import defective_coloring, kdelta_coloring
from repro.core.linial import linial_coloring
from repro.core.results import ColoringResult
from repro.engine.base import Engine
from repro.engine.registry import resolve_backend
from repro.verify.coloring import color_classes

__all__ = [
    "delta_plus_one_coloring",
    "o_delta_coloring",
    "theorem13_coloring",
    "corollary14_coloring",
]


def delta_plus_one_coloring(
    graph: Graph,
    ids: np.ndarray | None = None,
    seed: int | None = None,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """The full ``(Delta + 1)``-coloring pipeline in ``O(Delta) + log* n`` rounds.

    Stage 1 (Linial): reduce the unique-ID coloring to ``O(Delta^2)`` colors.
    Stage 2 (mother algorithm, ``k = 1``): ``O(Delta)`` colors in ``O(Delta)`` rounds.
    Stage 3 (color-class removal): ``Delta + 1`` colors in ``O(Delta)`` rounds.

    Input validation happens once, at the pipeline entry (inside stage 1);
    interior stages consume colorings that are proper by construction and
    skip re-validation.
    """
    engine = resolve_backend(backend, vectorized)
    delta = max(1, graph.max_degree)
    stage1 = linial_coloring(graph, ids=ids, seed=seed, backend=engine)
    stage2 = kdelta_coloring(
        graph, stage1.colors, stage1.color_space_size, k=1, backend=engine,
        validate_input=False,
    )
    stage3 = engine.remove_color_class(graph, stage2.colors, target_colors=delta + 1)
    return ColoringResult(
        colors=stage3.colors,
        rounds=stage1.rounds + stage2.rounds + stage3.rounds,
        color_space_size=delta + 1,
        metadata={
            "method": "delta_plus_one_pipeline",
            "backend": engine.name,
            "linial_rounds": stage1.rounds,
            "linial_color_space": stage1.color_space_size,
            "mother_rounds": stage2.rounds,
            "mother_color_space": stage2.color_space_size,
            "reduction_rounds": stage3.rounds,
        },
    )


def o_delta_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """An ``O(Delta)``-coloring of ``graph`` given a proper ``m``-input coloring.

    This is the package's stand-in for the paper's Theorem 3.1 black box
    ([Bar16, BEG18]: ``O(Delta)`` colors in ``O(sqrt(Delta) + log* n)`` rounds).
    We realise the same color bound with the paper's own ``k = 1`` mother
    algorithm in ``O(Delta)`` rounds; the round-complexity substitution is
    flagged in the metadata so downstream results (Theorem 1.3 / 1.5) can report
    both the paper bound and the measured rounds honestly.
    """
    engine = resolve_backend(backend, vectorized)
    result = kdelta_coloring(
        graph, input_colors, m, k=1, backend=engine, validate_input=validate_input
    )
    result.metadata["substitution"] = (
        "Theorem 3.1 [Bar16, BEG18] replaced by the k=1 mother algorithm: "
        "same O(Delta) color bound, O(Delta) instead of O(sqrt(Delta)) rounds"
    )
    return result


def theorem13_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    epsilon: float = 0.5,
    low_degree_coloring: Callable[[Graph, np.ndarray, int], ColoringResult] | None = None,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """Theorem 1.3: an ``O(Delta^{1+eps})``-coloring.

    Following the proof verbatim: set ``d = Delta^{1-eps}``; compute a
    ``d``-defective coloring ``psi`` with ``O((Delta/d)^2)`` colors in
    ``O(Delta/d)`` rounds (Corollary 1.2 (6)); then color every ``psi``-class
    (whose induced degree is at most ``d``) in parallel with an ``O(d)``-coloring
    ``phi`` using a disjoint color space per class; output ``(psi, phi)``.
    Total colors ``O((Delta/d)^2 * d) = O(Delta^{1+eps})``.

    ``low_degree_coloring(subgraph, sub_input_colors, m)`` is the Theorem 3.1
    black box; it defaults to :func:`o_delta_coloring` (see the substitution
    note there).  The parallel step's round count is the maximum over the
    classes, as all classes run concurrently on vertex-disjoint subgraphs with
    disjoint output color spaces.

    The input coloring is validated once, here at entry; the interior stages
    (the defective coloring and the per-class colorings, whose inputs are
    restrictions of the validated coloring to induced subgraphs) skip
    re-validation.
    """
    if not (0.0 < epsilon <= 1.0):
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    engine = resolve_backend(backend, vectorized)
    delta = max(1, graph.max_degree)
    input_colors = np.asarray(input_colors, dtype=np.int64)
    validate_proper_coloring(graph, input_colors, m)
    if low_degree_coloring is None:
        def low_degree_coloring(sub: Graph, sub_colors: np.ndarray, sub_m: int) -> ColoringResult:
            return o_delta_coloring(sub, sub_colors, sub_m, backend=engine, validate_input=False)

    d = max(1, min(delta - 1, int(round(delta ** (1.0 - epsilon)))))
    if delta <= 2 or d >= delta:
        # Degenerate small-degree case: the defective step is pointless; fall
        # back to the plain O(Delta)-coloring which satisfies the color bound.
        base = o_delta_coloring(graph, input_colors, m, backend=engine, validate_input=False)
        base.metadata["theorem13_degenerate"] = True
        return base

    # Step 1: d-defective coloring psi (Corollary 1.2 (6)).
    psi = defective_coloring(graph, input_colors, m, d=d, backend=engine, validate_input=False)

    # Step 2: color every psi-class in parallel with a disjoint output space.
    classes = color_classes(graph, psi.colors)
    final = np.zeros(graph.n, dtype=np.int64)
    per_class_rounds = 0
    per_class_space = 0
    class_results: list[tuple[int, np.ndarray, ColoringResult]] = []
    for class_index, (_psi_color, vertices) in enumerate(sorted(classes.items())):
        subgraph, mapping = graph.induced_subgraph(vertices)
        sub_colors = input_colors[mapping]
        sub = low_degree_coloring(subgraph, sub_colors, m)
        class_results.append((class_index, mapping, sub))
        per_class_rounds = max(per_class_rounds, sub.rounds)
        per_class_space = max(per_class_space, sub.color_space_size)

    # A common per-class color space (the maximum) keeps the pair encoding
    # globally consistent; every class then uses its own disjoint slice.
    for class_index, mapping, sub in class_results:
        final[mapping] = class_index * per_class_space + sub.colors

    total_space = len(classes) * per_class_space
    return ColoringResult(
        colors=final,
        rounds=psi.rounds + per_class_rounds,
        color_space_size=total_space,
        metadata={
            "method": "theorem13",
            "backend": engine.name,
            "epsilon": epsilon,
            "defect_d": d,
            "defective_rounds": psi.rounds,
            "defective_color_space": psi.color_space_size,
            "per_class_rounds": per_class_rounds,
            "per_class_color_space": per_class_space,
            "paper_round_bound": "O(Delta^{1/2 - eps/2}) + log* n (with the Theorem 3.1 black box)",
        },
    )


def corollary14_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    k: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """Corollary 1.4: an ``O(k Delta)``-coloring via Theorem 1.3 with ``eps = log_Delta k``."""
    delta = max(1, graph.max_degree)
    if k < 1:
        raise ValueError("k must be >= 1")
    if delta <= 2 or k <= 1:
        epsilon = 1e-9
    else:
        epsilon = min(1.0, math.log(k) / math.log(delta))
    return theorem13_coloring(
        graph, input_colors, m, epsilon=max(epsilon, 1e-9),
        backend=resolve_backend(backend, vectorized),
    )


# --------------------------------------------------------------------------- #
# Registry entries (see repro.api.registry)
# --------------------------------------------------------------------------- #

from repro.api.records import coloring_record  # noqa: E402
from repro.api.registry import ParamSpec, register_algorithm  # noqa: E402


@register_algorithm(
    "delta_plus_one",
    summary="the full (Delta+1)-coloring pipeline (IDs -> Linial -> mother -> removal)",
    guarantee="proper with <= Delta+1 colors (hard invariant, verified per run) "
              "in O(Delta) + log* n rounds",
    source="Section 3.1",
    requires_input_coloring=False,
)
def _run_delta_plus_one(w, engine):
    res = delta_plus_one_coloring(w.graph, seed=w.spec.seed, backend=engine)
    record = coloring_record(res, verify_graph=w.graph, max_colors=w.eff_delta + 1)
    record.update(
        {
            "linial rounds": res.metadata["linial_rounds"],
            "mother rounds": res.metadata["mother_rounds"],
            "reduce rounds": res.metadata["reduction_rounds"],
        }
    )
    return record


@register_algorithm(
    "theorem13",
    summary="O(Delta^(1+eps))-coloring (defective split + per-class coloring)",
    guarantee="proper; O(Delta^(1+eps)) colors, rounds follow the substituted "
              "Theorem 3.1 bound (see DESIGN.md)",
    source="Theorem 1.3",
    params=[ParamSpec("epsilon", float, default=0.5,
                      help="trade-off exponent in (0, 1]")],
)
def _run_theorem13(w, engine, epsilon: float = 0.5):
    res = theorem13_coloring(w.graph, w.input_colors, w.m, epsilon=epsilon, backend=engine)
    return coloring_record(res, verify_graph=w.graph)


@register_algorithm(
    "corollary14",
    summary="O(k*Delta)-coloring via Theorem 1.3 with eps = log_Delta k",
    guarantee="proper; O(k*Delta) colors",
    source="Corollary 1.4",
    params=[ParamSpec("k", int, default=1, minimum=1, help="color-budget factor")],
)
def _run_corollary14(w, engine, k: int = 1):
    res = corollary14_coloring(w.graph, w.input_colors, w.m, k=k, backend=engine)
    return coloring_record(res, verify_graph=w.graph)
