"""Compiled kernels for the ``jit`` backend: fused, multi-threaded CSR loops.

The three hot primitives of the engine contract — the mother algorithm's
trial-color conflict counting, color-class removal, and the Kuhn–Wattenhofer
round — are expressed here as *per-vertex fused loops* over the CSR triplet
(``indptr``/``indices``/``src_index``-free: each vertex walks its own CSR
range directly).  Unlike the NumPy twin (:mod:`repro.core.vectorized`,
:mod:`repro.core.reduce`), which materialises ``(active_edges x trials)``
intermediates and scatter-adds them with ``bincount``, a compiled kernel

* Horner-evaluates the trial polynomial on the fly (exact modular integer
  arithmetic — bit-identical to the lazily evaluated NumPy tables),
* counts conflicts per vertex with an early exit as soon as the count
  exceeds ``d``, and stops scanning trials at the *first* ``d``-proper one
  (the same first-qualifying-trial tie-break the array kernel implements
  with ``argmax``), and
* never allocates: callers pass scratch from the existing
  :class:`repro.core.workspace.Workspace` arena.

The kernels below are **pure Python and numba-compilable**: the ``numba``
tier wraps them verbatim with ``@njit(cache=True, parallel=True,
nogil=True)`` so ``prange`` fans the per-vertex loop across threads.  When
numba is not installed, a hand-written C translation of the same loops
(:mod:`repro.core.kernels_cc`) is compiled once with the system C compiler
and loaded via :mod:`ctypes`; when neither tier is available the ``jit``
backend degrades to the array backend (see :mod:`repro.engine.jit`).

Determinism under threads is by construction, not by locking: iteration
``r`` of every parallel loop writes only slot ``r`` of its output (mother
kernel) or ``colors[verts[r]]`` where ``verts`` is an independent set
(color-class removal) or block-disjoint (Kuhn–Wattenhofer) — no iteration
reads a cell another iteration of the same call may write with a value that
could change its result.  Outputs are therefore bit-identical for any
thread count, which is what lets the parity property suite and the golden
records extend to ``backend="jit"`` unchanged.

``REPRO_NUM_THREADS`` caps the kernel thread count (numba
``set_num_threads`` / OpenMP ``omp_set_num_threads``);
``REPRO_JIT_DISABLE=numba,cc`` disables individual tiers (used by tests to
exercise the fallback path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.workspace import Workspace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.graph import Graph
    from repro.core.params import MotherParameters
    from repro.core.results import ColoringResult

try:  # numba's parallel range when compiled; plain range in the python tier
    from numba import prange  # pragma: no cover - only importable with numba
except ImportError:
    prange = range

__all__ = [
    "KernelProvider",
    "get_provider",
    "reset_provider_cache",
    "python_provider",
    "requested_thread_cap",
    "run_mother_jit",
]


# --------------------------------------------------------------------------- #
# The kernels — module-level, numba-compilable pure Python.
#
# These functions are the *single source* of the compiled tier's semantics:
# the numba tier njit-wraps them verbatim, the cc tier is a line-for-line C
# translation (kernels_cc.py), and the tests run them as plain Python against
# the array backend so the logic is parity-checked even where numba is not
# installed.
# --------------------------------------------------------------------------- #


def _kernel_mother_first(act, indptr, indices, coeffs, q, keff, d, active,
                         colors, lo, hi, first, firstval):
    """One mother-algorithm batch: find each active vertex's first good trial.

    For vertex ``v = act[r]`` scan trial positions ``x in [lo, hi)`` in order;
    a trial conflicts with an active neighbor trying the same polynomial value
    or with a colored neighbor whose final color equals the trial color
    ``(x % keff) * q + p_v(x)``.  The first ``x`` with at most ``d`` conflicts
    is written to ``first[r]`` (with ``p_v(x)`` in ``firstval[r]``), or ``-1``.

    Reads only ``active``/``colors``; writes only slot ``r`` — safe and
    deterministic under any parallel schedule.
    """
    f1 = coeffs.shape[1]
    for r in prange(act.shape[0]):
        v = act[r]
        slot = -1
        slotval = 0
        for x in range(lo, hi):
            val = 0
            for j in range(f1 - 1, -1, -1):
                val = (val * x + coeffs[v, j]) % q
            trial = (x % keff) * q + val
            conflicts = 0
            for p in range(indptr[v], indptr[v + 1]):
                u = indices[p]
                if active[u]:
                    nval = 0
                    for j in range(f1 - 1, -1, -1):
                        nval = (nval * x + coeffs[u, j]) % q
                    if nval == val:
                        conflicts += 1
                elif colors[u] == trial:
                    conflicts += 1
                if conflicts > d:
                    break
            if conflicts <= d:
                slot = x
                slotval = val
                break
        first[r] = slot
        firstval[r] = slotval


def _kernel_remove_class(verts, indptr, indices, colors, target, used):
    """Recolor one color class: each vertex takes its smallest free color.

    ``verts`` share one color of a proper coloring, hence form an independent
    set: no vertex's neighborhood intersects ``verts``, so the parallel loop
    reads only colors this call never writes.  ``used`` is a
    ``len(verts) * target`` uint8 scratch row-block (zeroed per row here).
    Mirrors the array path exactly, including ``argmax``-over-all-False -> 0.
    """
    for r in prange(verts.shape[0]):
        v = verts[r]
        base = r * target
        for c in range(target):
            used[base + c] = 0
        for p in range(indptr[v], indptr[v + 1]):
            b = colors[indices[p]]
            if b >= 0 and b < target:
                used[base + b] = 1
        c = 0
        while c < target and used[base + c] == 1:
            c += 1
        if c == target:
            c = 0
        colors[v] = c


def _kernel_kw_round(verts, indptr, indices, colors, block, target, used):
    """One Kuhn–Wattenhofer round: each affected vertex takes its block's
    smallest free lower slot.

    A neighbor color ``b`` bans slot ``b % block`` iff it lies in the same
    block and in the block's lower ``target`` slots.  Affected vertices of one
    round share ``color % block`` but live in *different* blocks (their colors
    differ), and a round recolors within the vertex's own block — so whether a
    parallel iteration observes a neighbor's pre- or post-round color, that
    color is in the neighbor's block, never the reader's, and the result is
    identical.  ``used`` is scratch as in the removal kernel.
    """
    for r in prange(verts.shape[0]):
        v = verts[r]
        bo = colors[v] // block
        base = r * target
        for c in range(target):
            used[base + c] = 0
        for p in range(indptr[v], indptr[v + 1]):
            b = colors[indices[p]]
            if b // block == bo:
                slot = b % block
                if slot < target:
                    used[base + slot] = 1
        s = 0
        while s < target and used[base + s] == 1:
            s += 1
        if s == target:
            s = 0
        colors[v] = bo * block + s


# --------------------------------------------------------------------------- #
# Providers: numba -> cc -> (None: the engine falls back to the array backend)
# --------------------------------------------------------------------------- #


@dataclass
class KernelProvider:
    """A resolved compiled-kernel tier: the three kernels plus provenance."""

    kind: str  # "numba" | "cc" | "python"
    version: str
    threads: int
    mother_first: Callable[..., None]
    remove_class: Callable[..., None]
    kw_round: Callable[..., None]
    detail: dict[str, Any] = field(default_factory=dict)


def requested_thread_cap() -> int | None:
    """The ``REPRO_NUM_THREADS`` cap, or ``None`` when unset/invalid."""
    raw = os.environ.get("REPRO_NUM_THREADS")
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def _numba_provider() -> KernelProvider | None:
    """The preferred tier: ``@njit(cache=True, parallel=True)`` over the
    module-level kernels.  ``None`` when numba is not importable or jitting
    fails (old numba, broken install)."""
    try:
        import numba
        from numba import njit
    except Exception:
        return None
    try:
        cap = requested_thread_cap()
        if cap is not None:
            numba.set_num_threads(max(1, min(cap, numba.config.NUMBA_NUM_THREADS)))
        flags = dict(cache=True, parallel=True, nogil=True)
        return KernelProvider(
            kind="numba",
            version=str(numba.__version__),
            threads=int(numba.get_num_threads()),
            mother_first=njit(**flags)(_kernel_mother_first),
            remove_class=njit(**flags)(_kernel_remove_class),
            kw_round=njit(**flags)(_kernel_kw_round),
        )
    except Exception:  # pragma: no cover - depends on the numba install
        return None


def python_provider() -> KernelProvider:
    """The kernels as plain Python (``prange == range``).

    Far too slow to be a real tier, but it executes the *exact* code the numba
    tier compiles — the parity tests run it against the array backend so the
    numba kernels' logic is verified even on machines without numba.
    """
    import platform

    return KernelProvider(
        kind="python",
        version=platform.python_version(),
        threads=1,
        mother_first=_kernel_mother_first,
        remove_class=_kernel_remove_class,
        kw_round=_kernel_kw_round,
    )


_PROVIDER: KernelProvider | None = None
_RESOLVED = False


def get_provider(refresh: bool = False) -> KernelProvider | None:
    """Resolve (once per process) the best available compiled tier.

    Order: numba, then the C extension; ``None`` when neither is available
    (the ``jit`` engine then degrades to the array backend).  Tiers named in
    ``REPRO_JIT_DISABLE`` (comma-separated: ``numba``, ``cc``) are skipped —
    tests use this to pin a tier or to force the fallback path.
    """
    global _PROVIDER, _RESOLVED
    if _RESOLVED and not refresh:
        return _PROVIDER
    disabled = {
        tier.strip()
        for tier in os.environ.get("REPRO_JIT_DISABLE", "").split(",")
        if tier.strip()
    }
    provider = None
    if "numba" not in disabled:
        provider = _numba_provider()
    if provider is None and "cc" not in disabled:
        from repro.core import kernels_cc

        provider = kernels_cc.cc_provider()
    _PROVIDER, _RESOLVED = provider, True
    return provider


def reset_provider_cache() -> None:
    """Forget the resolved provider (tests re-resolve under patched env)."""
    global _PROVIDER, _RESOLVED
    _PROVIDER, _RESOLVED = None, False


# --------------------------------------------------------------------------- #
# The mother-algorithm driver (the reductions' drivers live in
# repro.core.reduce next to their reference/array twins).
# --------------------------------------------------------------------------- #


def run_mother_jit(
    graph: "Graph",
    input_colors: np.ndarray,
    m: int,
    d: int = 0,
    k: int = 1,
    params: "MotherParameters | None" = None,
    validate_input: bool = True,
    with_orientation: bool = False,
    workspace: Workspace | None = None,
    kernels: KernelProvider | None = None,
) -> "ColoringResult":
    """Algorithm 1 on the compiled kernels; same semantics and bit-identical
    outputs as :func:`repro.core.vectorized.run_mother_algorithm_vectorized`.

    The Python driver keeps the exact batch structure of the array twin —
    refresh the active-vertex frontier only after adoptions, adopt the first
    qualifying trial — and delegates the per-batch scan to
    ``kernels.mother_first``.  With ``kernels=None`` the process-wide provider
    is used; if none is available the call transparently runs the array twin.
    """
    from repro.congest.ids import validate_proper_coloring
    from repro.core.algorithm1 import derive_orientation
    from repro.core.params import MotherParameters
    from repro.core.results import ColoringResult

    if kernels is None:
        kernels = get_provider()
    if kernels is None:
        from repro.core.vectorized import run_mother_algorithm_vectorized

        return run_mother_algorithm_vectorized(
            graph, input_colors, m=m, d=d, k=k, params=params,
            validate_input=validate_input, with_orientation=with_orientation,
            workspace=workspace,
        )

    from repro.core.vectorized import sequence_coefficients

    input_colors = np.asarray(input_colors, dtype=np.int64)
    delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if params is None:
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)

    n = graph.n
    if n == 0:
        return ColoringResult(
            colors=np.empty(0, dtype=np.int64),
            rounds=0,
            color_space_size=params.color_space_size,
            parts=np.empty(0, dtype=np.int64),
            orientation=set() if with_orientation else None,
            metadata={"params": params.describe(), "implementation": "jit",
                      "kernel": kernels.kind},
        )

    q, k_eff, dd = params.q, params.k, params.d
    coeffs = np.ascontiguousarray(sequence_coefficients(input_colors, params))
    ws = workspace if workspace is not None else Workspace()
    indptr, indices = graph.indptr, graph.indices

    colors = -np.ones(n, dtype=np.int64)
    parts = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rounds = 0
    act = None
    refresh = True

    for batch in range(params.num_batches):
        if refresh:
            act = np.nonzero(active)[0]
            if act.size == 0:
                break
            refresh = False
        rounds = batch + 1
        lo = batch * k_eff
        hi = min(lo + k_eff, q)
        first = ws.full("jit_first", act.size, -1)
        firstval = ws.take("jit_firstval", act.size)
        kernels.mother_first(act, indptr, indices, coeffs, q, k_eff, dd,
                             active, colors, lo, hi, first, firstval)
        adopters = first >= 0
        if np.any(adopters):
            verts = act[adopters]
            xs = first[adopters]
            colors[verts] = (xs % k_eff) * q + firstval[adopters]
            parts[verts] = batch + 1
            active[verts] = False
            refresh = True

    if active.any():
        raise RuntimeError(
            "some nodes exhausted their color sequences — this contradicts Theorem 1.1 "
            "and indicates invalid parameters or a bug"
        )

    orientation = (
        derive_orientation(graph, colors, parts, input_colors) if with_orientation else None
    )
    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=params.color_space_size,
        parts=parts,
        orientation=orientation,
        metadata={
            "params": params.describe(),
            "implementation": "jit",
            "kernel": kernels.kind,
            "round_bound": params.round_bound,
        },
    )
