"""Parameter calculus of Theorem 1.1.

Given the maximum degree ``Delta``, the number ``m`` of input colors, the
defect tolerance ``d`` and the batch size ``k``, the paper fixes

* ``Z = Delta / (d + 1)``,
* ``f = ceil(log_Z m)`` — the degree bound of the polynomials,
* a prime ``q`` with ``2 f Z < q < 4 f Z`` (Equation (1), exists by Bertrand),
* ``X = 4 Z ceil(log_Z m) = 4 f Z`` — so ``q < X``,
* the output colors live in ``[k] x [q]`` (at most ``k X`` colors),
* the round bound ``R = ceil(X / k)`` (the algorithm actually runs at most
  ``ceil(q / k) <= R`` batch iterations).

Correctness needs ``q`` to be strictly larger than the maximum possible number
of *blocked* tuples ``2 f Z`` and needs one distinct polynomial per input color
(``m <= q^(f+1)``); :class:`MotherParameters` computes and validates all of
this once so both the per-node and the vectorized implementation agree on the
exact same constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fields.primes import prime_in_range, next_prime

__all__ = ["MotherParameters", "ParameterError"]


class ParameterError(ValueError):
    """Raised when (m, Delta, d, k) violate the requirements of Theorem 1.1."""


@dataclass(frozen=True)
class MotherParameters:
    """Validated, fully derived parameters for one run of Algorithm 1.

    Use :meth:`derive` to construct; the constructor takes the already-derived
    values and re-checks the invariants (so deserialised/bench-cached parameter
    sets are validated too).
    """

    m: int
    delta: int
    d: int
    k: int
    f: int
    q: int

    # ------------------------------------------------------------------ #

    def __post_init__(self):
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")
        if self.delta < 1:
            raise ParameterError(f"Delta must be >= 1, got {self.delta}")
        if not (0 <= self.d <= self.delta - 1):
            raise ParameterError(
                f"defect parameter d must satisfy 0 <= d <= Delta - 1, got d={self.d}, Delta={self.delta}"
            )
        if self.k < 1:
            raise ParameterError(f"batch size k must be >= 1, got {self.k}")
        if self.f < 1:
            raise ParameterError(f"polynomial degree bound f must be >= 1, got {self.f}")
        if self.q <= 2 * self.f * self.Z_int_guard():
            # The precise requirement is q > number of blocked tuples; the
            # conservative bound used throughout is 2 f Z.
            raise ParameterError(
                f"field size q={self.q} is not larger than 2*f*Z={2 * self.f * self.Z:.2f}"
            )
        if self.m + self.q > self.q ** (self.f + 1):
            # The implementation assigns input color i the polynomial with
            # index i + q, skipping the q constant polynomials (see
            # repro.core.sequences); hence m + q polynomials must exist.
            raise ParameterError(
                f"cannot assign distinct non-constant degree-<= {self.f} polynomials over "
                f"F_{self.q} to m={self.m} input colors"
            )

    def Z_int_guard(self) -> float:
        return self.Z

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def Z(self) -> float:
        """``Z = Delta / (d + 1)`` — the per-neighbor conflict budget scale."""
        return self.delta / (self.d + 1)

    @property
    def X(self) -> float:
        """``X = 4 f Z`` — the upper end of the prime interval (``q < X``)."""
        return 4.0 * self.f * self.Z

    @property
    def num_batches(self) -> int:
        """Number of batch iterations actually executed: ``ceil(q / k)``."""
        return -(-self.q // self.k)

    @property
    def round_bound(self) -> int:
        """The round bound ``R = ceil(X / k)`` stated in Theorem 1.1."""
        return math.ceil(self.X / self.k)

    @property
    def color_space_size(self) -> int:
        """Number of possible output colors: at most ``min(k, q) * q <= k X``."""
        return min(self.k, self.q) * self.q

    @property
    def max_blocked_tuples(self) -> float:
        """The proof's bound ``2 f Z`` on tuples that can ever be blocked for a node."""
        return 2.0 * self.f * self.Z

    # ------------------------------------------------------------------ #
    # Color encoding
    # ------------------------------------------------------------------ #

    def encode_color(self, x: int, value: int) -> int:
        """Encode the color tuple ``(x mod k, p(x) mod q)`` as a single integer."""
        return (x % self.k) * self.q + value

    def decode_color(self, color: int) -> tuple[int, int]:
        """Inverse of :meth:`encode_color`."""
        return divmod(int(color), self.q)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def derive(cls, m: int, delta: int, d: int = 0, k: int = 1) -> "MotherParameters":
        """Derive ``f`` and the prime ``q`` from ``(m, Delta, d, k)`` as in the paper.

        ``f = ceil(log_Z m)`` with the base clamped to at least 2 (the paper's
        setting has ``Z > 1``; when ``d = Delta - 1`` gives ``Z = 1`` the
        logarithm base degenerates, and base 2 preserves every inequality the
        proof uses).  ``q`` is the smallest prime exceeding ``2 f Z`` (and, if
        necessary, large enough that ``q^(f+1) >= m``); Bertrand's postulate
        guarantees it is below ``4 f Z`` whenever ``2 f Z >= 1``.
        """
        if delta < 1:
            raise ParameterError(f"Delta must be >= 1, got {delta}")
        if not (0 <= d <= delta - 1):
            raise ParameterError(
                f"defect parameter d must satisfy 0 <= d <= Delta - 1, got d={d}, Delta={delta}"
            )
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        if k < 1:
            raise ParameterError(f"batch size k must be >= 1, got {k}")

        Z = delta / (d + 1)
        base = max(Z, 2.0)
        f = max(1, math.ceil(math.log(max(m, 2)) / math.log(base)))

        lower = 2.0 * f * Z
        upper = 4.0 * f * Z
        try:
            q = prime_in_range(math.floor(lower), math.ceil(upper) + 1)
        except ValueError:
            # Tiny parameter corner (e.g. Delta = 1): fall back to the smallest
            # prime exceeding the blocked-tuple bound.
            q = next_prime(math.floor(lower))
        # Ensure enough distinct *non-constant* polynomials for all m input
        # colors (the q constant polynomials are skipped, see repro.core.sequences).
        while q ** (f + 1) < m + q:
            q = next_prime(q)
        return cls(m=int(m), delta=int(delta), d=int(d), k=int(k), f=int(f), q=int(q))

    def describe(self) -> dict[str, float | int]:
        """Dictionary of all derived constants (used in experiment tables)."""
        return {
            "m": self.m,
            "delta": self.delta,
            "d": self.d,
            "k": self.k,
            "Z": self.Z,
            "f": self.f,
            "q": self.q,
            "X": self.X,
            "round_bound": self.round_bound,
            "num_batches": self.num_batches,
            "color_space": self.color_space_size,
        }
