"""The color sequences of Algorithm 1.

A node with input color ``i`` locally computes the sequence

    ``s_i(x) = (x mod k, p_i(x) mod q)``   for ``x = 0, ..., q - 1``

where ``p_i`` is the ``(i + q)``-th polynomial of ``P^f_q`` in the lexicographic
enumeration — the offset of ``q`` skips the constant polynomials.  (The paper
assigns "the ``i``-th polynomial"; its conflict bound for already-colored
neighbors invokes Lemma 2.1 against the constant polynomial ``y_u``, which
silently requires the trial polynomial itself to be non-constant.  Skipping the
``q`` constants makes that requirement hold unconditionally while changing
nothing else: the polynomials are still distinct per input color and the color
space is still ``[k] x [q]``.)  The sequence is split into ``ceil(q / k)``
consecutive batches of size ``k`` (the last one may be shorter); batch ``j``
contains the positions ``x in [j k, min((j+1) k, q))``.

Two facts drive the analysis and are unit/property-tested directly:

* within one batch, all first coordinates ``x mod k`` are distinct, so two
  nodes can conflict in a batch only at the *same position* ``x``;
* for two distinct input colors, the positions where the sequences agree
  number at most ``f`` (Lemma 2.1), and a fixed already-adopted color is hit
  at most ``f`` times — hence at most ``2 f`` conflicts per neighbor ever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MotherParameters
from repro.fields.polynomials import PolynomialFq, polynomial_from_index

__all__ = ["ColorSequence", "build_sequence", "batch_positions"]


def batch_positions(params: MotherParameters, batch_index: int) -> np.ndarray:
    """The positions ``x`` tried in batch ``batch_index`` (0-based)."""
    lo = batch_index * params.k
    hi = min(lo + params.k, params.q)
    if lo >= params.q:
        return np.empty(0, dtype=np.int64)
    return np.arange(lo, hi, dtype=np.int64)


@dataclass(frozen=True)
class ColorSequence:
    """The full color sequence of one input color.

    Attributes
    ----------
    input_color:
        The input color ``i`` this sequence belongs to.
    params:
        The shared :class:`MotherParameters`.
    values:
        ``values[x] = p_i(x)`` for every ``x`` in ``F_q``.
    """

    input_color: int
    params: MotherParameters
    values: np.ndarray

    @property
    def polynomial(self) -> PolynomialFq:
        """The underlying (non-constant) polynomial ``p_i``."""
        return polynomial_from_index(
            self.input_color + self.params.q, self.params.f, self.params.q
        )

    @property
    def num_batches(self) -> int:
        return self.params.num_batches

    def tuple_at(self, x: int) -> tuple[int, int]:
        """The color tuple ``(x mod k, p_i(x))`` at position ``x``."""
        return (x % self.params.k, int(self.values[x]))

    def encoded_at(self, x: int) -> int:
        """The encoded (integer) color at position ``x``."""
        return self.params.encode_color(x, int(self.values[x]))

    def batch(self, batch_index: int) -> list[tuple[int, int, int]]:
        """The batch as a list of ``(position, first_coord, value)`` triples in trial order."""
        return [
            (int(x), int(x % self.params.k), int(self.values[x]))
            for x in batch_positions(self.params, batch_index)
        ]

    def encoded_sequence(self) -> np.ndarray:
        """All encoded colors of the sequence in trial order."""
        xs = np.arange(self.params.q, dtype=np.int64)
        return (xs % self.params.k) * self.params.q + self.values


def build_sequence(input_color: int, params: MotherParameters) -> ColorSequence:
    """Construct the color sequence for ``input_color`` under ``params``.

    Raises
    ------
    ValueError
        If the input color is outside ``[m]`` (every node must hold a legal
        input color for the distinct-polynomial assignment to work).
    """
    if not (0 <= input_color < params.m):
        raise ValueError(
            f"input color {input_color} out of range for m={params.m}"
        )
    poly = polynomial_from_index(input_color + params.q, params.f, params.q)
    return ColorSequence(
        input_color=int(input_color), params=params, values=poly.evaluate_all()
    )
