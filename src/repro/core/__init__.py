"""The paper's contribution: the mother algorithm and everything built on it.

Module map (mirrors the paper's structure):

* :mod:`repro.core.params` — the parameter calculus of Theorem 1.1
  (``Z``, ``f``, the prime ``q``, ``X``, ``R``).
* :mod:`repro.core.sequences` — the color sequences
  ``s_i(x) = (x mod k, p_i(x))``.
* :mod:`repro.core.algorithm1` — Algorithm 1 / Theorem 1.1 as a per-node
  message-passing algorithm on the CONGEST simulator.
* :mod:`repro.core.vectorized` — a whole-graph NumPy twin of Algorithm 1 used
  for large benchmarks (bit-for-bit equivalent outputs).
* :mod:`repro.core.corollaries` — the parameter settings of Corollary 1.2.
* :mod:`repro.core.linial` — Linial's ``O(log* n)``-round ``O(Delta^2)``
  coloring from unique IDs, realised by iterating the mother algorithm.
* :mod:`repro.core.reduce` — color-class removal and Kuhn-Wattenhofer style
  block reduction to ``Delta + 1`` colors.
* :mod:`repro.core.pipelines` — end-to-end ``(Delta + 1)``-coloring pipelines
  (Section 3.1) and the ``O(Delta^{1+eps})`` algorithm of Theorem 1.3.
* :mod:`repro.core.ruling_sets` — Lemma 3.2 and Theorem 1.5 ruling sets plus
  the SEW13-style baseline.
* :mod:`repro.core.one_round` — Theorem 1.6: the one-round color reduction of
  Lemma 4.1 and the exhaustive impossibility checker of Lemma 4.3.
* :mod:`repro.core.baselines` — greedy and randomized (Luby-style) baselines.
"""

from repro.core.results import ColoringResult, RulingSetResult
from repro.core.params import MotherParameters
from repro.core.algorithm1 import run_mother_algorithm
from repro.core.vectorized import run_mother_algorithm_vectorized

__all__ = [
    "ColoringResult",
    "RulingSetResult",
    "MotherParameters",
    "run_mother_algorithm",
    "run_mother_algorithm_vectorized",
]
