"""Color reductions down to ``Delta + 1`` colors.

Two classical reductions are provided, both used as the "finishing" step after
the mother algorithm has produced an ``O(Delta)`` or ``O(Delta^2)`` coloring:

* :func:`remove_color_class_reduction` — the reduction the paper invokes after
  its ``k = 1`` algorithm ("we can use an additional ``O(Delta)`` rounds in
  each of which we remove a single color class"): in each round the vertices of
  the currently largest color value repick a free color in ``[Delta + 1]``.
  One round per removed color class.

* :func:`kuhn_wattenhofer_reduction` — the classical block-halving reduction
  (Kuhn-Wattenhofer style, see also [BE09]): the color space is partitioned
  into blocks of ``2 (Delta + 1)`` colors, every block is reduced to
  ``Delta + 1`` colors in ``Delta + 1`` rounds *in parallel*, halving the
  number of colors; ``O(Delta * log(m / Delta))`` rounds in total.

Both functions simulate the distributed algorithm directly with arrays: a
round consists of every affected vertex looking at its neighbors' *current*
colors (one message each, clearly CONGEST) and recoloring simultaneously; the
returned ``rounds`` is the number of such rounds.

Both reductions are backend-pluggable: ``backend="array"`` runs a
frontier-compacted CSR implementation with bit-identical colors and round
counts (the greedy "smallest free color" choice is deterministic, so the two
paths agree exactly; this is property-tested in ``tests/test_engine_parity.py``
and ``tests/test_kernel_compaction.py``).  The array paths gather only the
CSR entries incident to the round's affected vertices
(:meth:`repro.congest.graph.Graph.incident_csr_entries`), so a round costs
``O(affected degree)`` instead of a full ``2|E|`` scan — over a whole
reduction that is ``O(|E|)`` total work rather than ``O(color classes x |E|)``.

``backend="jit"`` keeps the exact same per-round structure but hands each
round to a compiled kernel (:mod:`repro.core.kernels_jit`: numba or the C
tier) that fuses the gather + occupancy scan into one pass per affected
vertex; when no compiled tier is available it silently runs the array path
(same results).  The optional ``kernels=`` parameter overrides the
process-wide kernel provider — the jit engine threads its own provider
through, and tests inject the pure-Python tier.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.congest.graph import Graph
from repro.core.results import ColoringResult
from repro.core.workspace import Workspace
from repro.engine.base import UnknownBackendError

__all__ = ["remove_color_class_reduction", "kuhn_wattenhofer_reduction"]

#: Backend names the reduction dispatchers accept.
_REDUCTION_BACKENDS = ("reference", "array", "jit")


def _neighbor_color_sets(graph: Graph, colors: np.ndarray, vertices: np.ndarray) -> list[set[int]]:
    return [
        {int(colors[u]) for u in graph.neighbors(int(v))} for v in vertices
    ]


def _validated_target(graph: Graph, target_colors: int | None) -> int:
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )
    return int(target_colors)


def _remove_color_class_reference(
    graph: Graph, colors: np.ndarray, target_colors: int
) -> tuple[np.ndarray, int]:
    rounds = 0
    while colors.size and int(colors.max()) >= target_colors:
        current = int(colors.max())
        vertices = np.nonzero(colors == current)[0]
        forbidden = _neighbor_color_sets(graph, colors, vertices)
        for v, banned in zip(vertices, forbidden):
            c = 0
            while c in banned:
                c += 1
            colors[v] = c
        rounds += 1
    return colors, rounds


def _remove_color_class_array(
    graph: Graph, colors: np.ndarray, target_colors: int
) -> tuple[np.ndarray, int]:
    """Compacted CSR implementation of the same reduction (identical colors and rounds).

    Vertices are bucketed by color *once* (one stable argsort); colors at or
    above the target are then processed in strictly decreasing order, and
    since every recolored vertex lands *below* the target (a free column
    exists because degree ``<= Delta < target_colors``), the initial buckets
    are exactly the per-round affected sets.  Per round only the affected
    vertices' incident CSR entries are gathered and their neighbors'
    sub-``target`` colors scattered into a dense ``(affected, target)``
    occupancy table; the first free column is the new color.  Neighbor colors
    ``>= target_colors`` can never block the scan (the reference scan stops at
    most at index ``Delta``), so dropping them is exact.  Total work over all
    rounds is ``O(|E| + n log n)`` instead of ``O(color classes x |E|)``.
    """
    rounds = 0
    if colors.size == 0 or int(colors.max()) < target_colors:
        return colors, rounds
    indices = graph.indices
    ws = Workspace()
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    start = int(np.searchsorted(sorted_colors, target_colors, side="left"))
    high = order[start:]
    boundaries = np.nonzero(np.diff(sorted_colors[start:]))[0] + 1
    for vertices in reversed(np.split(high, boundaries)):
        positions, rows = graph.incident_csr_entries(vertices)
        nbr_idx = ws.gather("nbr_idx", indices, positions)
        nbr_colors = ws.gather("nbr_colors", colors, nbr_idx)
        used = ws.zeros("used", vertices.size * target_colors, dtype=bool)
        used = used.reshape(vertices.size, target_colors)
        in_range = nbr_colors < target_colors
        used[rows[in_range], nbr_colors[in_range]] = True
        np.logical_not(used, out=used)
        colors[vertices] = np.argmax(used, axis=1)
        rounds += 1
    return colors, rounds


def _remove_color_class_jit(
    graph: Graph, colors: np.ndarray, target_colors: int, kernels
) -> tuple[np.ndarray, int]:
    """Compiled-kernel twin of :func:`_remove_color_class_array`.

    Identical bucketing (one stable argsort, classes processed in strictly
    decreasing color order); each class round is one fused kernel call that
    walks every affected vertex's CSR range, marks sub-``target`` neighbor
    colors in its own scratch row and adopts the first free column — the
    same deterministic choice as the array path's ``argmax``, so colors and
    round counts are bit-identical.
    """
    rounds = 0
    if colors.size == 0 or int(colors.max()) < target_colors:
        return colors, rounds
    indptr, indices = graph.indptr, graph.indices
    ws = Workspace()
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    start = int(np.searchsorted(sorted_colors, target_colors, side="left"))
    high = order[start:]
    boundaries = np.nonzero(np.diff(sorted_colors[start:]))[0] + 1
    for vertices in reversed(np.split(high, boundaries)):
        used = ws.take("used", vertices.size * target_colors, np.uint8)
        kernels.remove_class(vertices, indptr, indices, colors, target_colors, used)
        rounds += 1
    return colors, rounds


def remove_color_class_reduction(
    graph: Graph,
    colors: np.ndarray,
    target_colors: int | None = None,
    backend: str | object = "reference",
    kernels=None,
) -> ColoringResult:
    """Reduce a proper coloring to ``target_colors`` (default ``Delta + 1``) colors.

    In each round all vertices whose color equals the current maximum color
    value ``c >= target_colors`` simultaneously pick the smallest color in
    ``[target_colors]`` not used by any neighbor.  These vertices form an
    independent set (they share a color of a proper coloring), so simultaneous
    recoloring is safe, and a free color exists because the degree is at most
    ``Delta < target_colors``.

    Rounds: one per color value above ``target_colors`` that actually occurs.

    ``backend`` selects the execution path: ``"reference"`` (per-vertex Python
    sets), ``"array"`` (whole-graph CSR scatter) or ``"jit"`` (compiled
    kernels; the array path when no compiled tier exists); all produce
    identical colors and round counts.  An :class:`repro.engine.base.Engine`
    instance is also accepted (its ``name`` selects the path).  ``kernels``
    optionally overrides the jit tier's kernel provider.
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    target_colors = _validated_target(graph, target_colors)
    backend_name = getattr(backend, "name", backend)
    if backend_name == "jit":
        if kernels is None:
            from repro.core.kernels_jit import get_provider

            kernels = get_provider()
        if kernels is None:
            colors, rounds = _remove_color_class_array(graph, colors, target_colors)
        else:
            colors, rounds = _remove_color_class_jit(graph, colors, target_colors, kernels)
    elif backend_name == "array":
        colors, rounds = _remove_color_class_array(graph, colors, target_colors)
    elif backend_name == "reference":
        colors, rounds = _remove_color_class_reference(graph, colors, target_colors)
    else:
        raise UnknownBackendError(
            backend_name, _REDUCTION_BACKENDS, context="remove_color_class_reduction"
        )
    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=target_colors,
        metadata={
            "method": "remove_color_class",
            "target_colors": target_colors,
            "backend": backend_name,
        },
    )


def _kw_round_reference(
    graph: Graph, colors: np.ndarray, affected: np.ndarray, block: int, target_colors: int,
    ws: Workspace | None = None,
) -> None:
    """One KW round on the reference path: per-vertex Python sets."""
    forbidden = _neighbor_color_sets(graph, colors, affected)
    for v, banned in zip(affected, forbidden):
        base = (int(colors[v]) // block) * block
        # Pick a free slot within the block's lower target_colors colors.
        banned_slots = {
            b - base for b in banned if base <= b < base + target_colors
        }
        free = 0
        while free in banned_slots:
            free += 1
        colors[v] = base + free
    # (recoloring within the lower half of the same block keeps the
    # coloring proper: affected vertices of one color value form an
    # independent set, and they avoid neighbors' current colors)


def _kw_round_array(
    graph: Graph, colors: np.ndarray, affected: np.ndarray, block: int, target_colors: int,
    ws: Workspace | None = None,
) -> None:
    """One KW round on the array path: compacted gather + occupancy scatter.

    Only the affected vertices' incident CSR entries are touched.  A neighbor
    color ``b`` bans slot ``b % block`` iff it lies in the same block
    (``b // block`` equal) and in the block's lower ``target_colors`` slots —
    exactly the ``base <= b < base + target_colors`` window of the reference
    path, so the smallest free slot (``argmax`` over the negated occupancy
    table) is bit-identical.  Scratch (gathered colors, occupancy table)
    comes from the caller's :class:`Workspace` so successive rounds reuse one
    set of buffers.
    """
    if ws is None:
        ws = Workspace()
    positions, rows = graph.incident_csr_entries(affected)
    nbr_idx = ws.gather("nbr_idx", graph.indices, positions)
    nbr_colors = ws.gather("nbr_colors", colors, nbr_idx)
    block_of = colors[affected] // block
    slot = nbr_colors % block
    banned = ((nbr_colors // block) == block_of[rows]) & (slot < target_colors)
    used = ws.zeros("used", affected.size * target_colors, dtype=bool)
    used = used.reshape(affected.size, target_colors)
    used[rows[banned], slot[banned]] = True
    np.logical_not(used, out=used)
    colors[affected] = block_of * block + np.argmax(used, axis=1)


def _kw_round_jit(
    graph: Graph, colors: np.ndarray, affected: np.ndarray, block: int, target_colors: int,
    ws: Workspace | None = None, kernels=None,
) -> None:
    """One KW round on the compiled kernels (array path when none available).

    The kernel fuses the gather + same-block occupancy scan of
    :func:`_kw_round_array` into one pass per affected vertex; the smallest
    free slot within the block's lower ``target_colors`` colors is the same
    deterministic choice, so colors are bit-identical.
    """
    if kernels is None:
        from repro.core.kernels_jit import get_provider

        kernels = get_provider()
    if kernels is None:
        return _kw_round_array(graph, colors, affected, block, target_colors, ws)
    if ws is None:
        ws = Workspace()
    used = ws.take("jit_used", affected.size * target_colors, np.uint8)
    kernels.kw_round(affected, graph.indptr, graph.indices, colors, block,
                     target_colors, used)


_KW_ROUNDS = {
    "reference": _kw_round_reference,
    "array": _kw_round_array,
    "jit": _kw_round_jit,
}


def kuhn_wattenhofer_reduction(
    graph: Graph,
    colors: np.ndarray,
    m: int,
    target_colors: int | None = None,
    backend: str | object = "reference",
    kernels=None,
) -> ColoringResult:
    """Block-halving reduction from an ``m``-coloring to ``Delta + 1`` colors.

    Each phase partitions the current color space ``[m']`` into blocks of
    ``2 (Delta + 1)`` consecutive colors.  Within every block (in parallel,
    using the block's own lower ``Delta + 1`` colors as the target space) the
    upper colors are removed one value per round exactly as in
    :func:`remove_color_class_reduction`.  A phase takes at most ``Delta + 1``
    rounds and at least halves the number of colors, so the total round count
    is ``O(Delta * log(m / Delta))`` — the classical bound the paper's
    ``O(Delta)``-round algorithms improve upon.

    ``backend`` selects the per-round execution path: ``"reference"``
    (per-vertex Python sets), ``"array"`` (compacted CSR gather + occupancy
    scatter), or ``"jit"`` (compiled kernels, array path when unavailable);
    all produce identical colors, round and phase counts.  An
    :class:`repro.engine.base.Engine` instance is also accepted (its ``name``
    selects the path).  ``kernels`` optionally pins the compiled provider used
    by the ``"jit"`` path (resolved lazily otherwise).
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )
    if colors.size and int(colors.max()) >= m:
        raise ValueError("input coloring uses colors outside the declared space [m]")
    backend_name = getattr(backend, "name", backend)
    try:
        kw_round = _KW_ROUNDS[backend_name]
    except KeyError:
        raise UnknownBackendError(
            backend_name, _REDUCTION_BACKENDS, context="kuhn_wattenhofer_reduction"
        ) from None
    if backend_name == "jit" and kernels is not None:
        kw_round = functools.partial(_kw_round_jit, kernels=kernels)

    block = 2 * target_colors
    space = int(m)
    rounds = 0
    phases = 0
    ws = Workspace()

    while space > target_colors:
        phases += 1
        num_blocks = -(-space // block)
        # Vertices are grouped by block; within a block the colors
        # block_base + target_colors .. block_base + block - 1 are removed one
        # value per round, all blocks in parallel (disjoint output spaces).
        phase_rounds = 0
        for offset in range(block - 1, target_colors - 1, -1):
            phase_rounds += 1
            affected = np.nonzero((colors % block) == offset)[0] if colors.size else np.empty(0, int)
            if affected.size == 0:
                continue
            kw_round(graph, colors, affected, block, target_colors, ws)
        rounds += phase_rounds
        # Compact the color space: every block keeps only its lower half.
        if colors.size:
            colors = (colors // block) * target_colors + (colors % block)
        space = num_blocks * target_colors

    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=max(space, target_colors),
        metadata={
            "method": "kuhn_wattenhofer",
            "phases": phases,
            "target_colors": target_colors,
            "backend": backend_name,
        },
    )
