"""Color reductions down to ``Delta + 1`` colors.

Two classical reductions are provided, both used as the "finishing" step after
the mother algorithm has produced an ``O(Delta)`` or ``O(Delta^2)`` coloring:

* :func:`remove_color_class_reduction` — the reduction the paper invokes after
  its ``k = 1`` algorithm ("we can use an additional ``O(Delta)`` rounds in
  each of which we remove a single color class"): in each round the vertices of
  the currently largest color value repick a free color in ``[Delta + 1]``.
  One round per removed color class.

* :func:`kuhn_wattenhofer_reduction` — the classical block-halving reduction
  (Kuhn-Wattenhofer style, see also [BE09]): the color space is partitioned
  into blocks of ``2 (Delta + 1)`` colors, every block is reduced to
  ``Delta + 1`` colors in ``Delta + 1`` rounds *in parallel*, halving the
  number of colors; ``O(Delta * log(m / Delta))`` rounds in total.

Both functions simulate the distributed algorithm directly with arrays: a
round consists of every affected vertex looking at its neighbors' *current*
colors (one message each, clearly CONGEST) and recoloring simultaneously; the
returned ``rounds`` is the number of such rounds.

:func:`remove_color_class_reduction` is backend-pluggable: ``backend="array"``
runs a whole-graph CSR implementation with bit-identical colors and round
counts (the greedy "smallest free color" choice is deterministic, so the two
paths agree exactly; this is property-tested in ``tests/test_engine_parity.py``).
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.core.results import ColoringResult

__all__ = ["remove_color_class_reduction", "kuhn_wattenhofer_reduction"]


def _neighbor_color_sets(graph: Graph, colors: np.ndarray, vertices: np.ndarray) -> list[set[int]]:
    return [
        {int(colors[u]) for u in graph.neighbors(int(v))} for v in vertices
    ]


def _validated_target(graph: Graph, target_colors: int | None) -> int:
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )
    return int(target_colors)


def _remove_color_class_reference(
    graph: Graph, colors: np.ndarray, target_colors: int
) -> tuple[np.ndarray, int]:
    rounds = 0
    while colors.size and int(colors.max()) >= target_colors:
        current = int(colors.max())
        vertices = np.nonzero(colors == current)[0]
        forbidden = _neighbor_color_sets(graph, colors, vertices)
        for v, banned in zip(vertices, forbidden):
            c = 0
            while c in banned:
                c += 1
            colors[v] = c
        rounds += 1
    return colors, rounds


def _remove_color_class_array(
    graph: Graph, colors: np.ndarray, target_colors: int
) -> tuple[np.ndarray, int]:
    """CSR implementation of the same reduction (identical colors and rounds).

    Per round: gather the incident CSR entries of the affected independent
    set, scatter their neighbors' sub-``target`` colors into a dense
    ``(affected, target)`` occupancy table, and take the first free column.
    The affected vertices' degrees are at most ``Delta < target_colors``, so a
    free column always exists, and neighbor colors ``>= target_colors`` can
    never block the scan (the reference scan stops at most at index ``Delta``).
    """
    indices = graph.indices
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    rounds = 0
    while colors.size and int(colors.max()) >= target_colors:
        current = int(colors.max())
        affected_mask = colors == current
        vertices = np.nonzero(affected_mask)[0]
        sel = affected_mask[src]
        rows = np.searchsorted(vertices, src[sel])
        nbr_colors = colors[indices[sel]]
        used = np.zeros((vertices.size, target_colors), dtype=bool)
        in_range = nbr_colors < target_colors
        used[rows[in_range], nbr_colors[in_range]] = True
        colors[vertices] = np.argmax(~used, axis=1)
        rounds += 1
    return colors, rounds


def remove_color_class_reduction(
    graph: Graph,
    colors: np.ndarray,
    target_colors: int | None = None,
    backend: str | object = "reference",
) -> ColoringResult:
    """Reduce a proper coloring to ``target_colors`` (default ``Delta + 1``) colors.

    In each round all vertices whose color equals the current maximum color
    value ``c >= target_colors`` simultaneously pick the smallest color in
    ``[target_colors]`` not used by any neighbor.  These vertices form an
    independent set (they share a color of a proper coloring), so simultaneous
    recoloring is safe, and a free color exists because the degree is at most
    ``Delta < target_colors``.

    Rounds: one per color value above ``target_colors`` that actually occurs.

    ``backend`` selects the execution path: ``"reference"`` (per-vertex Python
    sets) or ``"array"`` (whole-graph CSR scatter); both produce identical
    colors and round counts.  An :class:`repro.engine.base.Engine` instance is
    also accepted (its ``name`` selects the path).
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    target_colors = _validated_target(graph, target_colors)
    backend_name = getattr(backend, "name", backend)
    if backend_name == "array":
        colors, rounds = _remove_color_class_array(graph, colors, target_colors)
    elif backend_name == "reference":
        colors, rounds = _remove_color_class_reference(graph, colors, target_colors)
    else:
        raise ValueError(
            f"unknown backend {backend_name!r} for remove_color_class_reduction; "
            "expected 'reference' or 'array'"
        )
    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=target_colors,
        metadata={
            "method": "remove_color_class",
            "target_colors": target_colors,
            "backend": backend_name,
        },
    )


def kuhn_wattenhofer_reduction(
    graph: Graph,
    colors: np.ndarray,
    m: int,
    target_colors: int | None = None,
) -> ColoringResult:
    """Block-halving reduction from an ``m``-coloring to ``Delta + 1`` colors.

    Each phase partitions the current color space ``[m']`` into blocks of
    ``2 (Delta + 1)`` consecutive colors.  Within every block (in parallel,
    using the block's own lower ``Delta + 1`` colors as the target space) the
    upper colors are removed one value per round exactly as in
    :func:`remove_color_class_reduction`.  A phase takes at most ``Delta + 1``
    rounds and at least halves the number of colors, so the total round count
    is ``O(Delta * log(m / Delta))`` — the classical bound the paper's
    ``O(Delta)``-round algorithms improve upon.
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )
    if colors.size and int(colors.max()) >= m:
        raise ValueError("input coloring uses colors outside the declared space [m]")

    block = 2 * target_colors
    space = int(m)
    rounds = 0
    phases = 0

    while space > target_colors:
        phases += 1
        num_blocks = -(-space // block)
        # Vertices are grouped by block; within a block the colors
        # block_base + target_colors .. block_base + block - 1 are removed one
        # value per round, all blocks in parallel (disjoint output spaces).
        phase_rounds = 0
        for offset in range(block - 1, target_colors - 1, -1):
            phase_rounds += 1
            affected = np.nonzero((colors % block) == offset)[0] if colors.size else np.empty(0, int)
            if affected.size == 0:
                continue
            forbidden = _neighbor_color_sets(graph, colors, affected)
            for v, banned in zip(affected, forbidden):
                base = (int(colors[v]) // block) * block
                # Pick a free slot within the block's lower target_colors colors.
                banned_slots = {
                    b - base for b in banned if base <= b < base + target_colors
                }
                free = 0
                while free in banned_slots:
                    free += 1
                colors[v] = base + free
            # (recoloring within the lower half of the same block keeps the
            # coloring proper: affected vertices of one color value form an
            # independent set, and they avoid neighbors' current colors)
        rounds += phase_rounds
        # Compact the color space: every block keeps only its lower half.
        if colors.size:
            colors = (colors // block) * target_colors + (colors % block)
        space = num_blocks * target_colors

    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=max(space, target_colors),
        metadata={
            "method": "kuhn_wattenhofer",
            "phases": phases,
            "target_colors": target_colors,
        },
    )
