"""Color reductions down to ``Delta + 1`` colors.

Two classical reductions are provided, both used as the "finishing" step after
the mother algorithm has produced an ``O(Delta)`` or ``O(Delta^2)`` coloring:

* :func:`remove_color_class_reduction` — the reduction the paper invokes after
  its ``k = 1`` algorithm ("we can use an additional ``O(Delta)`` rounds in
  each of which we remove a single color class"): in each round the vertices of
  the currently largest color value repick a free color in ``[Delta + 1]``.
  One round per removed color class.

* :func:`kuhn_wattenhofer_reduction` — the classical block-halving reduction
  (Kuhn-Wattenhofer style, see also [BE09]): the color space is partitioned
  into blocks of ``2 (Delta + 1)`` colors, every block is reduced to
  ``Delta + 1`` colors in ``Delta + 1`` rounds *in parallel*, halving the
  number of colors; ``O(Delta * log(m / Delta))`` rounds in total.

Both functions simulate the distributed algorithm directly with arrays: a
round consists of every affected vertex looking at its neighbors' *current*
colors (one message each, clearly CONGEST) and recoloring simultaneously; the
returned ``rounds`` is the number of such rounds.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.core.results import ColoringResult

__all__ = ["remove_color_class_reduction", "kuhn_wattenhofer_reduction"]


def _neighbor_color_sets(graph: Graph, colors: np.ndarray, vertices: np.ndarray) -> list[set[int]]:
    return [
        {int(colors[u]) for u in graph.neighbors(int(v))} for v in vertices
    ]


def remove_color_class_reduction(
    graph: Graph,
    colors: np.ndarray,
    target_colors: int | None = None,
) -> ColoringResult:
    """Reduce a proper coloring to ``target_colors`` (default ``Delta + 1``) colors.

    In each round all vertices whose color equals the current maximum color
    value ``c >= target_colors`` simultaneously pick the smallest color in
    ``[target_colors]`` not used by any neighbor.  These vertices form an
    independent set (they share a color of a proper coloring), so simultaneous
    recoloring is safe, and a free color exists because the degree is at most
    ``Delta < target_colors``.

    Rounds: one per color value above ``target_colors`` that actually occurs.
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )

    rounds = 0
    while colors.size and int(colors.max()) >= target_colors:
        current = int(colors.max())
        vertices = np.nonzero(colors == current)[0]
        forbidden = _neighbor_color_sets(graph, colors, vertices)
        for v, banned in zip(vertices, forbidden):
            c = 0
            while c in banned:
                c += 1
            colors[v] = c
        rounds += 1

    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=target_colors,
        metadata={"method": "remove_color_class", "target_colors": target_colors},
    )


def kuhn_wattenhofer_reduction(
    graph: Graph,
    colors: np.ndarray,
    m: int,
    target_colors: int | None = None,
) -> ColoringResult:
    """Block-halving reduction from an ``m``-coloring to ``Delta + 1`` colors.

    Each phase partitions the current color space ``[m']`` into blocks of
    ``2 (Delta + 1)`` consecutive colors.  Within every block (in parallel,
    using the block's own lower ``Delta + 1`` colors as the target space) the
    upper colors are removed one value per round exactly as in
    :func:`remove_color_class_reduction`.  A phase takes at most ``Delta + 1``
    rounds and at least halves the number of colors, so the total round count
    is ``O(Delta * log(m / Delta))`` — the classical bound the paper's
    ``O(Delta)``-round algorithms improve upon.
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    delta = graph.max_degree
    if target_colors is None:
        target_colors = delta + 1
    if target_colors < delta + 1:
        raise ValueError(
            f"cannot greedily reduce below Delta + 1 = {delta + 1} colors, requested {target_colors}"
        )
    if colors.size and int(colors.max()) >= m:
        raise ValueError("input coloring uses colors outside the declared space [m]")

    block = 2 * target_colors
    space = int(m)
    rounds = 0
    phases = 0

    while space > target_colors:
        phases += 1
        num_blocks = -(-space // block)
        # Vertices are grouped by block; within a block the colors
        # block_base + target_colors .. block_base + block - 1 are removed one
        # value per round, all blocks in parallel (disjoint output spaces).
        phase_rounds = 0
        for offset in range(block - 1, target_colors - 1, -1):
            phase_rounds += 1
            affected = np.nonzero((colors % block) == offset)[0] if colors.size else np.empty(0, int)
            if affected.size == 0:
                continue
            forbidden = _neighbor_color_sets(graph, colors, affected)
            for v, banned in zip(affected, forbidden):
                base = (int(colors[v]) // block) * block
                # Pick a free slot within the block's lower target_colors colors.
                banned_slots = {
                    b - base for b in banned if base <= b < base + target_colors
                }
                free = 0
                while free in banned_slots:
                    free += 1
                colors[v] = base + free
            # (recoloring within the lower half of the same block keeps the
            # coloring proper: affected vertices of one color value form an
            # independent set, and they avoid neighbors' current colors)
        rounds += phase_rounds
        # Compact the color space: every block keeps only its lower half.
        if colors.size:
            colors = (colors // block) * target_colors + (colors % block)
        space = num_blocks * target_colors

    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=max(space, target_colors),
        metadata={
            "method": "kuhn_wattenhofer",
            "phases": phases,
            "target_colors": target_colors,
        },
    )
