"""Corollary 1.2 — the most important parameter settings of Theorem 1.1.

Every function below is a thin wrapper that chooses ``(d, k)`` exactly as the
corollary's proof does and delegates to the mother algorithm through the
execution-engine layer (:mod:`repro.engine`): ``backend="reference"`` runs the
per-node CONGEST simulator, ``backend="array"`` the vectorized CSR twin, with
property-tested identical outputs.  The color / round bounds stated in the
corollary (for a ``Delta^4``-input coloring) are exposed by
:mod:`repro.analysis.bounds` and checked by the tests and experiments.

1. ``linial_color_reduction``   — ``d = 0``, one batch:   ``<= 256 Delta^2`` colors in 1 round.
2. ``kdelta_coloring``          — ``d = 0``, batch size ``k``: ``<= 16 Delta k`` colors in ``O(Delta / k)`` rounds.
3. ``delta_squared_coloring``   — ``k = ceil(Delta / 16)``: ``<= Delta^2`` colors in ``O(1)`` rounds.
4. ``outdegree_coloring``       — ``k = 1``, ``d = beta``: ``beta``-outdegree ``O(Delta/beta)``-coloring in ``O(Delta/beta)`` rounds.
5. ``defective_coloring_one_round`` — ``k`` = one batch, defect ``d``: ``d``-defective ``O((Delta/d)^2)``-coloring in 1 round.
6. ``defective_coloring``       — ``k = 1``, defect ``d``, output ``(color, part)``: same color bound in ``O(Delta/d)`` rounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.congest.graph import Graph
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.engine.base import Engine
from repro.engine.registry import resolve_backend

__all__ = [
    "linial_color_reduction",
    "kdelta_coloring",
    "delta_squared_coloring",
    "outdegree_coloring",
    "defective_coloring_one_round",
    "defective_coloring",
]


def _run(
    graph,
    input_colors,
    m,
    d,
    k,
    backend: str | Engine,
    vectorized: bool | None,
    with_orientation=True,
    params=None,
    validate_input=True,
):
    engine = resolve_backend(backend, vectorized)
    return engine.run_mother(
        graph,
        input_colors,
        m=m,
        d=d,
        k=k,
        params=params,
        with_orientation=with_orientation,
        validate_input=validate_input,
    )


def _single_batch_params(m: int, delta: int, d: int) -> MotherParameters:
    """Parameters with ``k`` large enough that the whole sequence is one batch (``k = q``)."""
    probe = MotherParameters.derive(m=m, delta=delta, d=d, k=1)
    return MotherParameters(m=probe.m, delta=probe.delta, d=probe.d, k=probe.q, f=probe.f, q=probe.q)


def linial_color_reduction(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Corollary 1.2 (1): Linial's one-round color reduction.

    With ``d = 0`` and the batch covering the entire sequence the node tries
    all ``q`` colors of its sequence at once; since at most ``2 f Z < q`` of
    them can be blocked it succeeds immediately.  For ``m = Delta^4`` this is
    a ``<= 256 Delta^2``-coloring in exactly one round.
    """
    delta = max(1, graph.max_degree)
    params = _single_batch_params(m, delta, 0)
    return _run(graph, input_colors, m, 0, params.k, backend, vectorized, params=params,
                validate_input=validate_input)


def kdelta_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    k: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Corollary 1.2 (2): ``O(k Delta)`` colors in ``O(Delta / k)`` rounds.

    The smooth trade-off between Linial (``k = X``) and the locally-iterative
    regime (``k = 1``).  For a ``Delta^4``-input coloring the concrete bounds
    are ``16 Delta k`` colors in ``16 Delta / k`` rounds.
    """
    return _run(graph, input_colors, m, 0, k, backend, vectorized, validate_input=validate_input)


def delta_squared_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Corollary 1.2 (3): ``Delta^2`` colors in ``O(1)`` rounds (``k = ceil(Delta/16)``)."""
    delta = max(1, graph.max_degree)
    k = max(1, math.ceil(delta / 16))
    return _run(graph, input_colors, m, 0, k, backend, vectorized, validate_input=validate_input)


def outdegree_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    beta: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """Corollary 1.2 (4): a ``beta``-outdegree ``O(Delta / beta)``-coloring in ``O(Delta / beta)`` rounds.

    Runs the mother algorithm with ``k = 1`` and defect tolerance ``d = beta``;
    the orientation of Theorem 1.1 point (1) (later round -> earlier round,
    ties by input color) has outdegree at most ``beta``.  These colorings are
    the "arbdefective" schedules used by every sublinear-in-``Delta``
    ``(Delta+1)``-coloring algorithm.
    """
    delta = max(1, graph.max_degree)
    if not (1 <= beta <= delta - 1):
        raise ValueError(f"beta must satisfy 1 <= beta <= Delta - 1, got beta={beta}, Delta={delta}")
    return _run(graph, input_colors, m, beta, 1, backend, vectorized, with_orientation=True)


def defective_coloring_one_round(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    d: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """Corollary 1.2 (5): a ``d``-defective ``O((Delta/d)^2)``-coloring in one round.

    With a single batch there is only one part ``P_1``, so the partition bound
    of Theorem 1.1 (2) *is* a defect bound: every node tolerated at most ``d``
    same-color neighbors, and nobody colors later.
    """
    delta = max(1, graph.max_degree)
    if not (1 <= d <= delta - 1):
        raise ValueError(f"d must satisfy 1 <= d <= Delta - 1, got d={d}, Delta={delta}")
    params = _single_batch_params(m, delta, d)
    return _run(graph, input_colors, m, d, params.k, backend, vectorized, params=params)


def defective_coloring(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    d: int,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Corollary 1.2 (6): a ``d``-defective ``O((Delta/d)^2)``-coloring in ``O(Delta/d)`` rounds.

    Runs the mother algorithm with ``k = 1`` and defect ``d`` and outputs the
    *pair* ``(color, part)``: within one part every color class has degree at
    most ``d`` (Theorem 1.1 point (2)), so the pair coloring is ``d``-defective.
    The pair is encoded as ``color * (R + 1) + part``.
    """
    delta = max(1, graph.max_degree)
    if not (1 <= d <= delta - 1):
        raise ValueError(f"d must satisfy 1 <= d <= Delta - 1, got d={d}, Delta={delta}")
    base = _run(graph, input_colors, m, d, 1, backend, vectorized, with_orientation=False,
                validate_input=validate_input)
    if base.parts is None:  # pragma: no cover - defensive
        raise RuntimeError("mother algorithm did not report parts")
    stride = int(base.parts.max(initial=0)) + 1
    combined = base.colors * stride + base.parts
    return ColoringResult(
        colors=combined,
        rounds=base.rounds,
        color_space_size=base.color_space_size * stride,
        parts=base.parts,
        orientation=None,
        metadata={
            **base.metadata,
            "pair_encoding_stride": stride,
            "base_color_space": base.color_space_size,
        },
    )


# --------------------------------------------------------------------------- #
# Registry entries — every Corollary 1.2 item self-registers as a named,
# schema'd algorithm with the engine-layer task signature
# ``runner(workload, engine, **params)`` (see repro.api.registry).
# --------------------------------------------------------------------------- #

from repro.api.records import coloring_record  # noqa: E402
from repro.api.registry import ParamSpec, register_algorithm  # noqa: E402


@register_algorithm(
    "linial_reduction",
    summary="Linial's one-round color reduction",
    guarantee="proper; <= 256*Delta^2 colors from a Delta^4-input coloring in exactly 1 round",
    source="Corollary 1.2 (1)",
)
def _run_linial_reduction(w, engine):
    res = linial_color_reduction(w.graph, w.input_colors, w.m, backend=engine)
    return coloring_record(res, verify_graph=w.graph)


@register_algorithm(
    "kdelta",
    summary="the O(k*Delta)-colors / O(Delta/k)-rounds trade-off",
    guarantee="proper; <= 16*Delta*k colors in <= 16*Delta/k rounds",
    source="Corollary 1.2 (2)",
    params=[ParamSpec("k", int, default=1, minimum=1,
                      help="batch size: colors grow ~k, rounds shrink ~1/k")],
)
def _run_kdelta(w, engine, k: int = 1):
    res = kdelta_coloring(w.graph, w.input_colors, w.m, k=k, backend=engine)
    return coloring_record(res, verify_graph=w.graph)


@register_algorithm(
    "delta_squared",
    summary="Delta^2 colors in O(1) rounds (k = ceil(Delta/16))",
    guarantee="proper; <= Delta^2 colors (Delta >= 16) in O(1) rounds",
    source="Corollary 1.2 (3)",
)
def _run_delta_squared(w, engine):
    res = delta_squared_coloring(w.graph, w.input_colors, w.m, backend=engine)
    return coloring_record(res, verify_graph=w.graph)


@register_algorithm(
    "outdegree",
    summary="beta-outdegree O(Delta/beta)-coloring with its orientation",
    guarantee="proper; monochromatic edges orientable with outdegree <= beta "
              "(hard invariant, verified per run)",
    source="Corollary 1.2 (4)",
    params=[ParamSpec("beta", int, default=1, minimum=1,
                      help="outdegree budget of the orientation")],
)
def _run_outdegree(w, engine, beta: int = 1):
    from repro.verify.orientation import assert_outdegree_orientation

    res = outdegree_coloring(w.graph, w.input_colors, w.m, beta=beta, backend=engine)
    assert_outdegree_orientation(w.graph, res.colors, res.orientation, beta)
    record = coloring_record(res)
    sources = np.fromiter((e[0] for e in res.orientation), dtype=np.int64,
                          count=len(res.orientation))
    record["max outdegree"] = (
        int(np.bincount(sources, minlength=w.graph.n).max()) if sources.size else 0
    )
    # the orientation itself, as a canonically ordered (k, 2) artifact, so
    # external validators (e.g. the corpus sweep) can re-verify the guarantee
    record["_orientation"] = np.array(
        sorted(res.orientation), dtype=np.int64
    ).reshape(-1, 2)
    return record


@register_algorithm(
    "defective_one_round",
    summary="d-defective O((Delta/d)^2)-coloring in one round",
    guarantee="max defect <= d (hard invariant, verified per run); "
              "O((Delta/d)^2) colors in exactly 1 round",
    source="Corollary 1.2 (5)",
    params=[ParamSpec("d", int, default=1, minimum=1, help="defect tolerance")],
)
def _run_defective_one_round(w, engine, d: int = 1):
    res = defective_coloring_one_round(w.graph, w.input_colors, w.m, d=d, backend=engine)
    record = coloring_record(res)
    record["max defect"] = _checked_defect(w.graph, res.colors, d)
    return record


@register_algorithm(
    "defective",
    summary="d-defective O((Delta/d)^2)-coloring via the (color, part) pair",
    guarantee="max defect <= d (hard invariant, verified per run); "
              "O((Delta/d)^2) colors in O(Delta/d) rounds",
    source="Corollary 1.2 (6)",
    params=[ParamSpec("d", int, default=1, minimum=1, help="defect tolerance")],
)
def _run_defective(w, engine, d: int = 1):
    res = defective_coloring(w.graph, w.input_colors, w.m, d=d, backend=engine)
    record = coloring_record(res)
    record["max defect"] = _checked_defect(w.graph, res.colors, d)
    return record


def _checked_defect(graph, colors, d: int) -> int:
    """The measured max defect, asserted against the corollary's bound ``d``."""
    from repro.verify.coloring import max_defect

    defect = int(max_defect(graph, colors))
    if defect > d:
        raise AssertionError(
            f"defective coloring violated its bound: max defect {defect} > d = {d}"
        )
    return defect
