"""Whole-graph NumPy implementation of Algorithm 1, frontier-compacted.

The message-passing implementation in :mod:`repro.core.algorithm1` is the
faithful model-level artifact; this module is its performance twin.  It runs
the exact same round structure — per batch count conflicts and let every node
adopt the first ``d``-proper trial — but each round operates on *compacted*
arrays covering only the still-active subgraph:

* per batch, only the CSR ranges incident to still-active vertices are
  gathered (:meth:`repro.congest.graph.Graph.incident_csr_entries`); edges
  between two permanently colored endpoints are never touched again, so a
  round costs ``O(active degree)``, not ``O(|E|)``;
* conflict counting is one 2-D scatter-add over the compacted edges
  (``bincount`` on flattened ``(row, trial)`` indices) instead of a Python
  loop over the batch's trial positions with full-size temporaries;
* within a batch the trial axis is processed in bounded-memory chunks with
  per-row early exit — a row that already found its first ``d``-proper trial
  is dropped from the remaining chunks (the adopted trial is the *first*
  qualifying one either way, so outputs are unchanged);
* polynomial sequences are evaluated *lazily*: instead of the dense ``(n, q)``
  table of :func:`evaluate_all_sequences` (which dominates the runtime once
  the round loop is compacted), each chunk Horner-evaluates exactly the
  vertices it touches at exactly the chunk's trial positions.  Modular
  arithmetic is exact, so the lazily computed values are bit-identical to the
  table's;
* recurring per-round temporaries (gathered neighbor colors and activity
  flags, first-slot/undone trackers, Horner accumulators) live in a
  :class:`repro.core.workspace.Workspace` arena — named grow-only buffers
  reused across rounds and chunks, so a steady-state round performs no
  scratch allocations proportional to the graph.

The two implementations produce *identical* colors and part indices (this is
property-tested), so benchmarks can use the vectorized twin on graphs where
instantiating ``n`` Python node objects would dominate the runtime.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.core.algorithm1 import derive_orientation
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.core.workspace import Workspace

__all__ = ["run_mother_algorithm_vectorized", "evaluate_all_sequences"]

#: Budget (in edge x trial cells) for one conflict-counting chunk.  Bounds the
#: per-chunk temporaries to a few tens of MB regardless of graph size while
#: leaving single-batch calls (Linial: the whole sequence in one batch) enough
#: width per chunk to stay vectorized.
_CHUNK_CELLS = 2 * 1024 * 1024


def sequence_coefficients(input_colors: np.ndarray, params: MotherParameters) -> np.ndarray:
    """Polynomial coefficient matrix, shape ``(n, f + 1)``.

    ``coeffs[v, j]`` is the ``j``-th base-``q`` digit of ``input color + q``;
    the offset skips the constant polynomials (see :mod:`repro.core.sequences`).
    """
    colors = np.asarray(input_colors, dtype=np.int64)
    q = params.q
    coeffs = np.empty((colors.shape[0], params.f + 1), dtype=np.int64)
    rest = colors + q
    for j in range(params.f + 1):
        coeffs[:, j] = rest % q
        rest //= q
    return coeffs


def evaluate_all_sequences(input_colors: np.ndarray, params: MotherParameters) -> np.ndarray:
    """Evaluate ``p_{c(v)}(x)`` for every vertex ``v`` and every ``x`` in ``F_q``.

    Returns an ``(n, q)`` array: the full trial table, via vectorized Horner.
    The compacted kernel no longer materialises this — it evaluates lazily per
    chunk — but the table remains the clearest specification of the trial
    values (and the two agree exactly; modular arithmetic has no rounding).
    """
    coeffs = sequence_coefficients(input_colors, params)
    q, f = params.q, params.f
    xs = np.arange(q, dtype=np.int64)
    values = np.zeros((coeffs.shape[0], q), dtype=np.int64)
    for j in range(f, -1, -1):
        values = (values * xs[None, :] + coeffs[:, j][:, None]) % q
    return values


def run_mother_algorithm_vectorized(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    d: int = 0,
    k: int = 1,
    params: MotherParameters | None = None,
    validate_input: bool = True,
    with_orientation: bool = False,
    workspace: Workspace | None = None,
) -> ColoringResult:
    """Vectorized Algorithm 1; same semantics and outputs as
    :func:`repro.core.algorithm1.run_mother_algorithm`.

    ``with_orientation`` defaults to False here because the orientation
    derivation is an extra ``O(num_edges)`` Python pass that benchmarks on
    large graphs usually do not need.

    ``workspace`` optionally supplies the scratch-buffer arena; pass one to
    reuse buffers across several calls (e.g. the stages of a pipeline), or
    leave ``None`` for a private per-call arena.  Buffer reuse changes the
    allocation pattern only — outputs are bit-identical either way.
    """
    input_colors = np.asarray(input_colors, dtype=np.int64)
    delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if params is None:
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)

    n = graph.n
    if n == 0:
        return ColoringResult(
            colors=np.empty(0, dtype=np.int64),
            rounds=0,
            color_space_size=params.color_space_size,
            parts=np.empty(0, dtype=np.int64),
            orientation=set() if with_orientation else None,
            metadata={"params": params.describe(), "implementation": "vectorized"},
        )

    q, k_eff, dd = params.q, params.k, params.d
    f = params.f
    coeffs = sequence_coefficients(input_colors, params)
    ws = workspace if workspace is not None else Workspace()

    def eval_grid(verts: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """``p_{c(v)}(x)`` for every ``v`` in ``verts`` and ``x`` in ``xs``.

        Horner in place on a reused workspace accumulator — identical modular
        arithmetic, zero per-chunk allocation of the accumulator.
        """
        acc = ws.zeros("eval_grid", verts.size * xs.size).reshape(verts.size, xs.size)
        for j in range(f, -1, -1):
            np.multiply(acc, xs[None, :], out=acc)
            np.add(acc, coeffs[verts, j][:, None], out=acc)
            np.mod(acc, q, out=acc)
        return acc

    def eval_at(verts: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """``p_{c(verts[i])}(xs[i])`` — one position per vertex."""
        acc = ws.zeros("eval_at", verts.size)
        for j in range(f, -1, -1):
            np.multiply(acc, xs, out=acc)
            np.add(acc, coeffs[verts, j], out=acc)
            np.mod(acc, q, out=acc)
        return acc

    indices = graph.indices

    colors = -np.ones(n, dtype=np.int64)
    parts = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rounds = 0

    # Frontier compaction state: ``act`` are the still-active vertices and
    # ``rows``/``e_dst`` their incident CSR entries (entry i belongs to vertex
    # act[rows[i]] and points at neighbor e_dst[i]).  Edges between two
    # permanently colored endpoints never appear here.  Rebuilt only when the
    # active set shrank (someone adopted a color).
    act = rows = e_dst = None
    refresh = True

    for batch in range(params.num_batches):
        if refresh:
            act = np.nonzero(active)[0]
            if act.size == 0:
                break
            positions, rows = graph.incident_csr_entries(act)
            e_dst = ws.gather("e_dst", indices, positions)
            refresh = False
        rounds = batch + 1
        lo = batch * k_eff
        hi = min(lo + k_eff, q)
        num_active = act.size

        # first[r] = first trial position in [lo, hi) with <= d conflicts for
        # act[r], or -1.  The trial axis is chunked to bound the temporaries
        # at ~_CHUNK_CELLS edge-trial cells; rows that found their slot are
        # dropped from later chunks (their first slot is already decided).
        # All four per-batch arrays live in the workspace arena.
        dst_active = ws.gather("dst_active", active, e_dst)
        dst_colors = ws.gather("dst_colors", colors, e_dst)
        first = ws.full("first", num_active, -1)
        undone = ws.full("undone", num_active, True, dtype=bool)
        r_sub, d_sub, a_sub, c_sub = rows, e_dst, dst_active, dst_colors
        cstart = lo
        while cstart < hi:
            w = max(1, min(hi - cstart, _CHUNK_CELLS // max(1, r_sub.size)))
            xs = np.arange(cstart, cstart + w, dtype=np.int64)
            # Lazily evaluate exactly the vertices this chunk touches — the
            # remaining rows' sources and their *active* neighbors (colored
            # neighbors are compared by final color, no values needed) — at
            # exactly the chunk's trial positions.
            src_verts = act[r_sub]
            need = np.unique(np.concatenate([src_verts, d_sub[a_sub]]))
            table = eval_grid(need, xs)
            src_vals = table[np.searchsorted(need, src_verts)]
            nbr_pos = np.searchsorted(need, d_sub)
            if need.size:
                np.minimum(nbr_pos, need.size - 1, out=nbr_pos)
            # A hit is an active neighbor trying the same value, or a colored
            # neighbor whose final color equals the trial color
            # (x % k) * q + value  <=>  final - (x % k) * q == value.
            # (For colored neighbors nbr_pos is a clipped dummy; np.where
            # discards that branch.)
            hits = np.where(
                a_sub[:, None],
                table[nbr_pos] == src_vals,
                (c_sub[:, None] - ((xs % k_eff) * q)[None, :]) == src_vals,
            )
            # 2-D scatter-add over the compacted edges: conflict counts per
            # (active row, trial position), via bincount on flattened indices.
            er, el = np.nonzero(hits)
            counts = np.bincount(
                r_sub[er] * w + el, minlength=num_active * w
            ).reshape(num_active, w)
            ok = counts <= dd
            ok[~undone] = False
            found = ok.any(axis=1)
            first[found] = cstart + np.argmax(ok[found], axis=1)
            undone &= ~found
            cstart += w
            if cstart >= hi or not undone.any():
                break
            keep = undone[r_sub]
            r_sub, d_sub = r_sub[keep], d_sub[keep]
            a_sub, c_sub = a_sub[keep], c_sub[keep]

        adopters = first >= 0
        if np.any(adopters):
            verts = act[adopters]
            xs = first[adopters]
            colors[verts] = (xs % k_eff) * q + eval_at(verts, xs)
            parts[verts] = batch + 1
            active[verts] = False
            refresh = True

    if active.any():
        raise RuntimeError(
            "some nodes exhausted their color sequences — this contradicts Theorem 1.1 "
            "and indicates invalid parameters or a bug"
        )

    orientation = (
        derive_orientation(graph, colors, parts, input_colors) if with_orientation else None
    )
    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=params.color_space_size,
        parts=parts,
        orientation=orientation,
        metadata={
            "params": params.describe(),
            "implementation": "vectorized",
            "round_bound": params.round_bound,
        },
    )
