"""Whole-graph NumPy implementation of Algorithm 1.

The message-passing implementation in :mod:`repro.core.algorithm1` is the
faithful model-level artifact; this module is its performance twin.  It runs
the exact same round structure — evaluate all sequences up front, then per
batch count conflicts and let every node adopt the first ``d``-proper trial —
but each round is a handful of flat array operations over the CSR adjacency,
following the vectorization guidance of the HPC guides (no per-node Python
loops, no temporaries inside the round loop beyond what the conflict counts
need).

The two implementations produce *identical* colors and part indices (this is
property-tested), so benchmarks can use the vectorized twin on graphs where
instantiating ``n`` Python node objects would dominate the runtime.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.core.algorithm1 import derive_orientation
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult

__all__ = ["run_mother_algorithm_vectorized", "evaluate_all_sequences"]


def evaluate_all_sequences(input_colors: np.ndarray, params: MotherParameters) -> np.ndarray:
    """Evaluate ``p_{c(v)}(x)`` for every vertex ``v`` and every ``x`` in ``F_q``.

    Returns an ``(n, q)`` array.  The coefficients of the ``i``-th polynomial
    are the base-``q`` digits of ``i``, so the whole coefficient matrix is
    produced by repeated integer division; evaluation is vectorized Horner.
    """
    colors = np.asarray(input_colors, dtype=np.int64)
    n = colors.shape[0]
    q = params.q
    f = params.f
    # Coefficient matrix: coeffs[v, j] = j-th base-q digit of (input color + q);
    # the offset skips the constant polynomials (see repro.core.sequences).
    coeffs = np.empty((n, f + 1), dtype=np.int64)
    rest = colors + q
    for j in range(f + 1):
        coeffs[:, j] = rest % q
        rest //= q
    xs = np.arange(q, dtype=np.int64)
    values = np.zeros((n, q), dtype=np.int64)
    for j in range(f, -1, -1):
        values = (values * xs[None, :] + coeffs[:, j][:, None]) % q
    return values


def run_mother_algorithm_vectorized(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    d: int = 0,
    k: int = 1,
    params: MotherParameters | None = None,
    validate_input: bool = True,
    with_orientation: bool = False,
) -> ColoringResult:
    """Vectorized Algorithm 1; same semantics and outputs as
    :func:`repro.core.algorithm1.run_mother_algorithm`.

    ``with_orientation`` defaults to False here because the orientation
    derivation is an extra ``O(num_edges)`` Python pass that benchmarks on
    large graphs usually do not need.
    """
    input_colors = np.asarray(input_colors, dtype=np.int64)
    delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if params is None:
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)

    n = graph.n
    if n == 0:
        return ColoringResult(
            colors=np.empty(0, dtype=np.int64),
            rounds=0,
            color_space_size=params.color_space_size,
            parts=np.empty(0, dtype=np.int64),
            orientation=set() if with_orientation else None,
            metadata={"params": params.describe(), "implementation": "vectorized"},
        )

    q, k_eff, dd = params.q, params.k, params.d
    values = evaluate_all_sequences(input_colors, params)

    indptr = graph.indptr
    indices = graph.indices
    src_index = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)

    colors = -np.ones(n, dtype=np.int64)
    parts = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rounds = 0

    for batch in range(params.num_batches):
        if not active.any():
            break
        rounds = batch + 1
        lo = batch * k_eff
        hi = min(lo + k_eff, q)
        width = hi - lo

        # Conflict counts: counts[v, l] for trial position lo + l.
        counts = np.zeros((n, width), dtype=np.int64)
        nbr_active = active[indices]
        nbr_colors = colors[indices]
        for l in range(width):
            x = lo + l
            val = values[:, x]
            trial_color = (x % k_eff) * q + val
            # Active neighbors whose own trial at position x has the same value.
            same_value = (val[indices] == val[src_index]) & nbr_active
            # Neighbors already permanently colored with exactly this color.
            same_final = (~nbr_active) & (nbr_colors == trial_color[src_index])
            hits = (same_value | same_final).astype(np.int64)
            counts[:, l] = np.bincount(src_index, weights=hits, minlength=n).astype(np.int64)

        ok = counts <= dd
        has_slot = ok.any(axis=1)
        first = np.argmax(ok, axis=1)
        adopters = active & has_slot
        if np.any(adopters):
            xs = lo + first[adopters]
            vals = values[adopters, xs]
            colors[adopters] = (xs % k_eff) * q + vals
            parts[adopters] = batch + 1
            active[adopters] = False

    if active.any():
        raise RuntimeError(
            "some nodes exhausted their color sequences — this contradicts Theorem 1.1 "
            "and indicates invalid parameters or a bug"
        )

    orientation = (
        derive_orientation(graph, colors, parts, input_colors) if with_orientation else None
    )
    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=params.color_space_size,
        parts=parts,
        orientation=orientation,
        metadata={
            "params": params.describe(),
            "implementation": "vectorized",
            "round_bound": params.round_bound,
        },
    )
