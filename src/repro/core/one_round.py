"""One-round color reduction (Section 4 / Theorem 1.6).

Theorem 1.6: for ``m`` input colors and maximum degree ``Delta``, let ``k`` be
the largest integer with ``1 <= k <= min(Delta - 1, Delta/2 + 3/2)`` and
``m >= k (Delta - k + 3)``.  Then ``k`` colors can be removed in one round
(Lemma 4.1), and no one-round algorithm can remove ``k + 1`` colors
(Lemma 4.3).

This module provides

* :func:`max_reducible_colors` — the closed-form ``k`` of Theorem 1.6,
* :func:`one_round_color_reduction` — the algorithm of Lemma 4.1 (regimes and
  color stealing), executed in exactly one communication round,
* :func:`one_round_reduction_exists` — an exact feasibility decision for
  whether *any* one-round algorithm with a given output color budget exists,
  by modelling one-round algorithms as colorings of a finite conflict graph of
  neighborhood configurations and deciding colorability by backtracking.  For
  the small parameters used in the tests it verifies the impossibility side of
  Theorem 1.6 (Lemma 4.3) exhaustively.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import validate_proper_coloring
from repro.core.results import ColoringResult

__all__ = [
    "max_reducible_colors",
    "one_round_color_reduction",
    "one_round_reduction_exists",
    "required_input_colors",
]


def required_input_colors(delta: int, k: int) -> int:
    """``k (Delta - k + 3)`` — the input colors needed to remove ``k`` colors in one round."""
    return k * (delta - k + 3)


def max_reducible_colors(m: int, delta: int) -> int:
    """The largest ``k`` such that a one-round algorithm can reduce an ``m``-coloring by ``k`` colors.

    Returns 0 when not even one color can be removed (``m < Delta + 2``).
    """
    if delta < 1:
        return 0
    # k <= Delta/2 + 3/2 i.e. 2k <= Delta + 3.
    upper = min(delta - 1, (delta + 3) // 2)
    best = 0
    for k in range(1, upper + 1):
        if m >= required_input_colors(delta, k):
            best = k
    return best


# --------------------------------------------------------------------------- #
# Lemma 4.1 — the one-round reduction algorithm
# --------------------------------------------------------------------------- #


def one_round_color_reduction(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    k: int | None = None,
    delta: int | None = None,
    validate_input: bool = True,
) -> ColoringResult:
    """Lemma 4.1: remove ``k`` colors from an ``m``-coloring in one round.

    Only vertices whose color lies in the top ``k`` "recoloring" colors of the
    block ``[k(Delta-k+3)]`` change their color; each recoloring color owns a
    regime of ``Delta - k + 2`` output colors, and a recoloring vertex may
    additionally *steal* one color from the regime of every recoloring color
    that does not appear in its neighborhood.  Colors ``>= k(Delta-k+3)`` (when
    ``m`` is larger than required) are left untouched, as described in the
    paper's proof.

    Returns a coloring over a color space of size ``m - k``.
    """
    input_colors = np.asarray(input_colors, dtype=np.int64)
    if delta is None:
        delta = max(1, graph.max_degree)
    if validate_input:
        validate_proper_coloring(graph, input_colors, m)
    if k is None:
        k = max_reducible_colors(m, delta)
    if k < 1:
        raise ValueError(
            f"cannot remove any color in one round: m={m} < Delta + 2 = {delta + 2}"
        )
    if k > min(delta - 1, (delta + 3) // 2):
        raise ValueError(
            f"k={k} exceeds the Theorem 1.6 range min(Delta-1, Delta/2+3/2) for Delta={delta}"
        )
    block = required_input_colors(delta, k)  # = m in the tight case
    if m < block:
        raise ValueError(
            f"removing {k} colors in one round requires m >= k(Delta-k+3) = {block}, got m={m}"
        )

    ell = k * (delta - k + 2)          # number of output colors inside the block
    regime_size = delta - k + 2        # size of each regime R_i

    def regime(i: int) -> list[int]:
        return [i * regime_size + j for j in range(regime_size)]

    def steal(j: int, phi: int) -> int:
        """``f_j(phi)``: the color vertex of input color ``phi`` may steal from regime ``j``.

        ``phi`` ranges over the recoloring colors other than ``ell + j``; the
        map sends the ``t``-th such color to the ``t``-th color of regime ``j``
        (injective because ``k - 1 <= regime_size``).
        """
        t = phi - ell
        slot = t if t < j else t - 1
        return j * regime_size + slot

    n = graph.n
    output = input_colors.copy()
    # One round: every vertex learns its neighbors' input colors.
    for v in range(n):
        phi = int(input_colors[v])
        if phi < ell or phi >= block:
            continue  # case 1 (keeps a color < ell) or an untouched color >= block
        neighbor_colors = {int(input_colors[u]) for u in graph.neighbors(v)}
        if neighbor_colors and max(neighbor_colors) < ell:
            # Case 2: all neighbors keep their colors; Delta + 1 <= ell colors suffice.
            c = 0
            while c in neighbor_colors:
                c += 1
            output[v] = c
            continue
        if not neighbor_colors:
            output[v] = 0
            continue
        # Case 3: regime of the own recoloring color plus stolen colors.
        i = phi - ell
        available = set(regime(i))
        for j in range(k):
            if j == i:
                continue
            if (ell + j) not in neighbor_colors:
                available.add(steal(j, phi))
        candidates = sorted(available - neighbor_colors)
        if not candidates:  # pragma: no cover - contradicts Lemma 4.1
            raise RuntimeError(
                f"vertex {v} found no free color — this contradicts Lemma 4.1"
            )
        output[v] = candidates[0]

    # Compact the removed block: colors >= block shift down by k so the output
    # space is exactly [m - k].  (A node can do this locally, no extra round.)
    high = output >= block
    output[high] -= k

    return ColoringResult(
        colors=output,
        rounds=1,
        color_space_size=m - k,
        metadata={
            "method": "lemma41_one_round",
            "k": k,
            "delta": delta,
            "ell": ell,
            "block": block,
        },
    )


# --------------------------------------------------------------------------- #
# Lemma 4.3 — exhaustive impossibility checking for small parameters
# --------------------------------------------------------------------------- #


@lru_cache(maxsize=None)
def _configurations(m: int, delta: int) -> tuple[tuple[int, frozenset[int]], ...]:
    """All one-round views ``(own color, set of neighbor colors)`` with ``<= delta`` neighbors.

    Neighbor multiplicities do not matter for a deterministic one-round
    algorithm without IDs (the algorithm sees the multiset, but a correct
    algorithm must already be correct on the set-instances; conversely any
    set-instance is realisable), so configurations are (color, subset) pairs
    with the subset not containing the own color and of size at most ``delta``.
    """
    configs = []
    others = list(range(m))
    for phi in range(m):
        rest = [c for c in others if c != phi]
        for size in range(0, min(delta, len(rest)) + 1):
            for subset in combinations(rest, size):
                configs.append((phi, frozenset(subset)))
    return tuple(configs)


def _conflict_pairs(configs) -> list[tuple[int, int]]:
    """Pairs of configuration indices that could be adjacent in some graph.

    Configurations ``(phi, A)`` and ``(phi', B)`` conflict when ``phi != phi'``,
    ``phi' in A`` and ``phi in B`` — then two adjacent vertices can have exactly
    these views, so a correct algorithm must give them different output colors.
    """
    pairs = []
    for a, (phi_a, set_a) in enumerate(configs):
        for b in range(a + 1, len(configs)):
            phi_b, set_b = configs[b]
            if phi_a != phi_b and phi_b in set_a and phi_a in set_b:
                pairs.append((a, b))
    return pairs


def one_round_reduction_exists(m: int, delta: int, output_colors: int) -> bool:
    """Decide whether *any* deterministic one-round algorithm maps every ``m``-input-colored
    graph of maximum degree ``delta`` to a proper ``output_colors``-coloring.

    A one-round algorithm (without IDs) is exactly a function from
    configurations to output colors that gives conflicting configurations
    different outputs, i.e. a proper coloring of the conflict graph.  The
    function decides colorability by backtracking with the most-constrained-
    vertex heuristic.  Exponential in the worst case — intended for the small
    ``(m, delta)`` values used to verify Lemma 4.3 (for these it finishes
    quickly, because the conflict graph either contains an easy certificate or
    an easy coloring).
    """
    if output_colors >= m:
        return True
    configs = _configurations(m, delta)
    num = len(configs)
    adjacency: list[set[int]] = [set() for _ in range(num)]
    for a, b in _conflict_pairs(configs):
        adjacency[a].add(b)
        adjacency[b].add(a)

    assignment = [-1] * num

    def choose() -> int:
        best, best_key = -1, None
        for v in range(num):
            if assignment[v] >= 0:
                continue
            used = {assignment[u] for u in adjacency[v] if assignment[u] >= 0}
            key = (-(len(used)), -len(adjacency[v]))
            if best_key is None or key < best_key:
                best, best_key = v, key
        return best

    def backtrack() -> bool:
        v = choose()
        if v < 0:
            return True
        used = {assignment[u] for u in adjacency[v] if assignment[u] >= 0}
        for c in range(output_colors):
            if c in used:
                continue
            assignment[v] = c
            if backtrack():
                return True
            assignment[v] = -1
            # Symmetry breaking: if color c was brand new (unused anywhere),
            # trying another brand-new color is equivalent — prune.
            if c not in set(a for a in assignment if a >= 0) and c >= max(
                [a for a in assignment if a >= 0], default=-1
            ):
                break
        return False

    return backtrack()
