"""Baseline coloring algorithms the paper's results are compared against.

* :func:`greedy_sequential` — the centralized first-fit greedy that realises
  the ``Delta + 1`` bound (not a distributed algorithm; used as the quality
  yardstick for color counts).
* :func:`luby_randomized_coloring` — the classic randomized distributed
  ``(Delta + 1)``-coloring: every uncolored node proposes a uniformly random
  color from its remaining palette and keeps it if no neighbor proposed or owns
  the same color.  Terminates in ``O(log n)`` rounds with high probability.
* :func:`locally_iterative_beg18` — the locally-iterative regime of
  [Barenboim-Elkin-Goldenberg, PODC'18] as subsumed by the paper: the mother
  algorithm with batch size ``k = 1`` (one color trial per round, ``O(Delta)``
  colors in ``O(Delta)`` rounds) followed by color-class removal down to
  ``Delta + 1``.  The paper's Section 1 explains that its ``k = 1``
  instantiation *is* a generalization of the BEG18 algorithm, so this is the
  faithful stand-in for that baseline.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import greedy_coloring
from repro.core.corollaries import kdelta_coloring
from repro.core.results import ColoringResult
from repro.engine.base import Engine
from repro.engine.registry import resolve_backend

__all__ = [
    "greedy_sequential",
    "luby_randomized_coloring",
    "locally_iterative_beg18",
]


def greedy_sequential(graph: Graph, order: np.ndarray | None = None) -> ColoringResult:
    """Centralized first-fit greedy coloring (``<= Delta + 1`` colors, 0 rounds reported).

    The ``rounds`` field is set to ``graph.n`` to reflect that the sequential
    schedule corresponds to an ``n``-round distributed execution (one vertex at
    a time); the point of the distributed algorithms is to beat exactly this.
    """
    colors = greedy_coloring(graph, order=order)
    return ColoringResult(
        colors=colors,
        rounds=graph.n,
        color_space_size=graph.max_degree + 1,
        metadata={"method": "greedy_sequential"},
    )


def luby_randomized_coloring(
    graph: Graph,
    palette_size: int | None = None,
    seed: int = 0,
    max_rounds: int = 10_000,
) -> ColoringResult:
    """Randomized trial-based ``(Delta + 1)``-coloring (Luby / Johansson style).

    Every round each uncolored vertex proposes a uniform random color from
    ``[palette_size]`` minus the colors already fixed in its neighborhood, and
    keeps the proposal if no neighbor proposed the same color this round nor
    owns it permanently.  With ``palette_size = Delta + 1`` this terminates in
    ``O(log n)`` rounds with high probability.
    """
    delta = graph.max_degree
    if palette_size is None:
        palette_size = delta + 1
    if palette_size < delta + 1:
        raise ValueError("palette must have at least Delta + 1 colors")

    rng = np.random.default_rng(seed)
    n = graph.n
    colors = -np.ones(n, dtype=np.int64)
    rounds = 0

    while n and np.any(colors < 0):
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("randomized coloring did not terminate (check palette size)")
        uncolored = np.nonzero(colors < 0)[0]
        proposals = -np.ones(n, dtype=np.int64)
        for v in uncolored:
            taken = {int(colors[u]) for u in graph.neighbors(int(v)) if colors[u] >= 0}
            available = [c for c in range(palette_size) if c not in taken]
            proposals[v] = int(rng.choice(available))
        for v in uncolored:
            mine = proposals[v]
            ok = True
            for u in graph.neighbors(int(v)):
                if colors[u] == mine or proposals[u] == mine and u != v:
                    ok = False
                    break
            if ok:
                colors[v] = mine
        # note: keep/discard decisions use this round's proposals symmetrically,
        # so two adjacent proposers of the same color both discard — safe.

    return ColoringResult(
        colors=colors,
        rounds=rounds,
        color_space_size=palette_size,
        metadata={"method": "luby_randomized", "seed": seed},
    )


def locally_iterative_beg18(
    graph: Graph,
    input_colors: np.ndarray,
    m: int,
    reduce_to_delta_plus_one: bool = True,
    backend: str | Engine = "reference",
    vectorized: bool | None = None,
) -> ColoringResult:
    """The locally-iterative (BEG18-style) baseline: ``k = 1`` trials, one per round.

    Produces an ``O(Delta)``-coloring in ``O(Delta)`` rounds and, if requested,
    continues with color-class removal down to ``Delta + 1`` colors in a further
    ``O(Delta)`` rounds — the exact route the paper describes for its ``k = 1``
    setting.
    """
    engine = resolve_backend(backend, vectorized)
    stage1 = kdelta_coloring(graph, input_colors, m, k=1, backend=engine)
    if not reduce_to_delta_plus_one:
        return stage1
    compact = stage1.colors
    stage2 = engine.remove_color_class(graph, compact, target_colors=graph.max_degree + 1)
    return ColoringResult(
        colors=stage2.colors,
        rounds=stage1.rounds + stage2.rounds,
        color_space_size=graph.max_degree + 1,
        metadata={
            "method": "locally_iterative_beg18",
            "stage1_rounds": stage1.rounds,
            "stage1_color_space": stage1.color_space_size,
            "stage2_rounds": stage2.rounds,
        },
    )
