"""The experiment suite E1-E10 (one per theorem / corollary item).

The paper has no empirical evaluation section; the reproduction's experiments
verify every stated bound empirically and compare against the baselines the
paper discusses.  Each ``run_eN`` function builds its workload, runs the
algorithms, and returns a :class:`repro.analysis.tables.Table` with one row per
configuration, including the paper's bound next to the measured quantity.

Sizes default to values that finish in seconds; the benchmark harness and the
``EXPERIMENTS.md`` generator call them with the same defaults so the recorded
tables are exactly reproducible.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.analysis import bounds
from repro.analysis.tables import Table
from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.ids import distinct_input_coloring, random_proper_coloring
from repro.core import baselines, corollaries, one_round, pipelines, ruling_sets
from repro.core.linial import linial_coloring
from repro.core.reduce import kuhn_wattenhofer_reduction
from repro.verify.coloring import assert_proper_coloring, count_colors, max_defect
from repro.verify.orientation import assert_outdegree_orientation
from repro.verify.ruling import assert_ruling_set

__all__ = ["EXPERIMENTS", "run_experiment"] + [f"run_e{i}" for i in range(1, 11)]


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #


def delta4_colored_graph(
    family: str, n: int, delta: int, seed: int = 0
) -> tuple[Graph, np.ndarray, int]:
    """A graph from the named family together with a ``Delta^4``-input coloring.

    This is the standing assumption of Corollary 1.2 ("on any Delta^4-input
    colored graph"); in practice the input coloring would come from Linial's
    algorithm, here it is manufactured directly so the corollary experiments
    are independent of the Linial experiment.  When the ``Delta^4`` space is
    large enough every vertex receives a *distinct* color (as with unique IDs);
    otherwise a greedy coloring is spread into the color space.
    """
    graph = generators.by_name(family, n, delta, seed=seed)
    eff_delta = max(1, graph.max_degree)
    m = max(eff_delta + 1, eff_delta ** 4)
    if m >= graph.n:
        colors = distinct_input_coloring(graph, m, seed=seed)
    else:
        colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return graph, colors, m


# --------------------------------------------------------------------------- #
# E1 — Corollary 1.2 (1): Linial's one-round color reduction
# --------------------------------------------------------------------------- #


def run_e1(n: int = 300, deltas: tuple[int, ...] = (4, 8, 16), seed: int = 1) -> Table:
    table = Table(
        "E1 — Corollary 1.2(1): one-round reduction of a Delta^4-coloring",
        ["family", "Delta", "n", "rounds", "colors used", "color space", "paper bound 256*Delta^2"],
    )
    for family in ("random_regular", "gnp"):
        for delta in deltas:
            graph, colors, m = delta4_colored_graph(family, n, delta, seed=seed)
            eff = max(1, graph.max_degree)
            res = corollaries.linial_color_reduction(graph, colors, m, vectorized=True)
            assert_proper_coloring(graph, res.colors)
            table.add_row(
                family, eff, graph.n, res.rounds, res.num_colors, res.color_space_size,
                bounds.corollary12_1_colors(eff),
            )
    table.add_note("Every row must have rounds = 1 and color space <= 256*Delta^2.")
    return table


# --------------------------------------------------------------------------- #
# E2 — Corollary 1.2 (2): the k sweep (rounds vs colors trade-off)
# --------------------------------------------------------------------------- #


def run_e2(n: int = 400, delta: int = 16, family: str = "random_regular", seed: int = 2) -> Table:
    graph, colors, m = delta4_colored_graph(family, n, delta, seed=seed)
    eff = max(1, graph.max_degree)
    table = Table(
        f"E2 — Corollary 1.2(2): O(k*Delta) colors in O(Delta/k) rounds (Delta={eff})",
        ["k", "rounds", "round bound 16*Delta/k", "colors used", "color bound 16*Delta*k"],
    )
    k = 1
    while True:
        res = corollaries.kdelta_coloring(graph, colors, m, k=k, vectorized=True)
        assert_proper_coloring(graph, res.colors)
        table.add_row(
            k, res.rounds, bounds.corollary12_2_rounds(eff, k), res.num_colors,
            bounds.corollary12_2_colors(eff, k),
        )
        if res.rounds <= 1:
            break
        k *= 2
        if k > 16 * eff:
            break
    table.add_note("Rounds fall linearly in 1/k while the color budget grows linearly in k.")
    return table


# --------------------------------------------------------------------------- #
# E3 — Corollary 1.2 (3): Delta^2 colors in O(1) rounds
# --------------------------------------------------------------------------- #


def run_e3(n: int = 400, deltas: tuple[int, ...] = (8, 16, 32), seed: int = 3) -> Table:
    table = Table(
        "E3 — Corollary 1.2(3): Delta^2 colors in O(1) rounds (k = ceil(Delta/16))",
        ["Delta", "rounds", "colors used", "color bound Delta^2"],
    )
    for delta in deltas:
        graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
        eff = max(1, graph.max_degree)
        res = corollaries.delta_squared_coloring(graph, colors, m, vectorized=True)
        assert_proper_coloring(graph, res.colors)
        table.add_row(eff, res.rounds, res.num_colors, bounds.corollary12_3_colors(eff))
    table.add_note("Rounds stay O(1) (at most 256 by the proof, tiny in practice) as Delta grows.")
    return table


# --------------------------------------------------------------------------- #
# E4 — Corollary 1.2 (4): beta-outdegree colorings
# --------------------------------------------------------------------------- #


def run_e4(
    n: int = 300, delta: int = 16, epsilons: tuple[float, ...] = (0.25, 0.5, 0.75), seed: int = 4
) -> Table:
    graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
    eff = max(1, graph.max_degree)
    table = Table(
        f"E4 — Corollary 1.2(4): beta-outdegree O(Delta/beta)-colorings (Delta={eff})",
        ["beta", "rounds", "round bound O(Delta/beta)", "colors used", "color bound O(Delta/beta)",
         "max outdegree"],
    )
    for eps in epsilons:
        beta = max(1, min(eff - 1, int(round(eff ** eps))))
        res = corollaries.outdegree_coloring(graph, colors, m, beta=beta)
        assert_outdegree_orientation(graph, res.colors, res.orientation, beta)
        out = max((sum(1 for e in res.orientation if e[0] == v) for v in range(graph.n)), default=0)
        table.add_row(
            beta, res.rounds, bounds.corollary12_4_rounds(eff, beta), res.num_colors,
            bounds.corollary12_4_colors(eff, beta), out,
        )
    table.add_note("The orientation of monochromatic edges always has outdegree <= beta (hard invariant).")
    return table


# --------------------------------------------------------------------------- #
# E5 — Corollary 1.2 (5)+(6): defective colorings
# --------------------------------------------------------------------------- #


def run_e5(
    n: int = 300, delta: int = 16, epsilons: tuple[float, ...] = (0.25, 0.5, 0.75), seed: int = 5
) -> Table:
    graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
    eff = max(1, graph.max_degree)
    table = Table(
        f"E5 — Corollary 1.2(5)/(6): d-defective O((Delta/d)^2)-colorings (Delta={eff})",
        ["variant", "d", "rounds", "colors used", "color bound O((Delta/d)^2)", "max defect"],
    )
    for eps in epsilons:
        d = max(1, min(eff - 1, int(round(eff ** eps))))
        one = corollaries.defective_coloring_one_round(graph, colors, m, d=d, vectorized=True)
        table.add_row(
            "one round (5)", d, one.rounds, one.num_colors,
            bounds.corollary12_5_colors(eff, d), max_defect(graph, one.colors),
        )
        multi = corollaries.defective_coloring(graph, colors, m, d=d, vectorized=True)
        table.add_row(
            "multi round (6)", d, multi.rounds, multi.num_colors,
            bounds.corollary12_5_colors(eff, d), max_defect(graph, multi.colors),
        )
    table.add_note("max defect <= d in every row (hard invariant).")
    return table


# --------------------------------------------------------------------------- #
# E6 — the (Delta+1)-coloring pipeline
# --------------------------------------------------------------------------- #


def run_e6(sizes: tuple[int, ...] = (100, 400, 1000), delta: int = 12, seed: int = 6) -> Table:
    table = Table(
        "E6 — (Delta+1)-coloring pipeline: IDs -> Linial -> k=1 mother -> class removal",
        ["n", "Delta", "linial rounds", "mother rounds", "reduce rounds", "total rounds",
         "colors used", "Delta+1"],
    )
    for n in sizes:
        graph = generators.random_regular(n + ((n * delta) % 2), delta, seed=seed)
        eff = max(1, graph.max_degree)
        res = pipelines.delta_plus_one_coloring(graph, seed=seed, vectorized=True)
        assert_proper_coloring(graph, res.colors, max_colors=eff + 1)
        meta = res.metadata
        table.add_row(
            graph.n, eff, meta["linial_rounds"], meta["mother_rounds"],
            meta["reduction_rounds"], res.rounds, res.num_colors, eff + 1,
        )
    table.add_note("Total rounds grow linearly in Delta and only additively (log* n) in n.")
    return table


# --------------------------------------------------------------------------- #
# E7 — Theorem 1.3: O(Delta^{1+eps}) colors
# --------------------------------------------------------------------------- #


def run_e7(
    n: int = 300, deltas: tuple[int, ...] = (8, 16, 32), epsilon: float = 0.5, seed: int = 7
) -> Table:
    table = Table(
        f"E7 — Theorem 1.3: O(Delta^(1+eps))-coloring (eps={epsilon})",
        ["Delta", "rounds (measured)", "paper rounds O(Delta^(1/2-eps/2))",
         "substituted bound O(Delta^eps + Delta^(1-eps))", "colors used", "color bound Delta^(1+eps)"],
    )
    for delta in deltas:
        graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
        eff = max(1, graph.max_degree)
        res = pipelines.theorem13_coloring(graph, colors, m, epsilon=epsilon, vectorized=True)
        assert_proper_coloring(graph, res.colors)
        substituted = eff ** epsilon + eff ** (1 - epsilon)
        table.add_row(
            eff, res.rounds, bounds.theorem13_rounds(eff, epsilon), substituted,
            res.num_colors, bounds.theorem13_colors(eff, epsilon),
        )
    table.add_note(
        "The Theorem 3.1 black box ([Bar16, BEG18]) is substituted by the k=1 mother algorithm; "
        "measured rounds follow the substituted bound, colors follow the paper bound (see DESIGN.md)."
    )
    return table


# --------------------------------------------------------------------------- #
# E8 — Theorem 1.5: (2, r)-ruling sets vs the SEW13 baseline
# --------------------------------------------------------------------------- #


def run_e8(
    n: int = 300, delta: int = 16, rs: tuple[int, ...] = (2, 3), seed: int = 8
) -> Table:
    graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
    eff = max(1, graph.max_degree)
    table = Table(
        f"E8 — Theorem 1.5: (2,r)-ruling sets (Delta={eff})",
        ["r", "method", "rounds", "ruling rounds only", "paper bound", "set size"],
    )
    for r in rs:
        ours = ruling_sets.ruling_set_theorem15(graph, colors, m, r=r, vectorized=True)
        assert_ruling_set(graph, ours.vertices, r=max(r, ours.r))
        base = ruling_sets.ruling_set_sew13_baseline(graph, colors, m, r=r, vectorized=True)
        assert_ruling_set(graph, base.vertices, r=max(r, base.r))
        table.add_row(
            r, "Theorem 1.5", ours.rounds, ours.metadata["ruling_rounds"],
            bounds.theorem15_rounds(eff, r), ours.size,
        )
        table.add_row(
            r, "SEW13 baseline", base.rounds, base.metadata["ruling_rounds"],
            bounds.sew13_ruling_rounds(eff, r), base.size,
        )
    table.add_note(
        "The ruling-phase rounds follow Lemma 3.2 exactly; the end-to-end advantage of Theorem 1.5 "
        "depends on the Theorem 3.1 black box we substitute (see DESIGN.md)."
    )
    return table


# --------------------------------------------------------------------------- #
# E9 — Theorem 1.6: one-round color reduction, tightness
# --------------------------------------------------------------------------- #


def run_e9(n: int = 200, deltas: tuple[int, ...] = (4, 6, 8), seed: int = 9) -> Table:
    table = Table(
        "E9 — Theorem 1.6: one-round reduction of exactly k colors",
        ["Delta", "m = k(Delta-k+3)", "k (paper)", "rounds", "output colors space", "m - k",
         "proper"],
    )
    for delta in deltas:
        k = bounds.theorem16_max_reduction(delta * (delta + 3), delta)
        # Use the tight m for the largest k allowed by the theorem.
        k = min(delta - 1, (delta + 3) // 2)
        m = one_round.required_input_colors(delta, k)
        graph = generators.random_regular(n + ((n * delta) % 2), delta, seed=seed)
        colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
        res = one_round.one_round_color_reduction(graph, colors, m, k=k, delta=delta)
        proper = True
        try:
            assert_proper_coloring(graph, res.colors, max_colors=m - k)
        except AssertionError:
            proper = False
        table.add_row(delta, m, k, res.rounds, res.color_space_size, m - k, proper)
    table.add_note(
        "Lemma 4.3's matching impossibility (no one-round algorithm reaches m-k-1 colors when "
        "m = k(Delta-k+3)-1) is verified exhaustively for small Delta in the test suite."
    )
    return table


# --------------------------------------------------------------------------- #
# E10 — baseline comparison
# --------------------------------------------------------------------------- #


def run_e10(n: int = 300, delta: int = 16, seed: int = 10) -> Table:
    graph, colors, m = delta4_colored_graph("random_regular", n, delta, seed=seed)
    eff = max(1, graph.max_degree)
    table = Table(
        f"E10 — baselines vs the mother algorithm (Delta={eff}, n={graph.n})",
        ["algorithm", "rounds", "colors used", "color space"],
    )

    for k in (1, 4, 16):
        res = corollaries.kdelta_coloring(graph, colors, m, k=k, vectorized=True)
        table.add_row(f"mother algorithm (k={k})", res.rounds, res.num_colors, res.color_space_size)

    lin = linial_coloring(graph, seed=seed, vectorized=True)
    table.add_row("Linial from unique IDs", lin.rounds, lin.num_colors, lin.color_space_size)

    beg = baselines.locally_iterative_beg18(graph, colors, m, vectorized=True)
    table.add_row("locally-iterative (BEG18 regime) + reduce", beg.rounds, beg.num_colors,
                  beg.color_space_size)

    start = corollaries.delta_squared_coloring(graph, colors, m, vectorized=True)
    kw = kuhn_wattenhofer_reduction(graph, start.colors, start.color_space_size)
    table.add_row("Delta^2 + Kuhn-Wattenhofer halving", start.rounds + kw.rounds, kw.num_colors,
                  kw.color_space_size)

    luby = baselines.luby_randomized_coloring(graph, seed=seed)
    table.add_row("randomized (Luby-style, Delta+1 palette)", luby.rounds, luby.num_colors,
                  luby.color_space_size)

    greedy = baselines.greedy_sequential(graph)
    table.add_row("sequential greedy (centralized)", greedy.rounds, greedy.num_colors,
                  greedy.color_space_size)
    table.add_note("Deterministic Delta+1 in O(Delta) rounds vs O(Delta log Delta) for KW halving; "
                   "randomized Luby needs O(log n) rounds but is not deterministic.")
    return table


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
}


def run_experiment(name: str, **kwargs) -> Table:
    """Run one experiment by name (``"E1"`` .. ``"E10"``)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)
