"""The experiment suite E1-E10 (one per theorem / corollary item).

The paper has no empirical evaluation section; the reproduction's experiments
verify every stated bound empirically and compare against the baselines the
paper discusses.  Each ``run_eN`` function expresses its workload as a grid of
:class:`repro.engine.batch.GraphSpec` cells, drives them through a
:class:`repro.engine.batch.BatchRunner`, and returns a
:class:`repro.analysis.tables.Table` with one row per configuration, including
the paper's bound next to the measured quantity.

All experiments run on the ``"array"`` backend by default (the vectorized CSR
twin — identical outputs to the per-node reference simulator, property-tested
in ``tests/test_engine_parity.py``).  Pass ``backend="reference"`` to re-run
any experiment on the model-faithful scheduler, or ``parity_check=True`` to
have the runner re-execute every cell on the reference backend and insist on
identical results.

Sizes default to values that finish in seconds; the benchmark harness and the
``EXPERIMENTS.md`` generator call them with the same defaults so the recorded
tables are exactly reproducible.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.analysis import bounds
from repro.analysis.tables import Table
from repro.api.registry import ParamSpec, register_algorithm
from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.ids import delta4_input_coloring, random_proper_coloring
from repro.core import baselines, one_round
from repro.engine.base import Engine
from repro.engine.batch import BatchRunner, GraphSpec, Workload
from repro.verify.coloring import assert_proper_coloring

__all__ = [
    "EXPERIMENTS", "run_experiment", "delta4_colored_graph", "make_runner",
    "experiment_specs",
] + [f"run_e{i}" for i in range(1, 11)]


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #


def make_runner(
    backend: str | Engine = "array", parity_check: bool = False, workers: int = 1
) -> BatchRunner:
    """The BatchRunner every experiment drives its grid through.

    ``workers > 1`` shards every grid sweep (``runner.run``) across a process
    pool; the cell-by-cell parts of the experiments (data-dependent axes,
    single-cell comparisons) stay serial.  Records are identical either way.
    """
    return BatchRunner(backend=backend, parity_check=parity_check, workers=workers)


def degree_scaled_axis(eff_delta: int, epsilons: tuple[float, ...]) -> list[int]:
    """The ``Delta^eps``-derived parameter axis of E4/E5, clamped to ``[1, Delta-1]``.

    Shared by the experiments and by :func:`experiment_specs`, so the saved
    specs can never drift from what the experiments actually sweep.
    """
    return [max(1, min(eff_delta - 1, int(round(eff_delta ** eps)))) for eps in epsilons]


def theorem16_tight_km(delta: int) -> tuple[int, int]:
    """E9's tight pairing: the largest ``k`` Theorem 1.6 allows and its ``m``."""
    k = min(delta - 1, (delta + 3) // 2)
    return k, one_round.required_input_colors(delta, k)


def doubling_k_axis(runner: BatchRunner, spec: GraphSpec, eff_delta: int):
    """E2's data-dependent axis: yield ``(k, record)`` doubling ``k`` until the
    round count collapses to 1 (or the Linial regime ``k > 16*Delta``)."""
    k = 1
    while True:
        rec = runner.run_cell("kdelta", spec, params={"k": k})
        yield k, rec
        if rec["rounds"] <= 1:
            break
        k *= 2
        if k > 16 * eff_delta:
            break


def delta4_colored_graph(
    family: str, n: int, delta: int, seed: int = 0
) -> tuple[Graph, np.ndarray, int]:
    """A graph from the named family together with a ``Delta^4``-input coloring.

    This is the standing assumption of Corollary 1.2 ("on any Delta^4-input
    colored graph"); in practice the input coloring would come from Linial's
    algorithm, here it is manufactured directly so the corollary experiments
    are independent of the Linial experiment.  When the ``Delta^4`` space is
    large enough every vertex receives a *distinct* color (as with unique IDs);
    otherwise a greedy coloring is spread into the color space.

    (Kept as a public helper for the benchmark drivers; the experiments below
    obtain the same workload through :meth:`BatchRunner.workload`.  Both paths
    build the coloring with :func:`repro.congest.ids.delta4_input_coloring`,
    so the recorded tables are reproducible either way.)
    """
    graph = generators.by_name(family, n, delta, seed=seed)
    colors, m = delta4_input_coloring(graph, seed=seed)
    return graph, colors, m


# --------------------------------------------------------------------------- #
# E1 — Corollary 1.2 (1): Linial's one-round color reduction
# --------------------------------------------------------------------------- #


def run_e1(
    n: int = 300,
    deltas: tuple[int, ...] = (4, 8, 16),
    seed: int = 1,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    table = Table(
        "E1 — Corollary 1.2(1): one-round reduction of a Delta^4-coloring",
        ["family", "Delta", "n", "rounds", "colors used", "color space", "paper bound 256*Delta^2"],
    )
    cells = [
        GraphSpec(family, n, delta, seed)
        for family in ("random_regular", "gnp")
        for delta in deltas
    ]
    for rec in runner.run("linial_reduction", cells):
        table.add_row(
            rec["family"], rec["Delta"], rec["n"], rec["rounds"], rec["colors used"],
            rec["color space"], bounds.corollary12_1_colors(rec["Delta"]),
        )
    table.add_note("Every row must have rounds = 1 and color space <= 256*Delta^2.")
    return table


# --------------------------------------------------------------------------- #
# E2 — Corollary 1.2 (2): the k sweep (rounds vs colors trade-off)
# --------------------------------------------------------------------------- #


def run_e2(
    n: int = 400,
    delta: int = 16,
    family: str = "random_regular",
    seed: int = 2,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    spec = GraphSpec(family, n, delta, seed)
    eff = runner.workload(spec).eff_delta
    table = Table(
        f"E2 — Corollary 1.2(2): O(k*Delta) colors in O(Delta/k) rounds (Delta={eff})",
        ["k", "rounds", "round bound 16*Delta/k", "colors used", "color bound 16*Delta*k"],
    )
    # The k axis is data-dependent (doubled until the round count collapses to
    # 1), so the sweep goes cell by cell through the runner, which still shares
    # the one cached graph/coloring across every k.
    for k, rec in doubling_k_axis(runner, spec, eff):
        table.add_row(
            k, rec["rounds"], bounds.corollary12_2_rounds(eff, k), rec["colors used"],
            bounds.corollary12_2_colors(eff, k),
        )
    table.add_note("Rounds fall linearly in 1/k while the color budget grows linearly in k.")
    return table


# --------------------------------------------------------------------------- #
# E3 — Corollary 1.2 (3): Delta^2 colors in O(1) rounds
# --------------------------------------------------------------------------- #


def run_e3(
    n: int = 400,
    deltas: tuple[int, ...] = (8, 16, 32),
    seed: int = 3,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    table = Table(
        "E3 — Corollary 1.2(3): Delta^2 colors in O(1) rounds (k = ceil(Delta/16))",
        ["Delta", "rounds", "colors used", "color bound Delta^2"],
    )
    cells = [GraphSpec("random_regular", n, delta, seed) for delta in deltas]
    for rec in runner.run("delta_squared", cells):
        table.add_row(
            rec["Delta"], rec["rounds"], rec["colors used"],
            bounds.corollary12_3_colors(rec["Delta"]),
        )
    table.add_note("Rounds stay O(1) (at most 256 by the proof, tiny in practice) as Delta grows.")
    return table


# --------------------------------------------------------------------------- #
# E4 — Corollary 1.2 (4): beta-outdegree colorings
# --------------------------------------------------------------------------- #


def run_e4(
    n: int = 300,
    delta: int = 16,
    epsilons: tuple[float, ...] = (0.25, 0.5, 0.75),
    seed: int = 4,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    spec = GraphSpec("random_regular", n, delta, seed)
    eff = runner.workload(spec).eff_delta
    table = Table(
        f"E4 — Corollary 1.2(4): beta-outdegree O(Delta/beta)-colorings (Delta={eff})",
        ["beta", "rounds", "round bound O(Delta/beta)", "colors used", "color bound O(Delta/beta)",
         "max outdegree"],
    )
    betas = degree_scaled_axis(eff, epsilons)
    for rec in runner.run("outdegree", [spec], params_grid=[{"beta": b} for b in betas]):
        table.add_row(
            rec["beta"], rec["rounds"], bounds.corollary12_4_rounds(eff, rec["beta"]),
            rec["colors used"], bounds.corollary12_4_colors(eff, rec["beta"]),
            rec["max outdegree"],
        )
    table.add_note("The orientation of monochromatic edges always has outdegree <= beta (hard invariant).")
    return table


# --------------------------------------------------------------------------- #
# E5 — Corollary 1.2 (5)+(6): defective colorings
# --------------------------------------------------------------------------- #


def run_e5(
    n: int = 300,
    delta: int = 16,
    epsilons: tuple[float, ...] = (0.25, 0.5, 0.75),
    seed: int = 5,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    spec = GraphSpec("random_regular", n, delta, seed)
    eff = runner.workload(spec).eff_delta
    table = Table(
        f"E5 — Corollary 1.2(5)/(6): d-defective O((Delta/d)^2)-colorings (Delta={eff})",
        ["variant", "d", "rounds", "colors used", "color bound O((Delta/d)^2)", "max defect"],
    )
    for d in degree_scaled_axis(eff, epsilons):
        one = runner.run_cell("defective_one_round", spec, params={"d": d})
        table.add_row(
            "one round (5)", d, one["rounds"], one["colors used"],
            bounds.corollary12_5_colors(eff, d), one["max defect"],
        )
        multi = runner.run_cell("defective", spec, params={"d": d})
        table.add_row(
            "multi round (6)", d, multi["rounds"], multi["colors used"],
            bounds.corollary12_5_colors(eff, d), multi["max defect"],
        )
    table.add_note("max defect <= d in every row (hard invariant).")
    return table


# --------------------------------------------------------------------------- #
# E6 — the (Delta+1)-coloring pipeline
# --------------------------------------------------------------------------- #


def run_e6(
    sizes: tuple[int, ...] = (100, 400, 1000),
    delta: int = 12,
    seed: int = 6,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    table = Table(
        "E6 — (Delta+1)-coloring pipeline: IDs -> Linial -> k=1 mother -> class removal",
        ["n", "Delta", "linial rounds", "mother rounds", "reduce rounds", "total rounds",
         "colors used", "Delta+1"],
    )
    cells = [GraphSpec("random_regular", n, delta, seed) for n in sizes]
    for rec in runner.run("delta_plus_one", cells):
        table.add_row(
            rec["n"], rec["Delta"], rec["linial rounds"], rec["mother rounds"],
            rec["reduce rounds"], rec["rounds"], rec["colors used"], rec["Delta"] + 1,
        )
    table.add_note("Total rounds grow linearly in Delta and only additively (log* n) in n.")
    return table


# --------------------------------------------------------------------------- #
# E7 — Theorem 1.3: O(Delta^{1+eps}) colors
# --------------------------------------------------------------------------- #


def run_e7(
    n: int = 300,
    deltas: tuple[int, ...] = (8, 16, 32),
    epsilon: float = 0.5,
    seed: int = 7,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    table = Table(
        f"E7 — Theorem 1.3: O(Delta^(1+eps))-coloring (eps={epsilon})",
        ["Delta", "rounds (measured)", "paper rounds O(Delta^(1/2-eps/2))",
         "substituted bound O(Delta^eps + Delta^(1-eps))", "colors used", "color bound Delta^(1+eps)"],
    )
    cells = [GraphSpec("random_regular", n, delta, seed) for delta in deltas]
    for rec in runner.run("theorem13", cells, params_grid=[{"epsilon": epsilon}]):
        eff = rec["Delta"]
        substituted = eff ** epsilon + eff ** (1 - epsilon)
        table.add_row(
            eff, rec["rounds"], bounds.theorem13_rounds(eff, epsilon), substituted,
            rec["colors used"], bounds.theorem13_colors(eff, epsilon),
        )
    table.add_note(
        "The Theorem 3.1 black box ([Bar16, BEG18]) is substituted by the k=1 mother algorithm; "
        "measured rounds follow the substituted bound, colors follow the paper bound (see DESIGN.md)."
    )
    return table


# --------------------------------------------------------------------------- #
# E8 — Theorem 1.5: (2, r)-ruling sets vs the SEW13 baseline
# --------------------------------------------------------------------------- #


def run_e8(
    n: int = 300,
    delta: int = 16,
    rs: tuple[int, ...] = (2, 3),
    seed: int = 8,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    spec = GraphSpec("random_regular", n, delta, seed)
    eff = runner.workload(spec).eff_delta
    table = Table(
        f"E8 — Theorem 1.5: (2,r)-ruling sets (Delta={eff})",
        ["r", "method", "rounds", "ruling rounds only", "paper bound", "set size"],
    )
    for r in rs:
        ours = runner.run_cell("ruling_set", spec, params={"r": r})
        table.add_row(
            r, "Theorem 1.5", ours["rounds"], ours["ruling rounds only"],
            bounds.theorem15_rounds(eff, r), ours["set size"],
        )
        base = runner.run_cell("ruling_set", spec, params={"r": r, "baseline": True})
        table.add_row(
            r, "SEW13 baseline", base["rounds"], base["ruling rounds only"],
            bounds.sew13_ruling_rounds(eff, r), base["set size"],
        )
    table.add_note(
        "The ruling-phase rounds follow Lemma 3.2 exactly; the end-to-end advantage of Theorem 1.5 "
        "depends on the Theorem 3.1 black box we substitute (see DESIGN.md)."
    )
    return table


# --------------------------------------------------------------------------- #
# E9 — Theorem 1.6: one-round color reduction, tightness
# --------------------------------------------------------------------------- #


@register_algorithm(
    "one_round_tightness",
    summary="Theorem 1.6: one-round reduction of exactly k colors from a tight m-coloring",
    guarantee="proper m-k coloring in exactly 1 round when m = k(Delta-k+3)",
    source="Theorem 1.6 / Lemma 4.1",
    params=[
        ParamSpec("k", int, minimum=1, help="number of colors removed in the one round"),
        ParamSpec("m", int, minimum=1,
                  help="input color-space size (tight at k(Delta-k+3))"),
    ],
)
def _task_one_round_tightness(w: Workload, engine: Engine, k: int, m: int) -> Mapping[str, Any]:
    """Bespoke E9 task: Theorem 1.6 needs its own tight input coloring, not Delta^4."""
    delta = w.spec.delta
    colors, m = random_proper_coloring(w.graph, num_colors=m, seed=w.spec.seed)
    res = one_round.one_round_color_reduction(w.graph, colors, m, k=k, delta=delta)
    proper = True
    try:
        assert_proper_coloring(w.graph, res.colors, max_colors=m - k)
    except AssertionError:
        proper = False
    return {
        "rounds": int(res.rounds),
        "m": int(m),
        "k": int(k),
        "output colors space": int(res.color_space_size),
        "m - k": int(m - k),
        "proper": proper,
        "_colors": res.colors,
    }


def run_e9(
    n: int = 200,
    deltas: tuple[int, ...] = (4, 6, 8),
    seed: int = 9,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    table = Table(
        "E9 — Theorem 1.6: one-round reduction of exactly k colors",
        ["Delta", "m = k(Delta-k+3)", "k (paper)", "rounds", "output colors space", "m - k",
         "proper"],
    )
    for delta in deltas:
        # Use the tight m for the largest k allowed by the theorem.
        k, m = theorem16_tight_km(delta)
        spec = GraphSpec("random_regular", n, delta, seed)
        rec = runner.run_cell("one_round_tightness", spec, params={"k": k, "m": m})
        table.add_row(
            delta, rec["m"], rec["k"], rec["rounds"], rec["output colors space"],
            rec["m - k"], rec["proper"],
        )
    table.add_note(
        "Lemma 4.3's matching impossibility (no one-round algorithm reaches m-k-1 colors when "
        "m = k(Delta-k+3)-1) is verified exhaustively for small Delta in the test suite."
    )
    return table


# --------------------------------------------------------------------------- #
# E10 — baseline comparison
# --------------------------------------------------------------------------- #


@register_algorithm(
    "baseline",
    summary="one contender of the E10 baseline comparison",
    guarantee="proper coloring (contender-specific color/round bounds; "
              "'luby' is randomized, 'greedy' is centralized)",
    source="E10 / Section 1 baselines",
    params=[
        ParamSpec("algorithm", str,
                  choices=("mother", "linial", "beg18", "kw_halving", "luby", "greedy"),
                  help="which contender to run"),
        ParamSpec("k", int, default=1, minimum=1,
                  help="batch size for the 'mother' contender"),
    ],
)
def _task_e10_baselines(w: Workload, engine: Engine, algorithm: str, k: int = 1) -> Mapping[str, Any]:
    """One row of the E10 comparison; ``algorithm`` picks the contender."""
    from repro.core import corollaries
    from repro.core.linial import linial_coloring

    if algorithm == "mother":
        res = corollaries.kdelta_coloring(w.graph, w.input_colors, w.m, k=k, backend=engine)
    elif algorithm == "linial":
        res = linial_coloring(w.graph, seed=w.spec.seed, backend=engine)
    elif algorithm == "beg18":
        res = baselines.locally_iterative_beg18(w.graph, w.input_colors, w.m, backend=engine)
    elif algorithm == "kw_halving":
        start = corollaries.delta_squared_coloring(w.graph, w.input_colors, w.m, backend=engine)
        kw = engine.kuhn_wattenhofer(w.graph, start.colors, start.color_space_size)
        return {
            "rounds": int(start.rounds + kw.rounds),
            "colors used": int(kw.num_colors),
            "color space": int(kw.color_space_size),
            "_colors": kw.colors,
        }
    elif algorithm == "luby":
        res = baselines.luby_randomized_coloring(w.graph, seed=w.spec.seed)
    elif algorithm == "greedy":
        res = baselines.greedy_sequential(w.graph)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown E10 algorithm {algorithm!r}")
    return {
        "rounds": int(res.rounds),
        "colors used": int(res.num_colors),
        "color space": int(res.color_space_size),
        "_colors": res.colors,
    }


def run_e10(
    n: int = 300,
    delta: int = 16,
    seed: int = 10,
    backend: str | Engine = "array",
    parity_check: bool = False,
    workers: int = 1,
) -> Table:
    runner = make_runner(backend, parity_check, workers)
    spec = GraphSpec("random_regular", n, delta, seed)
    workload = runner.workload(spec)
    table = Table(
        f"E10 — baselines vs the mother algorithm (Delta={workload.eff_delta}, n={workload.graph.n})",
        ["algorithm", "rounds", "colors used", "color space"],
    )
    rows: list[tuple[str, dict[str, Any]]] = [
        *[(f"mother algorithm (k={k})", {"algorithm": "mother", "k": k}) for k in (1, 4, 16)],
        ("Linial from unique IDs", {"algorithm": "linial"}),
        ("locally-iterative (BEG18 regime) + reduce", {"algorithm": "beg18"}),
        ("Delta^2 + Kuhn-Wattenhofer halving", {"algorithm": "kw_halving"}),
        ("randomized (Luby-style, Delta+1 palette)", {"algorithm": "luby"}),
        ("sequential greedy (centralized)", {"algorithm": "greedy"}),
    ]
    for label, params in rows:
        rec = runner.run_cell("baseline", spec, params=params)
        table.add_row(label, rec["rounds"], rec["colors used"], rec["color space"])
    table.add_note("Deterministic Delta+1 in O(Delta) rounds vs O(Delta log Delta) for KW halving; "
                   "randomized Luby needs O(log n) rounds but is not deterministic.")
    return table


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
}


def run_experiment(name: str, **kwargs) -> Table:
    """Run one experiment by name (``"E1"`` .. ``"E10"``)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)


# --------------------------------------------------------------------------- #
# E1-E10 as saved declarative specs
# --------------------------------------------------------------------------- #


def experiment_specs() -> "dict[str, JobSpec]":
    """Every experiment's sweep, re-expressed as a declarative :class:`JobSpec`.

    These are the documents ``scripts/generate_experiment_specs.py`` saves to
    ``specs/`` and ``repro run --spec`` replays; replaying one produces the
    exact records the corresponding ``run_eN`` function sweeps (the bound
    columns of the rendered tables are derived, not measured).

    Data-dependent axes are *frozen into the spec* at generation time, the
    declarative analogue of what the experiment computes on the fly:

    * E2's ``k`` axis doubles until the round count collapses to 1 — the spec
      records the ks that doubling visits (discovered with a quick array-
      backend run here);
    * E4/E5's ``beta`` / ``d`` axes and E9's tight ``(k, m)`` pairs depend
      only on the cell's effective Delta, computed the same way the
      experiment computes them;
    * E5 (two algorithm variants) and E9 (per-Delta parameter pairing) expand
      into one spec per variant / Delta, since a spec names exactly one
      algorithm and sweeps a pure (cells x params) grid.
    """
    from repro.api.spec import JobSpec, Problem, Run

    def job(algorithm: str, cells: list[GraphSpec], grid=None, params=None) -> JobSpec:
        return JobSpec(
            run=Run(algorithm=algorithm, params=params or {}, backend="array"),
            problems=tuple(Problem(graph=cell) for cell in cells),
            params_grid=None if grid is None else tuple(grid),
        )

    runner = make_runner("array")
    specs: dict[str, JobSpec] = {}

    # E1 — Corollary 1.2(1): one-round reduction over two families.
    specs["E1"] = job("linial_reduction", [
        GraphSpec(family, 300, delta, 1)
        for family in ("random_regular", "gnp") for delta in (4, 8, 16)
    ])

    # E2 — the k sweep; freeze the data-dependent doubling axis (the same
    # discovery loop run_e2 drives, via the shared helper).
    e2_cell = GraphSpec("random_regular", 400, 16, 2)
    eff = runner.workload(e2_cell).eff_delta
    ks = [k for k, _ in doubling_k_axis(runner, e2_cell, eff)]
    specs["E2"] = job("kdelta", [e2_cell], grid=[{"k": k} for k in ks])

    # E3 — Delta^2 colors in O(1) rounds.
    specs["E3"] = job("delta_squared",
                      [GraphSpec("random_regular", 400, delta, 3) for delta in (8, 16, 32)])

    # E4 — beta-outdegree colorings; betas derived from the effective Delta
    # with the same shared helper run_e4 uses.
    e4_cell = GraphSpec("random_regular", 300, 16, 4)
    betas = degree_scaled_axis(runner.workload(e4_cell).eff_delta, (0.25, 0.5, 0.75))
    specs["E4"] = job("outdegree", [e4_cell], grid=[{"beta": b} for b in betas])

    # E5 — defective colorings, one spec per variant.
    e5_cell = GraphSpec("random_regular", 300, 16, 5)
    ds = degree_scaled_axis(runner.workload(e5_cell).eff_delta, (0.25, 0.5, 0.75))
    specs["E5_one_round"] = job("defective_one_round", [e5_cell], grid=[{"d": d} for d in ds])
    specs["E5_multi_round"] = job("defective", [e5_cell], grid=[{"d": d} for d in ds])

    # E6 — the (Delta+1) pipeline over growing n.
    specs["E6"] = job("delta_plus_one",
                      [GraphSpec("random_regular", n, 12, 6) for n in (100, 400, 1000)])

    # E7 — Theorem 1.3 over growing Delta.
    specs["E7"] = job("theorem13",
                      [GraphSpec("random_regular", 300, delta, 7) for delta in (8, 16, 32)],
                      params={"epsilon": 0.5})

    # E8 — ruling sets: Theorem 1.5 vs the SEW13 baseline, per radius.
    e8_cell = GraphSpec("random_regular", 300, 16, 8)
    specs["E8"] = job("ruling_set", [e8_cell], grid=[
        {"r": r, **({"baseline": True} if baseline else {})}
        for r in (2, 3) for baseline in (False, True)
    ])

    # E9 — Theorem 1.6 tightness; (k, m) is paired per Delta (the shared
    # helper run_e9 uses), one spec each.
    for delta in (4, 6, 8):
        k, m = theorem16_tight_km(delta)
        specs[f"E9_delta{delta}"] = job(
            "one_round_tightness", [GraphSpec("random_regular", 200, delta, 9)],
            params={"k": k, "m": m},
        )

    # E10 — the baseline comparison as a params grid over contenders.
    e10_cell = GraphSpec("random_regular", 300, 16, 10)
    specs["E10"] = job("baseline", [e10_cell], grid=[
        {"algorithm": "mother", "k": 1},
        {"algorithm": "mother", "k": 4},
        {"algorithm": "mother", "k": 16},
        {"algorithm": "linial"},
        {"algorithm": "beg18"},
        {"algorithm": "kw_halving"},
        {"algorithm": "luby"},
        {"algorithm": "greedy"},
    ])
    return specs
