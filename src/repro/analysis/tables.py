"""Plain-text tables for the experiment harness.

Each experiment returns a :class:`Table`; benchmarks print it, and the same
rendering is pasted into EXPERIMENTS.md, so the recorded numbers are exactly
what the harness produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} entries, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Render as a GitHub-flavoured markdown table with the title as a header."""
        cells = [[_fmt(x) for x in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "| " + " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)) + " |"
        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |" for row in cells
        ]
        lines = [f"### {self.title}", "", header, sep, *body]
        if self.notes:
            lines.append("")
            lines.extend(f"- {note}" for note in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
