"""Experiment harness: closed-form bounds, parameter sweeps and table rendering.

The paper contains no empirical tables or figures (it is a theory paper), so
the reproduction's "tables" are the theorem-by-theorem experiments E1-E10
defined in :mod:`repro.analysis.experiments`; each returns a
:class:`repro.analysis.tables.Table` that the benchmarks print and that
EXPERIMENTS.md records.
"""

from repro.analysis import bounds
from repro.analysis.tables import Table
from repro.analysis.experiments import EXPERIMENTS, run_experiment

__all__ = ["bounds", "Table", "EXPERIMENTS", "run_experiment"]
