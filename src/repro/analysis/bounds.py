"""Closed-form bounds from the paper's theorems.

These functions state — as executable formulas — what each theorem predicts,
so the experiments can print "paper bound vs measured" side by side and the
tests can assert the measured quantity never exceeds the bound.
"""

from __future__ import annotations

import math

__all__ = [
    "log_star",
    "corollary12_1_colors",
    "corollary12_2_colors",
    "corollary12_2_rounds",
    "corollary12_3_colors",
    "corollary12_4_colors",
    "corollary12_4_rounds",
    "corollary12_5_colors",
    "corollary12_6_rounds",
    "theorem11_round_bound",
    "theorem13_colors",
    "theorem13_rounds",
    "theorem15_rounds",
    "theorem16_max_reduction",
    "sew13_ruling_rounds",
]


def log_star(n: float) -> int:
    """The iterated logarithm ``log* n`` (base 2)."""
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


# --- Corollary 1.2 (all for a Delta^4-input coloring) ----------------------- #


def corollary12_1_colors(delta: int) -> int:
    """(1): Linial's one-round reduction uses at most ``256 Delta^2`` colors."""
    return 256 * delta * delta


def corollary12_2_colors(delta: int, k: int) -> int:
    """(2): the ``k``-batch algorithm uses at most ``16 Delta k`` colors."""
    return 16 * delta * k


def corollary12_2_rounds(delta: int, k: int) -> int:
    """(2): the ``k``-batch algorithm runs for at most ``ceil(16 Delta / k)`` rounds."""
    return math.ceil(16 * delta / k)


def corollary12_3_colors(delta: int) -> int:
    """(3): ``Delta^2`` colors with ``k = ceil(Delta / 16)``."""
    return delta * delta


def corollary12_4_colors(delta: int, beta: int) -> float:
    """(4): a ``beta``-outdegree coloring with ``O(Delta / beta)`` colors.

    The constant follows Theorem 1.1: at most ``X = 4 * Z * ceil(log_Z m)``
    colors with ``Z = Delta / (beta + 1)`` and ``m = Delta^4``; for
    ``beta = Delta^eps`` the log factor is at most ``4 / (1 - eps)``.
    """
    z = delta / (beta + 1)
    if z <= 1:
        return float(delta * delta)
    f = math.ceil(math.log(delta ** 4) / math.log(max(z, 2.0)))
    return 4.0 * z * f


def corollary12_4_rounds(delta: int, beta: int) -> float:
    """(4): round bound of the ``beta``-outdegree coloring (same ``X`` as the colors)."""
    return corollary12_4_colors(delta, beta)


def corollary12_5_colors(delta: int, d: int) -> float:
    """(5)/(6): a ``d``-defective coloring with ``O((Delta/d)^2)`` colors.

    Concretely at most ``X^2 * (R + 1)`` with ``X = 4 Z ceil(log_Z m)``; for the
    experiments we report the dominant ``(4 f Delta / d)^2`` term.
    """
    z = delta / (d + 1)
    f = math.ceil(math.log(delta ** 4) / math.log(max(z, 2.0)))
    return (4.0 * z * f) ** 2


def corollary12_6_rounds(delta: int, d: int) -> float:
    """(6): round bound ``X = O(Delta / d)`` of the multi-round defective coloring."""
    z = delta / (d + 1)
    f = math.ceil(math.log(delta ** 4) / math.log(max(z, 2.0)))
    return 4.0 * z * f


# --- Theorem 1.1 ------------------------------------------------------------ #


def theorem11_round_bound(m: int, delta: int, d: int, k: int) -> int:
    """``R = ceil(X / k)`` with ``X = 4 Z ceil(log_Z m)`` and ``Z = Delta/(d+1)``."""
    z = delta / (d + 1)
    f = max(1, math.ceil(math.log(max(m, 2)) / math.log(max(z, 2.0))))
    x = 4.0 * z * f
    return math.ceil(x / k)


# --- Theorems 1.3 / 1.5 / 1.6 ----------------------------------------------- #


def theorem13_colors(delta: int, epsilon: float) -> float:
    """Theorem 1.3 color bound ``O(Delta^{1+eps})`` (reported without the constant)."""
    return float(delta ** (1.0 + epsilon))


def theorem13_rounds(delta: int, epsilon: float, n: int | None = None) -> float:
    """Theorem 1.3 round bound ``O(Delta^{1/2 - eps/2}) (+ log* n)``."""
    extra = log_star(n) if n is not None else 0
    return float(delta ** (0.5 - epsilon / 2.0)) + extra


def theorem15_rounds(delta: int, r: int, n: int | None = None) -> float:
    """Theorem 1.5 round bound ``O(Delta^{2/(r+2)}) (+ log* n)``."""
    extra = log_star(n) if n is not None else 0
    return float(delta ** (2.0 / (r + 2))) + extra


def sew13_ruling_rounds(delta: int, r: int, n: int | None = None) -> float:
    """The previous bound ``O(Delta^{2/r}) (+ log* n)`` of [SEW13]."""
    extra = log_star(n) if n is not None else 0
    return float(delta ** (2.0 / r)) + extra


def theorem16_max_reduction(m: int, delta: int) -> int:
    """Theorem 1.6: the exact number of colors a one-round algorithm can remove."""
    upper = min(delta - 1, (delta + 3) // 2)
    best = 0
    for k in range(1, max(0, upper) + 1):
        if m >= k * (delta - k + 3):
            best = k
    return best
