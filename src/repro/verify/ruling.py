"""Verification of ``(alpha, r)``-ruling sets.

A ``(2, r)``-ruling set is an independent set ``S`` such that every vertex has
a vertex of ``S`` within hop distance ``r``.  More generally an
``(alpha, r)``-ruling set requires ``S`` to be independent in the power graph
``G^(alpha - 1)``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.congest.graph import Graph
from repro.verify.coloring import VerificationError

__all__ = ["is_independent_set", "domination_radius", "assert_ruling_set"]


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """True iff no two vertices of the set are adjacent."""
    chosen = set(int(v) for v in vertices)
    for v in chosen:
        for u in graph.neighbors(v):
            if int(u) in chosen:
                return False
    return True


def domination_radius(graph: Graph, vertices: Iterable[int]) -> int:
    """Smallest ``r`` such that every vertex is within distance ``r`` of the set.

    Returns ``-1`` if some vertex cannot reach the set at all (or the set is
    empty while the graph is not).
    """
    chosen = sorted(set(int(v) for v in vertices))
    if graph.n == 0:
        return 0
    if not chosen:
        return -1
    # Multi-source BFS from the whole set.
    dist = -np.ones(graph.n, dtype=np.int64)
    frontier = list(chosen)
    for v in frontier:
        dist[v] = 0
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for w in graph.neighbors(u):
                if dist[w] < 0:
                    dist[w] = level
                    nxt.append(int(w))
        frontier = nxt
    if np.any(dist < 0):
        return -1
    return int(dist.max())


def assert_ruling_set(
    graph: Graph,
    vertices: Iterable[int],
    r: int,
    alpha: int = 2,
) -> None:
    """Check that ``vertices`` is an ``(alpha, r)``-ruling set.

    Raises
    ------
    VerificationError
        If the set is not independent in ``G^(alpha - 1)`` or some vertex is
        farther than ``r`` hops from the set.
    """
    chosen = sorted(set(int(v) for v in vertices))
    for v in chosen:
        if not (0 <= v < graph.n):
            raise VerificationError(f"ruling-set vertex {v} out of range")
    base = graph if alpha == 2 else graph.power_graph(alpha - 1)
    if not is_independent_set(base, chosen):
        raise VerificationError(
            f"set is not independent in G^{alpha - 1}"
        )
    radius = domination_radius(graph, chosen)
    if radius < 0 or radius > r:
        raise VerificationError(
            f"set does not dominate the graph within distance {r} "
            f"(measured radius: {radius})"
        )
