"""Verification of the color-class partition of Theorem 1.1 (point 2).

Theorem 1.1 guarantees that each color class can be partitioned into
``R = ceil(X / k)`` induced subgraphs ``P_1, ..., P_R`` of maximum degree at
most ``d``; in the algorithm, ``P_j`` is the set of vertices that got colored
in iteration ``j``.  A partition is represented as an integer array
``parts[v] in {1, ..., R}``.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.verify.coloring import VerificationError, _as_colors

__all__ = ["partition_classes", "assert_partition_degree_bound"]


def partition_classes(parts: np.ndarray) -> dict[int, np.ndarray]:
    """Mapping ``part index -> vertices`` of that part."""
    parts = np.asarray(parts, dtype=np.int64)
    out: dict[int, list[int]] = {}
    for v, p in enumerate(parts.tolist()):
        out.setdefault(int(p), []).append(v)
    return {p: np.array(vs, dtype=np.int64) for p, vs in out.items()}


def assert_partition_degree_bound(
    graph: Graph,
    colors,
    parts: np.ndarray,
    d: int,
    max_parts: int | None = None,
) -> None:
    """Check point (2) of Theorem 1.1.

    For every pair (color class, part), the graph induced by the vertices with
    that color *and* that part index must have maximum degree at most ``d``.

    Raises
    ------
    VerificationError
        If some (color, part) induced subgraph has a vertex with more than
        ``d`` same-color same-part neighbors, or the number of distinct parts
        exceeds ``max_parts``.
    """
    arr = _as_colors(graph, colors)
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.n,):
        raise VerificationError(
            f"partition has shape {parts.shape}, expected ({graph.n},)"
        )
    if max_parts is not None and graph.n:
        used = int(np.unique(parts).size)
        if used > max_parts:
            raise VerificationError(
                f"partition uses {used} parts, allowed at most {max_parts}"
            )
    edges = graph.edge_array()
    if edges.size == 0:
        return
    same_color = arr[edges[:, 0]] == arr[edges[:, 1]]
    same_part = parts[edges[:, 0]] == parts[edges[:, 1]]
    both = edges[same_color & same_part]
    if both.size == 0:
        return
    degree_within = np.zeros(graph.n, dtype=np.int64)
    np.add.at(degree_within, both[:, 0], 1)
    np.add.at(degree_within, both[:, 1], 1)
    if int(degree_within.max()) > d:
        v = int(np.argmax(degree_within))
        raise VerificationError(
            f"vertex {v} has {int(degree_within[v])} same-color same-part neighbors, "
            f"exceeding the allowed degree {d}"
        )
