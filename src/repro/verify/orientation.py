"""Verification of low-outdegree orientations of monochromatic edges.

A ``beta``-outdegree ``c``-coloring (Section 1.1) is a coloring with ``c``
colors together with an orientation of the *monochromatic* edges such that
every vertex has at most ``beta`` outgoing edges.  The orientation is given as
a set of ordered pairs ``(u, v)`` meaning the edge ``{u, v}`` is oriented
``u -> v``.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.verify.coloring import VerificationError, _as_colors

__all__ = [
    "monochromatic_edges",
    "orientation_outdegrees",
    "assert_outdegree_orientation",
]


def monochromatic_edges(graph: Graph, colors) -> np.ndarray:
    """All edges ``(u, v)`` (``u < v``) whose endpoints share a color."""
    arr = _as_colors(graph, colors)
    edges = graph.edge_array()
    if edges.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    same = arr[edges[:, 0]] == arr[edges[:, 1]]
    return edges[same]


def orientation_outdegrees(graph: Graph, orientation: set[tuple[int, int]]) -> np.ndarray:
    """Outdegree of every vertex under the given orientation."""
    out = np.zeros(graph.n, dtype=np.int64)
    for u, v in orientation:
        if not graph.has_edge(int(u), int(v)):
            raise VerificationError(f"orientation contains non-edge ({u}, {v})")
        out[int(u)] += 1
    return out


def assert_outdegree_orientation(
    graph: Graph,
    colors,
    orientation: set[tuple[int, int]],
    beta: int,
) -> None:
    """Check that ``orientation`` orients every monochromatic edge exactly once
    with outdegree at most ``beta`` per vertex.

    Raises
    ------
    VerificationError
        If a monochromatic edge is unoriented / doubly oriented, if the
        orientation contains a non-monochromatic or non-existent edge, or if
        some vertex has outdegree exceeding ``beta``.
    """
    arr = _as_colors(graph, colors)
    oriented = {}
    for u, v in orientation:
        u, v = int(u), int(v)
        if not graph.has_edge(u, v):
            raise VerificationError(f"orientation contains non-edge ({u}, {v})")
        key = (min(u, v), max(u, v))
        if key in oriented:
            raise VerificationError(f"edge {key} oriented twice")
        if arr[u] != arr[v]:
            raise VerificationError(
                f"orientation contains edge ({u}, {v}) whose endpoints have different colors"
            )
        oriented[key] = (u, v)

    mono = monochromatic_edges(graph, arr)
    for u, v in map(tuple, mono.tolist()):
        if (u, v) not in oriented:
            raise VerificationError(f"monochromatic edge ({u}, {v}) is not oriented")

    out = orientation_outdegrees(graph, orientation)
    if out.size and int(out.max()) > beta:
        v = int(np.argmax(out))
        raise VerificationError(
            f"vertex {v} has outdegree {int(out[v])}, exceeding the bound beta={beta}"
        )
