"""Validation of the structures the paper's theorems guarantee.

Theorem 1.1 guarantees, beyond the color count and round bound, that

1. every monochromatic edge can be oriented with outdegree at most ``d``,
2. every color class partitions into ``R`` induced subgraphs of degree at most
   ``d``,

and the derived results guarantee proper colorings, ``d``-defective colorings,
``beta``-outdegree colorings and ``(2, r)``-ruling sets.  This subpackage
checks each of those properties directly on the graph, independently of how
the structure was computed.
"""

from repro.verify.coloring import (
    is_proper_coloring,
    assert_proper_coloring,
    count_colors,
    defect_vector,
    max_defect,
    assert_defective_coloring,
    color_classes,
)
from repro.verify.orientation import (
    orientation_outdegrees,
    assert_outdegree_orientation,
    monochromatic_edges,
)
from repro.verify.partition import assert_partition_degree_bound, partition_classes
from repro.verify.ruling import (
    is_independent_set,
    domination_radius,
    assert_ruling_set,
)

__all__ = [
    "is_proper_coloring",
    "assert_proper_coloring",
    "count_colors",
    "defect_vector",
    "max_defect",
    "assert_defective_coloring",
    "color_classes",
    "orientation_outdegrees",
    "assert_outdegree_orientation",
    "monochromatic_edges",
    "assert_partition_degree_bound",
    "partition_classes",
    "is_independent_set",
    "domination_radius",
    "assert_ruling_set",
]
