"""Proper and defective coloring verification."""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph

__all__ = [
    "VerificationError",
    "is_proper_coloring",
    "assert_proper_coloring",
    "count_colors",
    "color_classes",
    "defect_vector",
    "max_defect",
    "assert_defective_coloring",
]


class VerificationError(AssertionError):
    """Raised when a claimed structural property does not hold."""


def _as_colors(graph: Graph, colors) -> np.ndarray:
    arr = np.asarray(colors)
    if arr.shape != (graph.n,):
        raise VerificationError(
            f"coloring has shape {arr.shape}, expected ({graph.n},)"
        )
    return arr


def is_proper_coloring(graph: Graph, colors) -> bool:
    """True iff no edge is monochromatic."""
    arr = _as_colors(graph, colors)
    edges = graph.edge_array()
    if edges.size == 0:
        return True
    return not bool(np.any(arr[edges[:, 0]] == arr[edges[:, 1]]))


def assert_proper_coloring(graph: Graph, colors, max_colors: int | None = None) -> None:
    """Raise :class:`VerificationError` unless ``colors`` is proper (and within ``max_colors``)."""
    arr = _as_colors(graph, colors)
    edges = graph.edge_array()
    if edges.size:
        same = arr[edges[:, 0]] == arr[edges[:, 1]]
        if np.any(same):
            u, v = edges[np.argmax(same)]
            raise VerificationError(
                f"edge ({int(u)}, {int(v)}) is monochromatic with color {arr[u]!r}"
            )
    if max_colors is not None and count_colors(graph, arr) > max_colors:
        raise VerificationError(
            f"coloring uses {count_colors(graph, arr)} colors, allowed at most {max_colors}"
        )


def count_colors(graph: Graph, colors) -> int:
    """Number of distinct colors used."""
    arr = _as_colors(graph, colors)
    if arr.size == 0:
        return 0
    if arr.dtype == object:
        return len(set(arr.tolist()))
    return int(np.unique(arr).size)


def color_classes(graph: Graph, colors) -> dict:
    """Mapping ``color -> sorted array of vertices`` of that color."""
    arr = _as_colors(graph, colors)
    classes: dict = {}
    for v in range(graph.n):
        key = arr[v] if arr.dtype == object else int(arr[v])
        classes.setdefault(key, []).append(v)
    return {c: np.array(vs, dtype=np.int64) for c, vs in classes.items()}


def defect_vector(graph: Graph, colors) -> np.ndarray:
    """Per-vertex defect: number of neighbors sharing the vertex's color."""
    arr = _as_colors(graph, colors)
    defect = np.zeros(graph.n, dtype=np.int64)
    edges = graph.edge_array()
    if edges.size:
        same = arr[edges[:, 0]] == arr[edges[:, 1]]
        mono = edges[same]
        if mono.size:
            np.add.at(defect, mono[:, 0], 1)
            np.add.at(defect, mono[:, 1], 1)
    return defect


def max_defect(graph: Graph, colors) -> int:
    """Maximum per-vertex defect (0 for a proper coloring)."""
    vec = defect_vector(graph, colors)
    return int(vec.max()) if vec.size else 0


def assert_defective_coloring(
    graph: Graph, colors, d: int, max_colors: int | None = None
) -> None:
    """Raise unless the coloring is ``d``-defective (every defect ``<= d``) and within ``max_colors``."""
    vec = defect_vector(graph, colors)
    if vec.size and int(vec.max()) > d:
        v = int(np.argmax(vec))
        raise VerificationError(
            f"vertex {v} has defect {int(vec[v])}, exceeding the allowed defect {d}"
        )
    if max_colors is not None and count_colors(graph, colors) > max_colors:
        raise VerificationError(
            f"coloring uses {count_colors(graph, colors)} colors, allowed at most {max_colors}"
        )
