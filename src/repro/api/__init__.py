"""repro.api — the unified, declarative front door of the package.

The paper's whole point is that one *mother algorithm* with different
parameter settings yields the entire zoo of colorings.  This package mirrors
that shape in code: every algorithm is one :class:`AlgorithmSpec` in a single
registry, and every execution — a one-off ``solve()``, a batch sweep, a saved
``repro run --spec run.json``, the experiment suite — is described by the same
declarative, JSON-round-trippable request objects.

* :class:`~repro.api.registry.AlgorithmSpec` + :func:`register_algorithm` —
  the typed algorithm registry.  ``repro.core`` modules self-register their
  algorithms at import time; third-party algorithms plug in with the same
  decorator and immediately appear in the CLI, the batch runner, and
  ``repro list-algorithms``.
* :class:`~repro.api.spec.Problem` / :class:`~repro.api.spec.Run` /
  :class:`~repro.api.spec.JobSpec` — declarative request objects with a
  schema-versioned ``to_dict``/``from_dict``/JSON round-trip.
* :func:`~repro.api.solve.solve` — run one algorithm on one problem and get a
  structured :class:`~repro.api.report.RunReport` (colors, rounds, guarantee,
  timings, provenance).
* :func:`~repro.api.solve.run_spec` — drive a whole saved sweep (the same
  machinery behind ``repro run --spec``); the emitted sink manifest embeds the
  spec hash.

Quickstart
----------

>>> from repro.api import GraphSpec, Problem, Run, solve
>>> report = solve(Problem(graph=GraphSpec("random_regular", 200, 8, seed=1)),
...                Run(algorithm="delta_plus_one", backend="array"))
>>> report.record["colors used"] <= report.record["Delta"] + 1
True
"""

from repro.engine.batch import GraphSpec
from repro.api.registry import (
    AlgorithmError,
    AlgorithmSpec,
    ParamSpec,
    ParameterValueError,
    UnknownAlgorithmError,
    UnknownParameterError,
    algorithm_names,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
    validate_params,
)
from repro.api.report import RunReport
from repro.api.spec import (
    JOB_STATES,
    SCHEMA_VERSION,
    JobSpec,
    JobStatus,
    Problem,
    Run,
    SpecError,
    graph_fingerprint,
    spec_hash,
)
from repro.api.solve import run_spec, solve

__all__ = [
    "GraphSpec",
    "AlgorithmError",
    "AlgorithmSpec",
    "ParamSpec",
    "ParameterValueError",
    "UnknownAlgorithmError",
    "UnknownParameterError",
    "algorithm_names",
    "algorithm_specs",
    "get_algorithm",
    "register_algorithm",
    "validate_params",
    "RunReport",
    "JOB_STATES",
    "SCHEMA_VERSION",
    "JobSpec",
    "JobStatus",
    "Problem",
    "Run",
    "SpecError",
    "graph_fingerprint",
    "spec_hash",
    "run_spec",
    "solve",
]
