"""The algorithm registry: one typed :class:`AlgorithmSpec` per algorithm.

Algorithms self-register at import time with the :func:`register_algorithm`
decorator, carrying a name, a typed parameter schema (defaults, ranges,
choices), the guarantee the paper proves for them, and the kind of structure
they output.  The registry is the single source of truth behind

* :func:`repro.api.solve.solve` and the saved-spec runner,
* :class:`repro.engine.batch.BatchRunner` task resolution (``runner.run("kdelta", ...)``),
* the CLI — ``repro color <algorithm>``, ``repro batch --task``, ``repro
  list-algorithms`` and all ``--param`` validation are *generated* from the
  specs here, so a newly registered algorithm appears everywhere with zero
  CLI edits.

The registered runner has the task signature of the engine layer::

    runner(workload: Workload, engine: Engine, **params) -> Mapping[str, Any]

where keys starting with ``"_"`` are artifacts (arrays used for parity
checking) and everything else is a scalar measurement.

Builtin algorithms live next to their implementations (``repro.core.*`` and
``repro.analysis.experiments``); those modules are imported lazily on first
registry access so that importing :mod:`repro.engine` alone stays cheap and
cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "AlgorithmError",
    "UnknownAlgorithmError",
    "UnknownParameterError",
    "ParameterValueError",
    "ParamSpec",
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "algorithm_names",
    "algorithm_specs",
    "validate_params",
    "tasks_view",
]


class AlgorithmError(Exception):
    """Base class for registry errors."""


class UnknownAlgorithmError(AlgorithmError, KeyError):
    """An algorithm name that is not in the registry."""

    def __init__(self, name: str, known: Sequence[str]):
        self.name = name
        self.known = list(known)
        super().__init__(f"unknown algorithm {name!r}; known: {sorted(known)}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class UnknownParameterError(AlgorithmError, TypeError):
    """A parameter key the algorithm's schema does not declare."""

    def __init__(self, algorithm: str, unknown: Iterable[str], accepted: Iterable[str]):
        self.algorithm = algorithm
        self.unknown = sorted(unknown)
        self.accepted = sorted(accepted)
        super().__init__(
            f"unknown parameter(s) {self.unknown} for algorithm {algorithm!r}; "
            f"accepted: {self.accepted or '(none)'}"
        )


class ParameterValueError(AlgorithmError, ValueError):
    """A parameter value of the wrong type or outside its declared range."""


_REQUIRED = object()


@dataclass(frozen=True)
class ParamSpec:
    """One typed parameter of an algorithm.

    Attributes
    ----------
    name:
        The keyword the runner accepts (and the ``--<name>`` CLI flag).
    type:
        ``int`` / ``float`` / ``bool`` / ``str``.
    default:
        Default value; omit to make the parameter required.
    help:
        One-line description (shown by ``repro list-algorithms`` and the CLI).
    minimum:
        Inclusive lower bound for numeric parameters.
    choices:
        Allowed values for string parameters.
    """

    name: str
    type: type = int
    default: Any = _REQUIRED
    help: str = ""
    minimum: int | float | None = None
    choices: tuple[Any, ...] | None = None

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    def describe(self) -> str:
        """Compact ``name=default`` / ``name:type (required)`` rendering."""
        if self.required:
            return f"{self.name}:{self.type.__name__} (required)"
        return f"{self.name}={self.default!r}"

    def validate(self, algorithm: str, value: Any) -> None:
        """Raise :class:`ParameterValueError` unless ``value`` fits this spec."""
        ok_types: tuple[type, ...] = (self.type,)
        if self.type is float:
            ok_types = (int, float)  # integral values are fine for float params
        if isinstance(value, bool) and self.type is not bool:
            ok_types = ()  # bool is an int subclass; never silently accept it
        if not isinstance(value, ok_types):
            raise ParameterValueError(
                f"parameter {self.name!r} of algorithm {algorithm!r} expects "
                f"{self.type.__name__}, got {value!r} ({type(value).__name__})"
            )
        if self.minimum is not None and value < self.minimum:
            raise ParameterValueError(
                f"parameter {self.name!r} of algorithm {algorithm!r} must be "
                f">= {self.minimum}, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ParameterValueError(
                f"parameter {self.name!r} of algorithm {algorithm!r} must be one of "
                f"{list(self.choices)}, got {value!r}"
            )

    def parse(self, algorithm: str, text: str) -> Any:
        """Parse a CLI string (``--param name=VALUE``) into a validated value."""
        value: Any
        if self.type is bool:
            lowered = text.lower()
            if lowered not in ("true", "false", "1", "0", "yes", "no"):
                raise ParameterValueError(
                    f"parameter {self.name!r} of algorithm {algorithm!r} expects a "
                    f"boolean (true/false), got {text!r}"
                )
            value = lowered in ("true", "1", "yes")
        elif self.type in (int, float):
            try:
                value = self.type(text)
            except ValueError:
                raise ParameterValueError(
                    f"parameter {self.name!r} of algorithm {algorithm!r} expects "
                    f"{self.type.__name__}, got {text!r}"
                ) from None
        else:
            value = text
        self.validate(algorithm, value)
        return value


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: metadata plus its workload-level runner."""

    name: str
    runner: Callable[..., Mapping[str, Any]]
    summary: str
    guarantee: str
    output: str = "coloring"  # "coloring" | "ruling set"
    params: tuple[ParamSpec, ...] = ()
    #: The corollary / theorem of the paper this algorithm realises.
    source: str = ""
    #: Whether the runner consumes the standing Delta^4 input coloring.
    requires_input_coloring: bool = True

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise UnknownParameterError(self.name, [name], [p.name for p in self.params])

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def signature(self) -> str:
        """``name(k=1, d=2, ...)`` — the compact form used in listings."""
        inner = ", ".join(p.describe() for p in self.params)
        return f"{self.name}({inner})"

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``params`` against the schema; returns them unchanged.

        Unknown keys raise :class:`UnknownParameterError` (naming the
        algorithm and the accepted keys), ill-typed or out-of-range values
        raise :class:`ParameterValueError`, and missing required parameters
        raise :class:`ParameterValueError` as well.  Values are *not* coerced
        or defaulted — the validated dict is byte-identical to the input, so
        cell keys and tidy records are unaffected by validation.
        """
        declared = {p.name: p for p in self.params}
        unknown = set(params) - set(declared)
        if unknown:
            raise UnknownParameterError(self.name, unknown, declared)
        for key, value in params.items():
            declared[key].validate(self.name, value)
        missing = [p.name for p in self.params if p.required and p.name not in params]
        if missing:
            raise ParameterValueError(
                f"algorithm {self.name!r} is missing required parameter(s) {missing}; "
                f"signature: {self.signature()}"
            )
        return dict(params)


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #

_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Modules that register the builtin algorithms (imported lazily, once).
_BUILTIN_MODULES = (
    "repro.core.corollaries",
    "repro.core.linial",
    "repro.core.pipelines",
    "repro.core.ruling_sets",
    "repro.analysis.experiments",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True  # set first: the imports below re-enter the registry
    import importlib

    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        # A failed builtin import must not latch a partial registry: the next
        # call retries (and surfaces the real cause again) instead of
        # reporting a misleading UnknownAlgorithmError.
        _builtins_loaded = False
        raise


def register_algorithm(
    name: str,
    *,
    summary: str,
    guarantee: str,
    output: str = "coloring",
    params: Sequence[ParamSpec] = (),
    source: str = "",
    requires_input_coloring: bool = True,
    overwrite: bool = False,
) -> Callable[[Callable[..., Mapping[str, Any]]], Callable[..., Mapping[str, Any]]]:
    """Class the decorated ``runner(workload, engine, **params)`` as an algorithm.

    The decorator registers an :class:`AlgorithmSpec` under ``name`` and
    returns the runner unchanged (so it stays importable for process-pool
    workers).  Registering an existing name raises unless ``overwrite=True``.
    """

    def decorator(runner: Callable[..., Mapping[str, Any]]):
        if name in _REGISTRY and not overwrite:
            raise AlgorithmError(
                f"algorithm {name!r} is already registered "
                f"(by {_REGISTRY[name].runner!r}); pass overwrite=True to replace it"
            )
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            runner=runner,
            summary=summary,
            guarantee=guarantee,
            output=output,
            params=tuple(params),
            source=source,
            requires_input_coloring=requires_input_coloring,
        )
        return runner

    return decorator


def get_algorithm(name: str) -> AlgorithmSpec:
    """The :class:`AlgorithmSpec` registered under ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(name, list(_REGISTRY)) from None


def algorithm_names() -> list[str]:
    """Sorted names of every registered algorithm."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def algorithm_specs() -> list[AlgorithmSpec]:
    """Every registered :class:`AlgorithmSpec`, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def validate_params(algorithm: str | AlgorithmSpec, params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate ``params`` against ``algorithm``'s schema (see the spec method)."""
    spec = algorithm if isinstance(algorithm, AlgorithmSpec) else get_algorithm(algorithm)
    return spec.validate_params(params)


def tasks_view() -> dict[str, Callable[..., Mapping[str, Any]]]:
    """``{name: runner}`` — the legacy ``TASKS``-shaped view of the registry."""
    _ensure_builtins()
    return {name: _REGISTRY[name].runner for name in sorted(_REGISTRY)}
