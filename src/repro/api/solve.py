"""``solve(problem, run)`` — the one front door — and the saved-spec runner.

Both entry points execute through the existing engine machinery
(:class:`~repro.engine.batch.BatchRunner`), so a one-off ``solve()``, a
programmatic sweep, and a replayed ``repro run --spec run.json`` produce
byte-identical records for the same cells (modulo wall-clock fields).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.congest.graph import Graph
from repro.api.registry import get_algorithm
from repro.api.report import RunReport
from repro.api.spec import SCHEMA_VERSION, JobSpec, Problem, Run, SpecError, spec_hash
from repro.engine.batch import BatchResult, BatchRunner, GraphSpec
from repro.engine.sink import ResultSink

__all__ = ["solve", "run_spec"]

#: Family label used for problems holding a live (non-generator) Graph.
ADHOC_FAMILY = "<adhoc>"


def _resolve_problem(problem: Problem, run: Run) -> tuple[GraphSpec, Graph | None]:
    """The cell to run: its GraphSpec (seed-overridden) and a live graph, if any."""
    graph = problem.graph
    if isinstance(graph, GraphSpec):
        if run.seed is not None and run.seed != graph.seed:
            graph = replace(graph, seed=run.seed)
        return graph, None
    seed = 0 if run.seed is None else run.seed
    return GraphSpec(ADHOC_FAMILY, graph.n, graph.max_degree, seed=seed), graph


def solve(problem: Problem, run: Run) -> RunReport:
    """Run one registered algorithm on one problem; return a :class:`RunReport`.

    The algorithm name and params are validated against the registry schema
    up front (:class:`~repro.api.registry.UnknownParameterError` /
    :class:`~repro.api.registry.ParameterValueError` on mismatch).  The cell
    executes exactly like a ``BatchRunner`` cell — same input-coloring
    convention, same record shape — with the array artifacts (colors, parts,
    ruling set) kept and the registry's guarantee string attached.  With
    ``run.parity_check=True`` the cell is re-run on the reference backend and
    must match exactly.
    """
    algorithm = get_algorithm(run.algorithm)
    params = algorithm.validate_params(run.params)
    cell, live_graph = _resolve_problem(problem, run)

    runner = BatchRunner(backend=run.backend, parity_check=run.parity_check)
    if live_graph is not None:
        runner.preload_graph(cell, live_graph)
    record, raw_artifacts = runner.run_cell_with_artifacts(run.algorithm, cell, params=params)
    artifacts = {key.lstrip("_"): value for key, value in raw_artifacts.items()}

    provenance: dict[str, Any] = {
        "package_version": _package_version(),
        "schema": SCHEMA_VERSION,
        "engine": runner.engine.name,
        "backend_tier": runner.engine.active_tier(),
    }
    if problem.is_serializable:
        document = JobSpec.single(problem, run).to_dict()
        provenance["spec"] = document
        provenance["spec_hash"] = spec_hash(document)

    return RunReport(
        algorithm=run.algorithm,
        params=params,
        backend=runner.engine.name,
        record=record,
        artifacts=artifacts,
        guarantee=algorithm.guarantee,
        output=algorithm.output,
        verified=True,  # registered runners assert their hard invariants
        parity_checked=run.parity_check,
        provenance=provenance,
    )


def run_spec(
    job: JobSpec | Mapping[str, Any],
    sink: ResultSink | None = None,
    backend: str | None = None,
    workers: int | None = None,
    parity_check: bool | None = None,
    retry=None,
    progress=None,
    shard: tuple[int, int] | None = None,
) -> tuple[BatchResult, str]:
    """Execute a saved sweep spec; return its records and the spec's hash.

    ``job`` may be a :class:`~repro.api.spec.JobSpec` or its dict form (the
    content of a ``run.json``).  The hash is computed over the document *as
    given* — the ``backend`` / ``workers`` / ``parity_check`` / ``retry`` /
    ``shard`` execution overrides (the CLI's flags) never change it — and is
    embedded in the sink's manifest, so the result file pins the exact spec
    it came from.  ``progress`` is forwarded to
    :meth:`~repro.engine.batch.BatchRunner.run` (per-cell completion
    callbacks — what the job server streams over SSE); the spec's declared
    :class:`~repro.engine.retry.RetryPolicy` (``run.retry``) governs failing
    cells unless ``retry`` overrides it.

    ``shard=(i, k)`` — or a spec-declared ``run.shard`` — executes only the
    deterministic shard ``i`` of ``k`` of the cell grid; the override keeps
    the hash of the document as given, so a fleet of ``k`` shard runs of one
    spec all pin the *same* spec hash in their manifests (what ``repro
    merge`` validates before joining them).
    """
    if isinstance(job, Mapping):
        job = JobSpec.from_dict(job)
    elif not isinstance(job, JobSpec):
        raise SpecError(f"run_spec expects a JobSpec or its dict form, got {type(job).__name__}")
    digest = spec_hash(job)

    run = job.run
    if backend is not None:
        run = replace(run, backend=backend)
    if workers is not None:
        run = replace(run, workers=workers)
    if parity_check is not None:
        run = replace(run, parity_check=parity_check)
    if retry is not None:
        run = replace(run, retry=retry)
    if shard is not None:
        run = replace(run, shard=shard)
    job = replace(job, run=run)

    algorithm = get_algorithm(run.algorithm)
    for grid_entry in job.effective_grid() or [{}]:
        algorithm.validate_params(grid_entry)

    runner = BatchRunner(
        backend=run.backend, parity_check=run.parity_check, workers=run.workers,
        retry=run.retry,
    )
    result = runner.run(
        run.algorithm, job.cells(), params_grid=job.effective_grid(),
        sink=sink, spec_hash=digest, progress=progress, shard=run.shard,
    )
    return result, digest


def _package_version() -> str:
    from repro import __version__

    return __version__
