"""Shared record builders for registered algorithm runners.

A runner returns a flat mapping of measurements; keys starting with ``"_"``
are artifacts (arrays used for parity checking, stripped from the tidy
record).  The helpers here keep the record *shape* identical across all
coloring algorithms — the golden-record suite freezes both the field set and
the field order.
"""

from __future__ import annotations

from typing import Any

__all__ = ["coloring_record"]


def coloring_record(result, verify_graph=None, max_colors=None) -> dict[str, Any]:
    """The canonical tidy record of a :class:`~repro.core.results.ColoringResult`.

    With ``verify_graph`` the coloring is asserted proper first (the hard
    invariant every experiment relies on); ``max_colors`` additionally bounds
    the color values.
    """
    if verify_graph is not None:
        from repro.verify.coloring import assert_proper_coloring

        assert_proper_coloring(verify_graph, result.colors, max_colors=max_colors)
    record: dict[str, Any] = {
        "rounds": int(result.rounds),
        "colors used": int(result.num_colors),
        "color space": int(result.color_space_size),
        "_colors": result.colors,
    }
    if result.parts is not None:
        record["_parts"] = result.parts
    return record
