"""The structured result of :func:`repro.api.solve.solve`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Everything one solver run produced, in one structured object.

    Attributes
    ----------
    algorithm / params / backend:
        What ran (params exactly as validated — defaults are not injected).
    record:
        The tidy scalar record of the engine layer (the same record a
        :class:`~repro.engine.batch.BatchRunner` sweep emits for this cell,
        including ``rounds``, ``seconds`` and algorithm-specific
        measurements), so a one-off ``solve()`` and a batch sweep are
        directly comparable.
    artifacts:
        The array outputs keyed like the engine layer's parity artifacts but
        without the underscore: ``colors`` (and ``parts`` where the algorithm
        reports a partition, ``vertices`` for ruling sets).
    guarantee:
        The paper's guarantee string from the algorithm's registry spec.
    verified:
        Whether the registered runner's hard-invariant checks ran and passed
        (they raise on violation, so a report only ever exists with
        ``verified=True``; the field makes that explicit in serialized form).
    parity_checked:
        Whether the run was re-executed on the reference backend and matched.
    provenance:
        Where the result came from: package version, spec schema version, the
        serialized ``{problem, run}`` document and its hash (when the problem
        is serializable), and the engine name.
    """

    algorithm: str
    params: dict[str, Any]
    backend: str
    record: dict[str, Any]
    artifacts: dict[str, np.ndarray] = field(default_factory=dict)
    guarantee: str = ""
    output: str = "coloring"
    verified: bool = True
    parity_checked: bool = False
    provenance: dict[str, Any] = field(default_factory=dict)

    # -- convenience views ------------------------------------------------ #

    @property
    def colors(self) -> np.ndarray | None:
        return self.artifacts.get("colors")

    @property
    def parts(self) -> np.ndarray | None:
        return self.artifacts.get("parts")

    @property
    def vertices(self) -> np.ndarray | None:
        """The ruling set, for ``output == "ruling set"`` algorithms."""
        return self.artifacts.get("vertices")

    @property
    def rounds(self) -> int:
        return int(self.record["rounds"])

    @property
    def num_colors(self) -> int | None:
        value = self.record.get("colors used")
        return None if value is None else int(value)

    @property
    def seconds(self) -> float:
        return float(self.record.get("seconds", 0.0))

    def to_dict(self, include_arrays: bool = False) -> dict[str, Any]:
        """A JSON-serializable rendering (arrays as lists when requested)."""
        data: dict[str, Any] = {
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "backend": self.backend,
            "record": dict(self.record),
            "guarantee": self.guarantee,
            "output": self.output,
            "verified": self.verified,
            "parity_checked": self.parity_checked,
            "provenance": dict(self.provenance),
        }
        if include_arrays:
            data["artifacts"] = {k: np.asarray(v).tolist() for k, v in self.artifacts.items()}
        return data

    def summary(self) -> str:
        """One human-readable line (the CLI's result line)."""
        skip = ("family", "n", "Delta", "seed", "backend", "seconds")
        fields = ", ".join(
            f"{key}={value}" for key, value in self.record.items()
            if key not in skip and key not in self.params
        )
        status = "verified" if self.verified else "UNVERIFIED"
        parity = ", reference-parity checked" if self.parity_checked else ""
        return f"{self.algorithm} [{self.backend}]: {fields} — {status}{parity}"
