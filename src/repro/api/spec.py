"""Declarative request objects: ``Problem`` + ``Run`` (+ ``JobSpec`` sweeps).

One spec format drives everything: :func:`repro.api.solve.solve`, the
:class:`~repro.engine.batch.BatchRunner`, the sinks' manifests, and
``repro run --spec run.json``.  All objects round-trip losslessly through
``to_dict`` / ``from_dict`` and JSON, and every serialized document carries a
``schema`` version so saved specs stay readable as the format evolves.

* :class:`Problem` — *what* to solve: a graph (a :class:`~repro.engine.batch.GraphSpec`
  naming a generator cell, or a live :class:`~repro.congest.graph.Graph`) plus
  the input-coloring convention (``"delta4"``, the standing assumption of
  Corollary 1.2).
* :class:`Run` — *how* to solve it: the registered algorithm name, its
  params, the backend, worker count, an optional seed override, and whether
  to parity-check against the reference backend.
* :class:`JobSpec` — a whole sweep: many problems x one run (optionally with
  a params grid).  ``repro run --spec`` executes exactly this document, and
  :func:`spec_hash` pins it into the result sink's manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.congest.graph import Graph
from repro.engine.batch import GraphSpec
from repro.engine.retry import RetryPolicy

__all__ = [
    "SCHEMA_VERSION",
    "JOB_STATES",
    "SpecError",
    "Problem",
    "Run",
    "JobSpec",
    "JobStatus",
    "canonical_json",
    "graph_fingerprint",
    "spec_hash",
]

#: Version of the serialized spec format (bump on incompatible changes).
SCHEMA_VERSION = 1

#: Input-coloring conventions a Problem can declare.  ``"delta4"`` is the
#: standing assumption of Corollary 1.2: the ``Delta^4`` input coloring built
#: by :func:`repro.congest.ids.delta4_input_coloring` from the cell's seed.
INPUT_COLORINGS = ("delta4",)


class SpecError(ValueError):
    """A malformed or non-serializable spec document."""


def _check_schema(data: Mapping[str, Any], kind: str) -> None:
    schema = data.get("schema", SCHEMA_VERSION)
    if not isinstance(schema, int) or schema < 1 or schema > SCHEMA_VERSION:
        raise SpecError(
            f"cannot read {kind} spec with schema {schema!r}; "
            f"this package reads schema <= {SCHEMA_VERSION}"
        )


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str], kind: str) -> None:
    unknown = set(data) - set(allowed) - {"schema"}
    if unknown:
        raise SpecError(f"unknown {kind} spec field(s) {sorted(unknown)}; allowed: {list(allowed)}")


def _graph_to_dict(graph: GraphSpec) -> dict[str, Any]:
    data = {"family": graph.family, "n": graph.n, "delta": graph.delta, "seed": graph.seed}
    if graph.path is not None:
        data["path"] = str(graph.path)
    return data


def _graph_from_dict(data: Mapping[str, Any]) -> GraphSpec:
    _reject_unknown(data, ("family", "n", "delta", "seed", "path"), "graph")
    path = data.get("path")
    family = str(data.get("family", ""))
    if path is not None and family != "file":
        raise SpecError(
            f"graph spec field 'path' is only valid for family 'file', got "
            f"family {family!r}"
        )
    if family == "file" and path is None:
        raise SpecError("graph spec with family 'file' needs a 'path' field")
    try:
        return GraphSpec(
            family=str(data["family"]), n=int(data["n"]), delta=int(data["delta"]),
            seed=int(data.get("seed", 0)),
            path=None if path is None else str(path),
        )
    except KeyError as exc:
        raise SpecError(f"graph spec is missing field {exc.args[0]!r}: {dict(data)!r}") from None


@dataclass(frozen=True)
class Problem:
    """What to solve: a graph plus the input-coloring convention."""

    graph: GraphSpec | Graph
    input_coloring: str = "delta4"

    def __post_init__(self):
        if self.input_coloring not in INPUT_COLORINGS:
            raise SpecError(
                f"unknown input_coloring {self.input_coloring!r}; known: {list(INPUT_COLORINGS)}"
            )
        if not isinstance(self.graph, (GraphSpec, Graph)):
            raise SpecError(
                f"Problem.graph must be a GraphSpec or a Graph, got {type(self.graph).__name__}"
            )

    @property
    def is_serializable(self) -> bool:
        """Only generator-described graphs round-trip (a live Graph does not)."""
        return isinstance(self.graph, GraphSpec)

    def canonical_dict(self) -> dict[str, Any]:
        """The dict :func:`spec_hash` hashes — defined for *every* Problem.

        A GraphSpec-described problem hashes its ``to_dict`` form.  A problem
        holding a live :class:`~repro.congest.graph.Graph` cannot round-trip
        through JSON (``to_dict`` raises), but it still has a canonical
        identity: the content of its frozen CSR triplet.  Hashing that —
        rather than failing, or hashing unstable object state like ``id()`` —
        makes dedupe over live-graph submissions well defined: two
        structurally identical graphs produce the same hash, two different
        graphs never collide by construction.

        A *file-backed* problem (``GraphSpec(family="file", path=...)``)
        canonicalizes by **content**, not location: the ``path`` field is
        replaced by the SHA-256 digest of the file's bytes (the same key the
        ingestion cache uses).  Submitting one corpus graph from two paths —
        two checkouts, a moved corpus directory, a server-side copy — hashes
        identically, and an edited file is a different document.
        """
        if self.is_serializable:
            data = self.to_dict()
            graph = self.graph
            if isinstance(graph, GraphSpec) and graph.family == "file":
                from repro.corpus import cache

                try:
                    digest = cache.file_digest(graph.path)
                except OSError as exc:
                    raise SpecError(
                        f"cannot hash file-backed graph spec: {exc}"
                    ) from None
                entry = dict(data["graph"])
                del entry["path"]
                entry["digest"] = digest
                data["graph"] = entry
            return data
        return {
            "schema": SCHEMA_VERSION,
            "graph": {
                "live": True,
                "n": self.graph.n,
                "delta": self.graph.max_degree,
                "csr_sha256": graph_fingerprint(self.graph),
            },
            "input_coloring": self.input_coloring,
        }

    def to_dict(self) -> dict[str, Any]:
        if not self.is_serializable:
            raise SpecError(
                "a Problem holding a live Graph is not serializable; describe the "
                "graph as a GraphSpec(family, n, delta, seed) to save it"
            )
        return {
            "schema": SCHEMA_VERSION,
            "graph": _graph_to_dict(self.graph),
            "input_coloring": self.input_coloring,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Problem":
        _check_schema(data, "problem")
        _reject_unknown(data, ("graph", "input_coloring"), "problem")
        if "graph" not in data:
            raise SpecError(f"problem spec is missing 'graph': {dict(data)!r}")
        return cls(
            graph=_graph_from_dict(data["graph"]),
            input_coloring=str(data.get("input_coloring", "delta4")),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Problem":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class Run:
    """How to solve it: algorithm, params, backend, workers, seed, parity, retry.

    ``retry`` is the :class:`~repro.engine.retry.RetryPolicy` governing
    failing cells (attempts, per-cell timeout, backoff, record-vs-raise).
    It is part of the spec — a non-default policy serializes under the
    ``"retry"`` key and is hashed into the spec hash; the default policy is
    *omitted* from the serialized form, so every pre-existing spec document
    and spec hash is unchanged.

    ``shard`` — an ``(index, of)`` pair — restricts execution to one
    deterministic shard of the sweep's cell grid (see
    :func:`repro.engine.sink.shard_of`).  Like ``retry`` it follows the
    omit-by-default rule: ``None`` (run everything, the default) never
    appears in the serialized form, so the hash of every pre-existing spec
    is unchanged; a sharded spec serializes ``"shard": [i, k]`` and hashes
    differently — shard ``0/2`` of a sweep *is* a different document than
    the whole sweep.
    """

    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)
    backend: str = "array"
    workers: int = 1
    seed: int | None = None
    parity_check: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    shard: tuple[int, int] | None = None

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))
        if not self.algorithm or not isinstance(self.algorithm, str):
            raise SpecError(f"Run.algorithm must be a non-empty string, got {self.algorithm!r}")
        if not self.backend or not isinstance(self.backend, str):
            raise SpecError(f"Run.backend must be a non-empty string, got {self.backend!r}")
        from repro.engine.registry import ensure_known_backend

        ensure_known_backend(self.backend, context="Run.backend")
        if int(self.workers) < 1:
            raise SpecError(f"Run.workers must be >= 1, got {self.workers!r}")
        if not isinstance(self.retry, RetryPolicy):
            raise SpecError(
                f"Run.retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.shard is not None:
            try:
                pair = (int(self.shard[0]), int(self.shard[1]))
            except (TypeError, ValueError, IndexError, KeyError):
                raise SpecError(
                    f"Run.shard must be an (index, of) pair, got {self.shard!r}"
                ) from None
            if pair[1] < 1 or not 0 <= pair[0] < pair[1]:
                raise SpecError(
                    f"Run.shard must satisfy 0 <= index < of (of >= 1), "
                    f"got {pair[0]}/{pair[1]}"
                )
            object.__setattr__(self, "shard", pair)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "schema": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "backend": self.backend,
            "workers": self.workers,
            "seed": self.seed,
            "parity_check": self.parity_check,
        }
        if not self.retry.is_default:
            data["retry"] = self.retry.to_dict()
        if self.shard is not None:
            data["shard"] = list(self.shard)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Run":
        _check_schema(data, "run")
        _reject_unknown(
            data,
            ("algorithm", "params", "backend", "workers", "seed", "parity_check",
             "retry", "shard"),
            "run",
        )
        if "algorithm" not in data:
            raise SpecError(f"run spec is missing 'algorithm': {dict(data)!r}")
        seed = data.get("seed")
        retry = data.get("retry")
        try:
            policy = RetryPolicy() if retry is None else RetryPolicy.from_dict(retry)
        except ValueError as exc:
            raise SpecError(f"bad run spec 'retry' field: {exc}") from None
        shard = data.get("shard")
        if shard is not None and (not isinstance(shard, (list, tuple)) or len(shard) != 2):
            raise SpecError(f"run spec 'shard' must be an [index, of] pair, got {shard!r}")
        return cls(
            algorithm=str(data["algorithm"]),
            params=dict(data.get("params") or {}),
            backend=str(data.get("backend", "array")),
            workers=int(data.get("workers", 1)),
            seed=None if seed is None else int(seed),
            parity_check=bool(data.get("parity_check", False)),
            retry=policy,
            shard=None if shard is None else tuple(shard),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Run":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class JobSpec:
    """A whole declarative sweep: many problems x one run (x a params grid).

    ``params_grid`` entries extend/override ``run.params`` per cell; without a
    grid the sweep runs every problem once with ``run.params``.
    """

    run: Run
    problems: tuple[Problem, ...]
    params_grid: tuple[dict[str, Any], ...] | None = None

    def __post_init__(self):
        object.__setattr__(self, "problems", tuple(self.problems))
        if not self.problems:
            raise SpecError("JobSpec needs at least one problem")
        if self.params_grid is not None:
            object.__setattr__(
                self, "params_grid", tuple(dict(p) for p in self.params_grid)
            )

    @classmethod
    def single(cls, problem: Problem, run: Run) -> "JobSpec":
        return cls(run=run, problems=(problem,))

    # -- execution views -------------------------------------------------- #

    def cells(self) -> list[GraphSpec]:
        """The sweep's grid cells (requires every problem to be a GraphSpec).

        ``run.seed`` (when set) overrides every cell's seed — the one-off
        override semantics of :func:`repro.api.solve.solve`.
        """
        cells = []
        for problem in self.problems:
            if not problem.is_serializable:
                raise SpecError("batch execution needs GraphSpec-described problems")
            g = problem.graph
            if self.run.seed is not None and self.run.seed != g.seed:
                g = replace(g, seed=self.run.seed)
            cells.append(g)
        return cells

    def effective_grid(self) -> list[dict[str, Any]] | None:
        """The params grid actually swept (``run.params`` merged under each entry)."""
        base = dict(self.run.params)
        if self.params_grid is not None:
            return [{**base, **entry} for entry in self.params_grid]
        return [base] if base else None

    def num_cells(self) -> int:
        """How many (problem x params) cells the sweep executes."""
        grid = self.effective_grid()
        return len(self.problems) * (len(grid) if grid else 1)

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "problems": [p.to_dict() for p in self.problems],
            "run": self.run.to_dict(),
        }
        if self.params_grid is not None:
            data["params_grid"] = [dict(p) for p in self.params_grid]
        return data

    def canonical_dict(self) -> dict[str, Any]:
        """Like :meth:`to_dict`, but defined for live-graph problems too
        (each problem contributes its :meth:`Problem.canonical_dict`)."""
        data: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "problems": [p.canonical_dict() for p in self.problems],
            "run": self.run.to_dict(),
        }
        if self.params_grid is not None:
            data["params_grid"] = [dict(p) for p in self.params_grid]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        _check_schema(data, "job")
        _reject_unknown(data, ("problem", "problems", "run", "params_grid"), "job")
        if "run" not in data:
            raise SpecError(f"job spec is missing 'run': {dict(data)!r}")
        if "problem" in data and "problems" in data:
            raise SpecError("job spec must have either 'problem' or 'problems', not both")
        if "problem" in data:
            problems = [Problem.from_dict(data["problem"])]
        elif "problems" in data:
            problems = [Problem.from_dict(p) for p in data["problems"]]
        else:
            raise SpecError(f"job spec is missing 'problem(s)': {dict(data)!r}")
        grid = data.get("params_grid")
        return cls(
            run=Run.from_dict(data["run"]),
            problems=tuple(problems),
            params_grid=None if grid is None else tuple(dict(p) for p in grid),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------------- #
# Canonical form and hashing
# --------------------------------------------------------------------------- #


def canonical_json(data: Mapping[str, Any]) -> str:
    """The canonical (sorted-keys, compact) JSON rendering of a spec dict."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a live graph: SHA-256 over its frozen CSR triplet.

    Hashes ``n`` plus the exact bytes of ``indptr`` and ``indices`` (which
    together determine the adjacency; ``src_index`` is derived), so the
    fingerprint depends only on graph structure — never on object identity,
    memory layout of a shared segment, or construction order of an equal
    graph.
    """
    if not isinstance(graph, Graph):
        raise SpecError(f"graph_fingerprint expects a Graph, got {type(graph).__name__}")
    digest = hashlib.sha256()
    digest.update(f"csr:{graph.n}:".encode("ascii"))
    digest.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    return digest.hexdigest()[:16]


def spec_hash(spec: Problem | Run | JobSpec | Mapping[str, Any]) -> str:
    """Stable hex id of a spec: SHA-256 over its canonical JSON (16-char prefix).

    This is the hash :func:`repro.api.solve.run_spec` embeds in the sink's
    :class:`~repro.engine.sink.RunManifest` (``spec_hash``) and the job server
    dedupes submissions by, pinning a result file to the exact document that
    produced it.  Problems holding a live :class:`Graph` hash canonically via
    the graph's CSR content (:func:`graph_fingerprint`) — see
    :meth:`Problem.canonical_dict`.
    """
    if isinstance(spec, Mapping):
        data = spec
    elif isinstance(spec, (Problem, JobSpec)):
        data = spec.canonical_dict()
    else:
        data = spec.to_dict()
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Job-level status (the serialized state of one server-side job)
# --------------------------------------------------------------------------- #

#: Lifecycle states of a submitted job.  ``queued`` and ``running`` are the
#: *incomplete* states a restarted server re-queues; ``done`` / ``failed``
#: are terminal.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobStatus:
    """The serialized status of one job: what ``GET /jobs/<id>`` returns.

    ``id`` is the job's :func:`spec_hash` — jobs are content-addressed, so a
    resubmission of the same document *is* the same job.  ``cells_total`` /
    ``cells_done`` carry per-cell progress (mirrored from the sink), and
    ``backend_tier`` surfaces which execution tier actually ran the job
    (e.g. ``jit:numba`` vs ``jit:fallback-array``) — the per-job answer to
    "did the compiled path degrade?", which a one-time process warning cannot
    give a long-running server.

    ``error`` is the structured error object of a failed job (see
    :func:`repro.engine.retry.describe_error`: kind / type / message /
    traceback digest / attempts); plain strings written by older servers
    still round-trip.
    """

    id: str
    spec: dict[str, Any]
    state: str = "queued"
    cells_total: int = 0
    cells_done: int = 0
    error: str | dict[str, Any] | None = None
    backend_tier: str | None = None
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0

    def __post_init__(self):
        if self.state not in JOB_STATES:
            raise SpecError(f"unknown job state {self.state!r}; known: {list(JOB_STATES)}")

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "id": self.id,
            "spec": dict(self.spec),
            "state": self.state,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "error": self.error,
            "backend_tier": self.backend_tier,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        _check_schema(data, "job status")
        if "id" not in data or "spec" not in data:
            raise SpecError(f"job status is missing 'id'/'spec': {dict(data)!r}")
        return cls(
            id=str(data["id"]),
            spec=dict(data["spec"]),
            state=str(data.get("state", "queued")),
            cells_total=int(data.get("cells_total", 0)),
            cells_done=int(data.get("cells_done", 0)),
            error=data.get("error"),
            backend_tier=data.get("backend_tier"),
            submitted_at=data.get("submitted_at"),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            attempts=int(data.get("attempts", 0)),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "JobStatus":
        return cls.from_dict(json.loads(text))
