"""repro — reproduction of "Distributed Graph Coloring Made Easy" (Maus, SPAA 2021).

The package is organised around four layers:

``repro.congest``
    A faithful round-synchronous simulator of the LOCAL and CONGEST models of
    distributed computing: static graphs, per-node algorithms that only see
    their own state and received messages, and per-message bit accounting.

``repro.fields``
    The algebraic substrate used by the paper's color-sequence construction:
    primes in Bertrand intervals, polynomials over finite fields and the
    low-intersection property (Lemma 2.1), and low-intersecting set families.

``repro.core``
    The paper's contribution: the mother algorithm (Theorem 1.1), its
    parameterizations (Corollary 1.2), Linial's coloring, the (Delta+1)
    pipelines, Theorem 1.3, ruling sets (Theorem 1.5), one-round color
    reduction (Theorem 1.6), and the baselines the paper compares against.

``repro.engine``
    The pluggable execution-engine layer: the ``Engine`` backend contract, the
    model-faithful ``ReferenceEngine`` (per-node scheduler), the vectorized
    ``ArrayEngine`` (CSR NumPy twin, identical outputs), and the
    ``BatchRunner`` that sweeps (graph x seed x params) grids with shared
    precomputed structures, built-in reference-parity checking, process-pool
    sharding (``workers=N``) and streaming, resumable JSONL/CSV result sinks.
    Every algorithm accepts ``backend="reference" | "array"``.

``repro.verify`` / ``repro.analysis``
    Validation of colorings / orientations / partitions / ruling sets, and the
    experiment harness that regenerates the tables in ``EXPERIMENTS.md``.

Quickstart
----------

>>> from repro.congest import generators
>>> from repro.core import pipelines
>>> g = generators.random_regular(n=200, degree=8, seed=1)
>>> result = pipelines.delta_plus_one_coloring(g, seed=1, backend="array")
>>> result.num_colors <= g.max_degree + 1
True
"""

from repro.congest.graph import Graph
from repro.congest.runner import run_algorithm
from repro.core.results import ColoringResult
from repro.engine import (
    ArrayEngine,
    BatchRunner,
    Engine,
    GraphSpec,
    ReferenceEngine,
    get_engine,
)

__version__ = "1.3.0"

__all__ = [
    "Graph",
    "run_algorithm",
    "ColoringResult",
    "Engine",
    "ReferenceEngine",
    "ArrayEngine",
    "get_engine",
    "BatchRunner",
    "GraphSpec",
    "__version__",
]
