"""repro — reproduction of "Distributed Graph Coloring Made Easy" (Maus, SPAA 2021).

The package is organised around four layers:

``repro.congest``
    A faithful round-synchronous simulator of the LOCAL and CONGEST models of
    distributed computing: static graphs, per-node algorithms that only see
    their own state and received messages, and per-message bit accounting.

``repro.fields``
    The algebraic substrate used by the paper's color-sequence construction:
    primes in Bertrand intervals, polynomials over finite fields and the
    low-intersection property (Lemma 2.1), and low-intersecting set families.

``repro.core``
    The paper's contribution: the mother algorithm (Theorem 1.1), its
    parameterizations (Corollary 1.2), Linial's coloring, the (Delta+1)
    pipelines, Theorem 1.3, ruling sets (Theorem 1.5), one-round color
    reduction (Theorem 1.6), and the baselines the paper compares against.

``repro.engine``
    The pluggable execution-engine layer: the ``Engine`` backend contract, the
    model-faithful ``ReferenceEngine`` (per-node scheduler), the vectorized
    ``ArrayEngine`` (CSR NumPy twin, identical outputs), and the
    ``BatchRunner`` that sweeps (graph x seed x params) grids with shared
    precomputed structures, built-in reference-parity checking, process-pool
    sharding (``workers=N``) and streaming, resumable JSONL/CSV result sinks.
    Every algorithm accepts ``backend="reference" | "array"``.

``repro.api``
    The unified, declarative front door: a typed algorithm *registry*
    (``@register_algorithm`` — the ``repro.core`` modules self-register, and
    the CLI, batch runner and ``repro list-algorithms`` are generated from
    it), JSON-round-trippable ``Problem``/``Run``/``JobSpec`` request objects,
    ``solve(problem, run)`` returning a structured ``RunReport``, and
    ``run_spec`` for saved sweeps (``repro run --spec run.json``).

``repro.verify`` / ``repro.analysis``
    Validation of colorings / orientations / partitions / ruling sets, and the
    experiment harness that regenerates the tables in ``EXPERIMENTS.md`` —
    every experiment also ships as a saved spec under ``specs/``.

Quickstart
----------

>>> from repro.api import GraphSpec, Problem, Run, solve
>>> report = solve(Problem(graph=GraphSpec("random_regular", 200, 8, seed=1)),
...                Run(algorithm="delta_plus_one", backend="array"))
>>> report.num_colors <= report.record["Delta"] + 1
True
"""

from repro.congest.graph import Graph
from repro.congest.runner import run_algorithm
from repro.core.results import ColoringResult
from repro.engine import (
    ArrayEngine,
    BatchRunner,
    Engine,
    GraphSpec,
    ReferenceEngine,
    get_engine,
)
from repro.api import (
    AlgorithmSpec,
    JobSpec,
    Problem,
    Run,
    RunReport,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    run_spec,
    solve,
)

__version__ = "1.9.0"

__all__ = [
    "Graph",
    "run_algorithm",
    "ColoringResult",
    "Engine",
    "ReferenceEngine",
    "ArrayEngine",
    "get_engine",
    "BatchRunner",
    "GraphSpec",
    "AlgorithmSpec",
    "JobSpec",
    "Problem",
    "Run",
    "RunReport",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "run_spec",
    "solve",
    "__version__",
]
