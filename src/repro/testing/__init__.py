"""repro.testing — test-support seams shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness of the execution
plane: a spec/env-driven way to kill workers mid-cell, hang kernels past
their deadlines, fail sink writes, or poison the jit tier.  It ships in the
package (not under ``tests/``) because the seams it drives live in production
modules and must be importable from freshly spawned worker processes.
"""

from repro.testing import faults

__all__ = ["faults"]
