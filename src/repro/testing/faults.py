"""Fault injection for the execution plane: kill, hang, raise — on demand.

The hard part of testing fault tolerance is *causing* faults deterministically
in the right process: a pool worker mid-cell, the parent mid-sink-write, the
jit tier inside a kernel call.  This module is the one seam for all of it.

A :class:`FaultPlan` is a list of :class:`Fault` triggers.  Production code
calls :func:`fire` at a handful of fixed *sites*; when an installed plan has
a matching fault, the fault's *op* executes:

========== ===================================================================
site       fired from
========== ===================================================================
cell       the start of every cell attempt (serial runner and pool workers)
sink-write just before a sink appends a record (JSONL and CSV)
jit        the entry of every :class:`~repro.engine.jit.JitEngine` primitive
server-cell the job server's per-cell progress hook (worker threads)
========== ===================================================================

========== ===================================================================
op         effect
========== ===================================================================
raise      raise the configured exception type (default :class:`InjectedFault`)
kill       ``SIGKILL`` the current process — a real, uncatchable worker death
exit       ``os._exit(code)`` — death without signal delivery
hang       sleep ``seconds`` (then return) — a kernel blowing its deadline
========== ===================================================================

Plans install two ways:

* :func:`install` — programmatic, current process only (in-process tests).
* the ``REPRO_FAULTS`` environment variable — the plan's JSON form.  The
  environment is inherited by pool workers under both ``fork`` and ``spawn``
  start methods, which is what lets a test kill a worker the *parent* never
  sees from the inside.

Triggers select their firing point with ``nth`` (the Nth matching hit of the
site, counted per process), ``match`` (equality on the context the site
passes — e.g. ``{"seed": 2}`` or ``{"attempt": 1}``), and ``once`` (a named
cross-process marker: the fault fires a single time *globally*, implemented
as an ``O_EXCL`` marker file in ``marker_dir``).  ``once`` is what makes
kill/hang faults converge: the respawned worker that retries the cell
inherits the same plan, finds the marker, and runs the cell cleanly.

The no-plan fast path is one dict lookup plus an environment read — cheap
enough to leave the seams in production code unconditionally.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "ENV_VAR",
    "SITES",
    "OPS",
    "InjectedFault",
    "Fault",
    "FaultPlan",
    "install",
    "clear",
    "active_plan",
    "fire",
    "fired_names",
    "reset_counters",
]

#: Environment variable carrying a JSON-serialized :class:`FaultPlan`.
ENV_VAR = "REPRO_FAULTS"

SITES = ("cell", "sink-write", "jit", "server-cell")
OPS = ("raise", "kill", "exit", "hang")


class InjectedFault(RuntimeError):
    """The default exception an injected ``raise`` fault throws."""


#: Exception types a ``raise`` fault may name.  A closed set: the plan format
#: crosses process boundaries as env text, so it names types, not pickles.
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "InjectedFault": InjectedFault,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "OSError": OSError,
    "MemoryError": MemoryError,
    "SystemExit": SystemExit,
    "KeyboardInterrupt": KeyboardInterrupt,
}


@dataclass(frozen=True)
class Fault:
    """One trigger: *when* to fire (site/nth/match/once) and *what* to do (op)."""

    site: str
    op: str = "raise"
    nth: int | None = None
    match: tuple[tuple[str, Any], ...] = ()
    seconds: float = 0.0
    exception: str = "InjectedFault"
    message: str = "injected fault"
    once: str | None = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {list(SITES)}")
        if self.op not in OPS:
            raise ValueError(f"unknown fault op {self.op!r}; known: {list(OPS)}")
        if self.op == "raise" and self.exception not in _EXCEPTIONS:
            raise ValueError(f"unknown fault exception {self.exception!r}; "
                             f"known: {sorted(_EXCEPTIONS)}")
        if self.nth is not None and (not isinstance(self.nth, int) or self.nth < 1):
            raise ValueError(f"Fault.nth must be a 1-based int, got {self.nth!r}")
        if isinstance(self.match, Mapping):
            object.__setattr__(self, "match", tuple(sorted(self.match.items())))

    def matches(self, context: Mapping[str, Any]) -> bool:
        return all(key in context and context[key] == value for key, value in self.match)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "op": self.op}
        if self.nth is not None:
            out["nth"] = self.nth
        if self.match:
            out["match"] = dict(self.match)
        if self.op == "hang":
            out["seconds"] = self.seconds
        if self.op == "raise":
            out["exception"] = self.exception
            out["message"] = self.message
        if self.once is not None:
            out["once"] = self.once
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fault":
        known = {"site", "op", "nth", "match", "seconds", "exception", "message", "once"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault field(s) {sorted(unknown)}; allowed: {sorted(known)}")
        return cls(
            site=str(data["site"]),
            op=str(data.get("op", "raise")),
            nth=data.get("nth"),
            match=tuple(sorted((data.get("match") or {}).items())),
            seconds=float(data.get("seconds", 0.0)),
            exception=str(data.get("exception", "InjectedFault")),
            message=str(data.get("message", "injected fault")),
            once=data.get("once"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A set of faults plus the directory their cross-process markers live in."""

    faults: tuple[Fault, ...] = ()
    marker_dir: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.marker_dir is None and any(f.once is not None for f in self.faults):
            raise ValueError("a FaultPlan with 'once' faults needs a marker_dir "
                             "(the directory the cross-process once-markers live in)")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"faults": [f.to_dict() for f in self.faults]}
        if self.marker_dir is not None:
            out["marker_dir"] = self.marker_dir
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"faults", "marker_dir"}
        if unknown:
            raise ValueError(f"unknown fault plan field(s) {sorted(unknown)}")
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", ())),
            marker_dir=data.get("marker_dir"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def env(self) -> dict[str, str]:
        """The environment entry that ships this plan to child processes."""
        return {ENV_VAR: self.to_json()}


# --------------------------------------------------------------------------- #
# Process-local state
# --------------------------------------------------------------------------- #

#: Programmatically installed plan (wins over the environment).
_installed: FaultPlan | None = None

#: Cache of the parsed environment plan, keyed by the raw env value.
_env_cache: tuple[str, FaultPlan] | None = None

#: Per-site hit counters (per process; a respawned worker starts fresh —
#: cross-process single-fire semantics come from ``once`` markers).
_counters: dict[str, int] = {}

#: Names of faults that fired in *this* process (``once`` name, else
#: ``site#counter``) — the in-process observability hook tests poll.
_fired: list[str] = []


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` in this process (takes precedence over ``REPRO_FAULTS``)."""
    global _installed
    _installed = plan
    reset_counters()


def clear() -> None:
    """Remove any programmatic plan and reset counters/fired state."""
    install(None)


def reset_counters() -> None:
    _counters.clear()
    _fired.clear()


def fired_names() -> tuple[str, ...]:
    """Faults that fired in this process, in order (for tests to poll)."""
    return tuple(_fired)


def active_plan() -> FaultPlan | None:
    """The plan in effect: the installed one, else the ``REPRO_FAULTS`` env plan."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _env_cache is None or _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan.from_json(raw))
        reset_counters()  # a fresh plan counts from zero
    return _env_cache[1]


# --------------------------------------------------------------------------- #
# The seam
# --------------------------------------------------------------------------- #


def _claim_once(plan: FaultPlan, name: str) -> bool:
    """Atomically claim a cross-process once-marker; True if we won the race."""
    path = os.path.join(plan.marker_dir, f"repro-fault-{name}.marker")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unusable marker dir: fail safe (never fire twice-able ops)
    os.write(fd, f"pid={os.getpid()}\n".encode("ascii"))
    os.close(fd)
    return True


def fire(site: str, **context: Any) -> None:
    """The production-code seam: evaluate the active plan at ``site``.

    ``context`` is whatever the call site knows (cell identity, attempt
    number, write count, job id); ``match`` entries test equality against it.
    Returns immediately when no plan is active.
    """
    plan = active_plan()
    if plan is None:
        return
    _counters[site] = _counters.get(site, 0) + 1
    count = _counters[site]
    for fault in plan.faults:
        if fault.site != site:
            continue
        if fault.nth is not None and fault.nth != count:
            continue
        if not fault.matches(context):
            continue
        if fault.once is not None and not _claim_once(plan, fault.once):
            continue
        _fired.append(fault.once or f"{site}#{count}")
        _execute(fault)


def _execute(fault: Fault) -> None:
    if fault.op == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover — never survives the signal
    elif fault.op == "exit":
        os._exit(137)
    elif fault.op == "hang":
        time.sleep(fault.seconds)
    else:  # "raise"
        raise _EXCEPTIONS[fault.exception](fault.message)
