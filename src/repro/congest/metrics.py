"""Execution metrics: rounds, message counts, and bandwidth.

The complexity measure of the LOCAL/CONGEST models is the number of
synchronous rounds; CONGEST additionally constrains the per-message size.
:class:`RunResult` records both, plus total message counts, so the experiment
harness can report measured round complexities next to the paper's bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RoundMetrics", "RunResult"]


@dataclass(frozen=True)
class RoundMetrics:
    """Per-round statistics."""

    round_index: int
    messages_sent: int
    total_bits: int
    max_message_bits: int
    active_nodes: int


@dataclass
class RunResult:
    """Result of running a distributed algorithm to completion.

    Attributes
    ----------
    outputs:
        ``outputs[v]`` is node ``v``'s local output.
    rounds:
        Number of synchronous communication rounds executed.
    round_metrics:
        One :class:`RoundMetrics` per round.
    model:
        ``"LOCAL"`` or ``"CONGEST"``.
    """

    outputs: list[Any]
    rounds: int
    round_metrics: list[RoundMetrics] = field(default_factory=list)
    model: str = "CONGEST"

    @property
    def total_messages(self) -> int:
        """Total number of messages sent over the whole execution."""
        return sum(m.messages_sent for m in self.round_metrics)

    @property
    def total_bits(self) -> int:
        """Total number of payload bits sent over the whole execution."""
        return sum(m.total_bits for m in self.round_metrics)

    @property
    def max_message_bits(self) -> int:
        """Largest single message (in bits) observed during the execution."""
        if not self.round_metrics:
            return 0
        return max(m.max_message_bits for m in self.round_metrics)

    def summary(self) -> dict[str, Any]:
        """Compact dictionary summary used by the experiment tables."""
        return {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "model": self.model,
        }
