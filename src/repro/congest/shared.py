"""Zero-copy publication of CSR graphs via POSIX shared memory.

This module is the mechanism behind :meth:`repro.congest.graph.Graph.to_shared`
and :meth:`~repro.congest.graph.Graph.from_shared`: the immutable CSR triplet
(``indptr``, ``indices``, ``src_index``) of a graph is written once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, and every process
that needs the graph maps the *same* physical pages read-only.  A parallel
sweep over a million-vertex graph therefore keeps exactly one copy of the
adjacency in memory, no matter how many workers run (mirroring the data-flow
split between transient per-event state and shared immutable geometry that
MAUS uses — see PAPERS.md).

Design notes
------------

* **Handles, not objects, cross process boundaries.**
  :class:`SharedGraphHandle` carries only the segment name and the array
  shapes; it is picklable and a few dozen bytes.  Workers attach by name.
* **Refcounted unlink-on-close.**  Every publication and attachment in a
  process takes a reference on the process-local registry entry; releasing
  the last reference closes the mapping and — in the publishing process —
  unlinks the segment from ``/dev/shm``.  ``atexit`` reclaims anything still
  open, so a crashed sweep cannot leak segments from the parent.
* **Resource-tracker hygiene.**  Python's :mod:`multiprocessing` resource
  tracker registers every ``SharedMemory`` *attachment* for cleanup-at-exit,
  which would make the first worker to exit unlink a segment the parent still
  owns (bpo-39959).  Attachments therefore suppress the registration call
  (pre-3.13 has no ``track=False``); only the publishing process registers
  and unlinks, so a pool of workers sharing the parent's tracker produces
  neither early unlinks nor tracker KeyErrors.
* **Unlink is decoupled from unmap.**  POSIX allows unlinking a segment that
  is still mapped: the name disappears from ``/dev/shm`` at once and the
  pages are freed when the last mapping dies.  If NumPy views still hold the
  buffer when the last reference is dropped, the close is deferred to
  interpreter exit instead of raising ``BufferError``.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "SharedGraphHandle",
    "SharedGraphLease",
    "publish",
    "reshare",
    "attach",
    "release",
    "open_segments",
    "cleanup_all",
]

_ITEM = np.dtype(np.int64).itemsize

#: Registry of segments this process has open: name -> [shm, owner, refs].
_SEGMENTS: dict[str, list] = {}
_LOCK = threading.Lock()


def _segment_name() -> str:
    """A recognisable, collision-safe segment name (``/dev/shm/repro-g-*``)."""
    return f"repro-g-{os.getpid():x}-{secrets.token_hex(4)}"


class SharedGraphHandle:
    """Picklable descriptor of a graph published in shared memory.

    Holds one reference on the segment in the process that created it (the
    attaching side takes its own references).  ``close()`` drops that
    reference; the handle also works as a context manager::

        with graph.to_shared() as handle:
            ...ship ``handle`` to workers...
        # publisher's reference dropped; segment unlinked once unreferenced
    """

    __slots__ = ("name", "n", "num_entries", "_open")

    def __init__(self, name: str, n: int, num_entries: int):
        self.name = name
        self.n = int(n)
        self.num_entries = int(num_entries)
        self._open = True

    def close(self) -> None:
        """Drop this handle's reference on the segment (idempotent)."""
        if self._open:
            self._open = False
            release(self.name)

    def __enter__(self) -> "SharedGraphHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getstate__(self):
        return (self.name, self.n, self.num_entries)

    def __setstate__(self, state):
        self.name, self.n, self.num_entries = state
        self._open = False  # an unpickled handle owns no local reference

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedGraphHandle(name={self.name!r}, n={self.n}, "
            f"num_entries={self.num_entries})"
        )


class SharedGraphLease:
    """One attached graph's reference on a segment, released on GC."""

    __slots__ = ("name", "_open", "__weakref__")

    def __init__(self, name: str):
        self.name = name
        self._open = True

    def release(self) -> None:
        if self._open:
            self._open = False
            release(self.name)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass


def _layout(n: int, num_entries: int) -> tuple[int, int, int]:
    """Byte offsets of (indices, src_index) and the total segment size."""
    indptr_bytes = (n + 1) * _ITEM
    entries_bytes = num_entries * _ITEM
    return indptr_bytes, indptr_bytes + entries_bytes, indptr_bytes + 2 * entries_bytes


def publish(indptr: np.ndarray, indices: np.ndarray, src_index: np.ndarray) -> SharedGraphHandle:
    """Copy the CSR triplet into a fresh shared segment; return its handle."""
    n = indptr.size - 1
    num_entries = indices.size
    off_indices, off_src, total = _layout(n, num_entries)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=_segment_name())
    buf = np.frombuffer(shm.buf, dtype=np.int64)
    buf[: n + 1] = indptr
    buf[n + 1 : n + 1 + num_entries] = indices
    buf[n + 1 + num_entries : n + 1 + 2 * num_entries] = src_index
    del buf
    with _LOCK:
        _SEGMENTS[shm.name] = [shm, True, 1]
    return SharedGraphHandle(shm.name, n, num_entries)


def reshare(name: str, n: int, num_entries: int) -> SharedGraphHandle:
    """A new handle (new reference) on a segment this process already has open."""
    with _LOCK:
        _SEGMENTS[name][2] += 1
    return SharedGraphHandle(name, n, num_entries)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment WITHOUT registering it with the resource tracker.

    The publisher owns unlinking; a tracker registration from an attacher
    would let the first exiting worker unlink a segment the parent still owns
    (bpo-39959), and unregister-after-attach is no better when several
    processes share one tracker (its cache is a set, so the first worker's
    unregister erases the parent's registration and later unregisters raise
    KeyErrors inside the tracker).  On Python >= 3.13 ``track=False`` does
    this natively.  Before 3.13 the registration call is intercepted: the
    interception targets *only this segment's* registration and passes every
    other (name, rtype) through, so a concurrent thread creating an unrelated
    tracked resource during the window is still registered correctly.  (The
    swap of the module attribute itself is the one remaining thread-hazard —
    unavoidable pre-3.13 — and the window is a single ``shm_open`` + mmap.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    orig_register = resource_tracker.register

    def _register_passthrough(resource_name: str, rtype: str) -> None:
        if rtype == "shared_memory" and resource_name.lstrip("/") == name:
            return
        orig_register(resource_name, rtype)

    resource_tracker.register = _register_passthrough
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def attach(handle: SharedGraphHandle):
    """Map a published segment; return read-only views plus a refcount lease.

    Returns ``(indptr, indices, src_index, lease)``.  The views are zero-copy
    slices of the shared buffer and are marked read-only; ``lease`` keeps the
    mapping alive and releases the reference when garbage collected.
    """
    with _LOCK:
        entry = _SEGMENTS.get(handle.name)
        if entry is not None:
            entry[2] += 1
            shm = entry[0]
        else:
            shm = _attach_untracked(handle.name)
            _SEGMENTS[handle.name] = entry = [shm, False, 1]
    n, num_entries = handle.n, handle.num_entries
    flat = np.frombuffer(shm.buf, dtype=np.int64)
    indptr = flat[: n + 1]
    indices = flat[n + 1 : n + 1 + num_entries]
    src_index = flat[n + 1 + num_entries : n + 1 + 2 * num_entries]
    for a in (indptr, indices, src_index):
        a.setflags(write=False)
    return indptr, indices, src_index, SharedGraphLease(handle.name)


def _quiet_close(shm: shared_memory.SharedMemory) -> None:
    """Close a mapping without ever raising or leaving a noisy ``__del__``.

    If NumPy views still export the buffer, ``mmap.close()`` refuses
    (``BufferError``).  In that case the mmap handle is forgotten — the OS
    unmaps the pages when the last view dies — the file descriptor is closed
    immediately, and ``SharedMemory.__del__`` finds nothing left to do.
    """
    try:
        shm.close()
    except BufferError:
        # close() released ``_buf`` before failing on the mmap.
        shm._mmap = None  # type: ignore[attr-defined]
        if shm._fd >= 0:  # type: ignore[attr-defined]
            os.close(shm._fd)  # type: ignore[attr-defined]
            shm._fd = -1  # type: ignore[attr-defined]


def release(name: str) -> None:
    """Drop one reference on a segment; close/unlink when the count hits zero."""
    with _LOCK:
        entry = _SEGMENTS.get(name)
        if entry is None:
            return
        entry[2] -= 1
        if entry[2] > 0:
            return
        del _SEGMENTS[name]
        shm, owner = entry[0], entry[1]
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    _quiet_close(shm)


def open_segments() -> list[str]:
    """Names of the segments this process currently holds references on."""
    with _LOCK:
        return sorted(_SEGMENTS)


@atexit.register
def cleanup_all() -> None:
    """Unlink every segment this process still owns (crash/interrupt safety)."""
    with _LOCK:
        entries = list(_SEGMENTS.values())
        _SEGMENTS.clear()
    for shm, owner, _refs in entries:
        if owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        _quiet_close(shm)
