"""Message envelopes and CONGEST bit accounting.

The CONGEST model limits every message to ``O(log n)`` bits.  The simulator
does not serialize messages; instead :func:`message_bits` computes a
conservative bit-size estimate of the payload so the runner can record the
maximum message size of an execution and (optionally) enforce the CONGEST
budget.

Payloads are restricted to a small, explicitly supported vocabulary — ``None``,
``bool``, ``int``, ``str`` tags, and flat tuples/lists of those — which keeps
the accounting honest: algorithms cannot smuggle unbounded state through an
opaque Python object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Broadcast", "message_bits", "UnsupportedPayload"]


class UnsupportedPayload(TypeError):
    """Raised when a message payload is outside the supported vocabulary."""


@dataclass(frozen=True)
class Broadcast:
    """Marker meaning "send this payload to every neighbor".

    Most algorithms in the paper are broadcast algorithms (each node sends the
    same trial/color to all neighbors), which also matches the CONGEST
    convention that a node may send *different* messages per neighbor but
    rarely needs to.
    """

    payload: Any


def _int_bits(value: int) -> int:
    """Bits needed for a (signed) integer, at least 1."""
    return max(1, int(abs(int(value))).bit_length() + (1 if value < 0 else 0))


def message_bits(payload: Any) -> int:
    """Conservative bit size of a message payload.

    * ``None`` counts 1 bit (presence flag).
    * ``bool`` counts 1 bit.
    * ``int`` counts its binary length.
    * ``str`` tags count 8 bits per character (tags are short constants such as
      ``"TRY"`` or ``"COLORED"``; they stand for an ``O(1)``-bit opcode).
    * tuples / lists count the sum of their elements plus 2 bits of framing per
      element.

    Raises
    ------
    UnsupportedPayload
        If the payload contains anything outside this vocabulary (e.g. dicts,
        sets, arbitrary objects).
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int,)):
        return _int_bits(payload)
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list)):
        total = 0
        for item in payload:
            total += 2 + message_bits(item)
        return max(1, total)
    raise UnsupportedPayload(
        f"unsupported message payload of type {type(payload).__name__}: {payload!r}"
    )
