"""Round-synchronous LOCAL / CONGEST simulator substrate.

The LOCAL and CONGEST models (Linial; Peleg) abstract a communication network
as an undirected graph.  Computation proceeds in synchronous rounds; per round
every node may send one message to each neighbor, receive the messages sent to
it, and update its local state.  In LOCAL the message size is unbounded, in
CONGEST it is limited to ``O(log n)`` bits.

This subpackage provides

* :class:`repro.congest.graph.Graph` — a static undirected graph in CSR form,
* :mod:`repro.congest.generators` — the graph families used in the experiments,
* :class:`repro.congest.node.NodeAlgorithm` — the per-node algorithm API which
  enforces locality (a node only sees its own state and received messages),
* :class:`repro.congest.network.SynchronousNetwork` — the round scheduler with
  per-message bit accounting,
* :func:`repro.congest.runner.run_algorithm` — a run-to-completion driver that
  collects round/message/bandwidth metrics.
"""

from repro.congest.graph import Graph
from repro.congest.messages import Broadcast, message_bits
from repro.congest.metrics import RoundMetrics, RunResult
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.network import SynchronousNetwork, CongestViolation
from repro.congest.runner import run_algorithm

__all__ = [
    "Graph",
    "Broadcast",
    "message_bits",
    "RoundMetrics",
    "RunResult",
    "NodeAlgorithm",
    "NodeContext",
    "SynchronousNetwork",
    "CongestViolation",
    "run_algorithm",
]
