"""Graph families used by the tests, examples and benchmarks.

Every generator returns a :class:`repro.congest.graph.Graph`.  All randomized
generators take an explicit ``seed`` so experiments are reproducible.  The
families cover the graphs distributed-coloring papers typically argue about:
rings and paths (Linial's lower bound), bounded-degree random graphs
(random regular, Erdos-Renyi), grids/tori, trees, complete, crown and complete
bipartite graphs (worst cases for greedy arguments) and power-law-ish graphs
(skewed degrees).

Every family is *array-native*: generators assemble an ``(m, 2)`` edge array
with ``arange`` arithmetic (deterministic families) or per-round vectorized
draws (randomized families) and hand it to :meth:`Graph.from_edge_array`, the
fully vectorized CSR constructor — no generator appends edges one Python
tuple at a time.  Deterministic families and the block-drawing random
families build million-vertex instances in fractions of a second;
``power_law_cluster`` keeps one (vectorized) round per attached vertex — the
attachment process is inherently sequential — so it remains the slowest
family at scale.

Randomized streams: ``gnp``, ``random_bipartite`` and ``random_tree`` consume
their :func:`canonical_rng` stream in exactly the same order as the historical
per-edge loops, so equal seeds still produce *identical* graphs.  The
vectorized ``random_regular`` (round-based stub pairing) and
``power_law_cluster`` (batched preferential draws) consume their streams in a
new — still seed-deterministic — order; the golden record suite pins the new
streams.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph, GraphError

__all__ = [
    "canonical_rng",
    "empty_graph",
    "path",
    "ring",
    "complete_graph",
    "complete_bipartite",
    "crown",
    "star",
    "grid",
    "torus",
    "binary_tree",
    "random_tree",
    "caterpillar",
    "gnp",
    "random_regular",
    "random_bipartite",
    "power_law_cluster",
    "disjoint_union",
    "FAMILIES",
    "by_name",
]


def canonical_rng(seed: int | None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` whose stream depends only on ``seed``.

    Every randomized generator in this module draws from this helper so that
    equal seeds produce *identical* graphs everywhere — across calls, across
    interpreter restarts, and across worker processes of a parallel sweep
    (the per-worker workload caches of ``repro.engine`` rebuild graphs
    independently and rely on this).  ``None`` is normalized to ``0`` instead
    of NumPy's OS-entropy default, and NumPy integer scalars are accepted,
    because either would otherwise silently break cross-process determinism.
    """
    if seed is None:
        seed = 0
    return np.random.default_rng(int(seed))


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    return Graph.from_edge_array(n, np.empty((0, 2), dtype=np.int64))


def path(n: int) -> Graph:
    """Path on ``n`` vertices."""
    i = np.arange(max(n - 1, 0), dtype=np.int64)
    return Graph.from_edge_array(n, np.column_stack([i, i + 1]))


def ring(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices (the classic Linial lower-bound family)."""
    if n < 3:
        raise GraphError("a ring needs at least 3 vertices")
    i = np.arange(n, dtype=np.int64)
    return Graph.from_edge_array(n, np.column_stack([i, (i + 1) % n]))


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    iu, ju = np.triu_indices(max(n, 0), k=1)
    return Graph.from_edge_array(n, np.column_stack([iu, ju]).astype(np.int64))


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = a + np.tile(np.arange(b, dtype=np.int64), a)
    return Graph.from_edge_array(a + b, np.column_stack([left, right]))


def crown(n: int) -> Graph:
    """Crown graph ``S_n^0``: ``K_{n,n}`` minus a perfect matching.

    Sides ``0..n-1`` and ``n..2n-1``; vertex ``i`` is adjacent to every
    opposite-side vertex except ``n + i``.  An ``(n-1)``-regular bipartite
    family, a classic worst case for greedy arguments.
    """
    if n < 2:
        raise GraphError("a crown graph needs at least 2 vertices per side")
    left = np.repeat(np.arange(n, dtype=np.int64), n)
    right = n + np.tile(np.arange(n, dtype=np.int64), n)
    keep = left != right - n
    return Graph.from_edge_array(2 * n, np.column_stack([left[keep], right[keep]]))


def star(n: int) -> Graph:
    """Star with one center (vertex 0) and ``n - 1`` leaves."""
    leaves = np.arange(1, max(n, 1), dtype=np.int64)
    return Graph.from_edge_array(n, np.column_stack([np.zeros_like(leaves), leaves]))


def grid(rows: int, cols: int) -> Graph:
    """2D grid graph (max degree 4)."""
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    vert = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    return Graph.from_edge_array(rows * cols, np.concatenate([horiz, vert]))


def torus(rows: int, cols: int) -> Graph:
    """2D torus (grid with wraparound, 4-regular when rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows >= 3 and cols >= 3")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.roll(idx, -1, axis=1)
    down = np.roll(idx, -1, axis=0)
    edges = np.concatenate([
        np.column_stack([idx.ravel(), right.ravel()]),
        np.column_stack([idx.ravel(), down.ravel()]),
    ])
    return Graph.from_edge_array(rows * cols, edges)


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root has depth 0)."""
    n = 2 ** (depth + 1) - 1
    v = np.arange(1, n, dtype=np.int64)
    return Graph.from_edge_array(n, np.column_stack([v, (v - 1) // 2]))


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random recursive tree: vertex ``i`` attaches to a random earlier vertex.

    One vectorized bounded-integer draw per vertex (array ``high``), consuming
    the seed's stream in the same order as the historical per-vertex loop —
    equal seeds produce the same tree as ever.
    """
    rng = canonical_rng(seed)
    if n < 2:
        return empty_graph(n)
    children = np.arange(1, n, dtype=np.int64)
    parents = rng.integers(0, children)
    return Graph.from_edge_array(n, np.column_stack([children, parents]))


def caterpillar(spine: int, legs: int) -> Graph:
    """Caterpillar: a path of length ``spine`` with ``legs`` pendant leaves per spine vertex."""
    s = np.arange(max(spine - 1, 0), dtype=np.int64)
    spine_edges = np.column_stack([s, s + 1])
    sources = np.repeat(np.arange(spine, dtype=np.int64), legs)
    leaves = spine + np.arange(spine * legs, dtype=np.int64)
    leg_edges = np.column_stack([sources, leaves])
    n = spine + spine * legs
    return Graph.from_edge_array(n, np.concatenate([spine_edges, leg_edges]))


def gnp(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos-Renyi ``G(n, p)`` random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = canonical_rng(seed)
    if n < 2:
        return empty_graph(n)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    return Graph.from_edge_array(n, edges)


def random_regular(n: int, degree: int, seed: int = 0, max_restarts: int = 500) -> Graph:
    """Random ``degree``-regular simple graph (pairing model, vectorized rounds).

    Requires ``n * degree`` even and ``degree < n``.  Each round permutes the
    remaining stubs and pairs them off two at a time *in one array operation*;
    pairs that would create a self-loop or a duplicate edge (within the round
    or against already-accepted edges) are rejected and their stubs re-enter
    the next round (Steger-Wormald style).  If a round makes no progress the
    construction restarts with fresh randomness.  For ``degree`` well below
    ``n`` almost every pair is accepted in the first round, so the whole build
    is a handful of ``O(n * degree)`` array passes.
    """
    if degree >= n:
        raise GraphError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    if degree == 0:
        return empty_graph(n)

    rng = canonical_rng(seed)

    for _ in range(max_restarts):
        stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
        accepted = np.empty(0, dtype=np.int64)  # canonical keys lo * n + hi
        stuck = False
        while stubs.size:
            stubs = rng.permutation(stubs)
            u, v = stubs[0::2], stubs[1::2]
            lo, hi = np.minimum(u, v), np.maximum(u, v)
            key = lo * np.int64(n) + hi
            # Reject self loops, duplicates against accepted edges (binary
            # search into the sorted ``accepted``), and all but the first
            # occurrence of a key repeated within this round (stable argsort:
            # equal keys keep pairing order, so "first" matches a sequential
            # scan of the round's pairs).
            ok = lo != hi
            if accepted.size:
                pos = np.minimum(np.searchsorted(accepted, key), accepted.size - 1)
                ok &= accepted[pos] != key
            order = np.argsort(key, kind="stable")
            sorted_key = key[order]
            dup_sorted = np.zeros(key.size, dtype=bool)
            dup_sorted[1:] = sorted_key[1:] == sorted_key[:-1]
            dup = np.empty(key.size, dtype=bool)
            dup[order] = dup_sorted
            ok &= ~dup
            if not ok.any():
                stuck = True
                break
            accepted = np.concatenate([accepted, key[ok]])
            accepted.sort()
            rejected = ~ok
            stubs = np.concatenate([u[rejected], v[rejected]])
        if not stuck:
            edges = np.column_stack([accepted // n, accepted % n])
            return Graph.from_edge_array(n, edges)

    raise GraphError(
        f"failed to sample a {degree}-regular graph on {n} vertices after {max_restarts} restarts"
    )


def random_bipartite(a: int, b: int, p: float, seed: int = 0) -> Graph:
    """Random bipartite graph with sides of size ``a`` and ``b`` and edge probability ``p``.

    Row-blocked uniform draws with a ``nonzero`` / ``column_stack`` build per
    block instead of a per-edge append loop.  Row-major blocks consume the
    stream in exactly the historical per-row order, so equal seeds produce
    the same graph as ever; blocking (rather than one ``(a, b)`` array) keeps
    peak memory bounded when ``a * b`` is huge but the graph itself is sparse.
    """
    rng = canonical_rng(seed)
    rows_per_block = max(1, (1 << 24) // max(b, 1))
    parts = []
    for start in range(0, a, rows_per_block):
        mask = rng.random((min(rows_per_block, a - start), b)) < p
        i, j = np.nonzero(mask)
        parts.append(np.column_stack([start + i.astype(np.int64),
                                      a + j.astype(np.int64)]))
    edges = np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
    return Graph.from_edge_array(a + b, edges)


def power_law_cluster(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph (Barabasi-Albert style) with ``attach`` edges per new vertex.

    Produces a skewed degree distribution; useful as a stress test for the
    coloring algorithms because a handful of vertices have degree close to
    ``Delta`` while most are low degree.

    Vectorized per round: each new vertex draws its ``attach`` distinct
    targets as *batched* index draws into a preallocated endpoint pool (every
    accepted edge contributes both endpoints, which is exactly
    degree-proportional sampling), topping up only on duplicate draws — no
    per-draw Python-list scan, so the build is ``O(n * attach)`` amortized.
    """
    if attach < 1:
        raise GraphError("attach must be >= 1")
    if n <= attach:
        return complete_graph(n)
    rng = canonical_rng(seed)

    # Endpoint pool: 2 slots per edge; clique seed + attach per later vertex.
    clique = complete_graph(attach)
    clique_edges = clique.edge_array()
    total_edges = clique_edges.shape[0] + (n - attach) * attach
    pool = np.empty(2 * total_edges, dtype=np.int64)
    fill = 2 * clique_edges.shape[0]
    pool[:fill] = clique_edges.ravel()

    edges = np.empty((total_edges, 2), dtype=np.int64)
    edges[: clique_edges.shape[0]] = clique_edges
    written = clique_edges.shape[0]

    for new in range(attach, n):
        chosen = np.empty(0, dtype=np.int64)
        while chosen.size < attach:
            need = attach - chosen.size
            if fill:
                # Pool entries are endpoints of already-accepted edges, all
                # strictly below ``new`` — a draw can never hit ``new`` itself.
                picks = pool[rng.integers(0, fill, size=need)]
            else:
                # attach == 1 only: the K_1 seed "clique" has no edges, so the
                # very first new vertex draws uniformly; every accepted edge
                # fills the pool, so all later draws are degree-proportional.
                picks = rng.integers(0, new, size=need)
            chosen = np.unique(np.concatenate([chosen, picks]))
        edges[written : written + attach, 0] = new
        edges[written : written + attach, 1] = chosen
        written += attach
        pool[fill : fill + attach] = chosen
        pool[fill + attach : fill + 2 * attach] = new
        fill += 2 * attach
    return Graph.from_edge_array(n, edges)


def disjoint_union(*graphs: Graph) -> Graph:
    """Disjoint union of graphs (vertex ids shifted)."""
    offset = 0
    parts = []
    for g in graphs:
        parts.append(g.edge_array() + offset)
        offset += g.n
    if parts:
        edges = np.concatenate(parts)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Graph.from_edge_array(offset, edges)


#: Named standard families used by the experiment sweeps, each a callable
#: ``family(n, delta, seed) -> Graph`` producing a graph with ~n vertices and
#: maximum degree close to ``delta``.
FAMILIES = {
    "ring": lambda n, delta, seed: ring(max(n, 3)),
    "random_regular": lambda n, delta, seed: random_regular(
        n + ((n * delta) % 2), delta, seed=seed
    ),
    "gnp": lambda n, delta, seed: gnp(n, min(1.0, delta / max(n - 1, 1)), seed=seed),
    "grid": lambda n, delta, seed: grid(max(2, int(np.sqrt(n))), max(2, int(np.sqrt(n)))),
    "tree": lambda n, delta, seed: random_tree(n, seed=seed),
    "power_law": lambda n, delta, seed: power_law_cluster(n, max(1, delta // 4), seed=seed),
}


def by_name(name: str, n: int, delta: int, seed: int = 0) -> Graph:
    """Instantiate one of the named :data:`FAMILIES`."""
    if name not in FAMILIES:
        raise GraphError(f"unknown graph family {name!r}; known: {sorted(FAMILIES)}")
    return FAMILIES[name](n, delta, seed)
