"""Graph families used by the tests, examples and benchmarks.

Every generator returns a :class:`repro.congest.graph.Graph`.  All randomized
generators take an explicit ``seed`` so experiments are reproducible.  The
families cover the graphs distributed-coloring papers typically argue about:
rings and paths (Linial's lower bound), bounded-degree random graphs
(random regular, Erdos-Renyi), grids/tori, trees, complete and complete
bipartite graphs (worst cases for greedy arguments) and power-law-ish graphs
(skewed degrees).
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph, GraphError

__all__ = [
    "canonical_rng",
    "empty_graph",
    "path",
    "ring",
    "complete_graph",
    "complete_bipartite",
    "star",
    "grid",
    "torus",
    "binary_tree",
    "random_tree",
    "caterpillar",
    "gnp",
    "random_regular",
    "random_bipartite",
    "power_law_cluster",
    "disjoint_union",
    "FAMILIES",
    "by_name",
]


def canonical_rng(seed: int | None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` whose stream depends only on ``seed``.

    Every randomized generator in this module draws from this helper so that
    equal seeds produce *identical* graphs everywhere — across calls, across
    interpreter restarts, and across worker processes of a parallel sweep
    (the per-worker workload caches of ``repro.engine`` rebuild graphs
    independently and rely on this).  ``None`` is normalized to ``0`` instead
    of NumPy's OS-entropy default, and NumPy integer scalars are accepted,
    because either would otherwise silently break cross-process determinism.
    """
    if seed is None:
        seed = 0
    return np.random.default_rng(int(seed))


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    return Graph(n, [])


def path(n: int) -> Graph:
    """Path on ``n`` vertices."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def ring(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices (the classic Linial lower-bound family)."""
    if n < 3:
        raise GraphError("a ring needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


def star(n: int) -> Graph:
    """Star with one center (vertex 0) and ``n - 1`` leaves."""
    return Graph(n, [(0, i) for i in range(1, n)])


def grid(rows: int, cols: int) -> Graph:
    """2D grid graph (max degree 4)."""
    def idx(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
    return Graph(rows * cols, edges)


def torus(rows: int, cols: int) -> Graph:
    """2D torus (grid with wraparound, 4-regular when rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows >= 3 and cols >= 3")

    def idx(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((idx(r, c), idx(r, (c + 1) % cols)))
            edges.append((idx(r, c), idx((r + 1) % rows, c)))
    return Graph(rows * cols, edges)


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root has depth 0)."""
    n = 2 ** (depth + 1) - 1
    edges = []
    for v in range(1, n):
        edges.append((v, (v - 1) // 2))
    return Graph(n, edges)


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random recursive tree: vertex ``i`` attaches to a random earlier vertex."""
    rng = canonical_rng(seed)
    edges = [(i, int(rng.integers(0, i))) for i in range(1, n)]
    return Graph(n, edges)


def caterpillar(spine: int, legs: int) -> Graph:
    """Caterpillar: a path of length ``spine`` with ``legs`` pendant leaves per spine vertex."""
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, nxt))
            nxt += 1
    return Graph(nxt, edges)


def gnp(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos-Renyi ``G(n, p)`` random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = canonical_rng(seed)
    if n < 2:
        return empty_graph(n)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    return Graph.from_edge_array(n, edges)


def random_regular(n: int, degree: int, seed: int = 0, max_restarts: int = 500) -> Graph:
    """Random ``degree``-regular simple graph (pairing model with rejection of bad pairs).

    Requires ``n * degree`` even and ``degree < n``.  Stubs are matched one pair
    at a time, rejecting pairs that would create a self-loop or a parallel
    edge (Steger-Wormald style); if the matching gets stuck the construction
    restarts with fresh randomness.  For ``degree`` well below ``n`` this
    succeeds after very few restarts.
    """
    if degree >= n:
        raise GraphError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    if degree == 0:
        return empty_graph(n)

    rng = canonical_rng(seed)

    for _ in range(max_restarts):
        stubs = rng.permutation(np.repeat(np.arange(n, dtype=np.int64), degree)).tolist()
        edges: set[tuple[int, int]] = set()
        stuck = False
        while stubs:
            placed = False
            # Try a bounded number of random partners for the last stub before
            # declaring the attempt stuck.  Removal uses swap-with-last so each
            # accepted pair costs O(1).
            for _attempt in range(200):
                u = stubs[-1]
                j = int(rng.integers(0, len(stubs) - 1)) if len(stubs) > 1 else 0
                v = stubs[j]
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in edges:
                    continue
                edges.add(key)
                stubs.pop()
                stubs[j] = stubs[-1]
                stubs.pop()
                placed = True
                break
            if not placed:
                stuck = True
                break
        if not stuck:
            # Canonical (sorted) edge order: the sampled *set* of edges is what
            # the seed determines, so hand the constructor an order that cannot
            # depend on set-iteration internals of the running interpreter.
            return Graph(n, sorted(edges))

    raise GraphError(
        f"failed to sample a {degree}-regular graph on {n} vertices after {max_restarts} restarts"
    )


def random_bipartite(a: int, b: int, p: float, seed: int = 0) -> Graph:
    """Random bipartite graph with sides of size ``a`` and ``b`` and edge probability ``p``."""
    rng = canonical_rng(seed)
    edges = []
    for i in range(a):
        mask = rng.random(b) < p
        for j in np.nonzero(mask)[0]:
            edges.append((i, a + int(j)))
    return Graph(a + b, edges)


def power_law_cluster(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph (Barabasi-Albert style) with ``attach`` edges per new vertex.

    Produces a skewed degree distribution; useful as a stress test for the
    coloring algorithms because a handful of vertices have degree close to
    ``Delta`` while most are low degree.
    """
    if attach < 1:
        raise GraphError("attach must be >= 1")
    if n <= attach:
        return complete_graph(n)
    rng = canonical_rng(seed)
    edges: list[tuple[int, int]] = []
    # Start from a small clique so every early vertex has positive degree.
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    for u, v in complete_graph(attach).edges():
        edges.append((u, v))
    for new in range(attach, n):
        chosen = set()
        while len(chosen) < attach:
            pick = int(rng.choice(repeated)) if repeated else int(rng.integers(0, new))
            if pick != new:
                chosen.add(pick)
        for t in chosen:
            edges.append((new, t))
            repeated.append(t)
            repeated.append(new)
        targets.append(new)
    return Graph(n, edges)


def disjoint_union(*graphs: Graph) -> Graph:
    """Disjoint union of graphs (vertex ids shifted)."""
    offset = 0
    n = 0
    edges = []
    for g in graphs:
        for u, v in g.edges():
            edges.append((u + offset, v + offset))
        offset += g.n
        n += g.n
    return Graph(n, edges)


#: Named standard families used by the experiment sweeps, each a callable
#: ``family(n, delta, seed) -> Graph`` producing a graph with ~n vertices and
#: maximum degree close to ``delta``.
FAMILIES = {
    "ring": lambda n, delta, seed: ring(max(n, 3)),
    "random_regular": lambda n, delta, seed: random_regular(
        n + ((n * delta) % 2), delta, seed=seed
    ),
    "gnp": lambda n, delta, seed: gnp(n, min(1.0, delta / max(n - 1, 1)), seed=seed),
    "grid": lambda n, delta, seed: grid(max(2, int(np.sqrt(n))), max(2, int(np.sqrt(n)))),
    "tree": lambda n, delta, seed: random_tree(n, seed=seed),
    "power_law": lambda n, delta, seed: power_law_cluster(n, max(1, delta // 4), seed=seed),
}


def by_name(name: str, n: int, delta: int, seed: int = 0) -> Graph:
    """Instantiate one of the named :data:`FAMILIES`."""
    if name not in FAMILIES:
        raise GraphError(f"unknown graph family {name!r}; known: {sorted(FAMILIES)}")
    return FAMILIES[name](n, delta, seed)
