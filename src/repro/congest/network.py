"""The synchronous round scheduler for the LOCAL and CONGEST models.

:class:`SynchronousNetwork` owns one :class:`~repro.congest.node.NodeAlgorithm`
instance per vertex and drives the round structure:

1. every non-halted node produces its outgoing messages from its state at the
   *start* of the round (the scheduler collects all outboxes before delivering
   anything, so no node can react to a message from the same round),
2. messages are delivered along edges,
3. every non-halted node processes its inbox.

The scheduler also accounts message sizes in bits (:func:`message_bits`) and,
when ``model="CONGEST"`` and ``strict_bandwidth=True``, raises
:class:`CongestViolation` if a message exceeds ``bandwidth_factor * log2(n)``
bits.  Under ``model="LOCAL"`` messages are unbounded by definition, so
per-payload bit accounting is skipped entirely (the bit columns of the round
metrics report 0); message *counts* are still recorded.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from repro.congest.graph import Graph
from repro.congest.messages import Broadcast, message_bits
from repro.congest.metrics import RoundMetrics, RunResult
from repro.congest.node import NodeAlgorithm, NodeContext

__all__ = ["SynchronousNetwork", "CongestViolation", "AlgorithmFactory"]

#: Callable that builds one node algorithm from a node context.
AlgorithmFactory = Callable[[NodeContext], NodeAlgorithm]


class CongestViolation(RuntimeError):
    """A message exceeded the CONGEST bandwidth budget in strict mode."""


class SynchronousNetwork:
    """Round-synchronous execution of a per-node algorithm on a graph.

    Parameters
    ----------
    graph:
        The communication graph.
    factory:
        Callable building a :class:`NodeAlgorithm` from each node's
        :class:`NodeContext`.
    globals:
        Globally known values handed to every node (``n`` and ``delta`` are
        always added automatically).
    model:
        ``"CONGEST"`` (default) or ``"LOCAL"``.
    bandwidth_factor:
        CONGEST allows messages of ``O(log n)`` bits; a message is flagged when
        it exceeds ``bandwidth_factor * max(1, log2(n))`` bits.
    strict_bandwidth:
        If True, a flagged message raises :class:`CongestViolation`; otherwise
        violations are only counted (``self.bandwidth_violations``).
    """

    def __init__(
        self,
        graph: Graph,
        factory: AlgorithmFactory,
        globals: Mapping[str, Any] | None = None,
        model: str = "CONGEST",
        bandwidth_factor: float = 32.0,
        strict_bandwidth: bool = False,
    ):
        if model not in ("CONGEST", "LOCAL"):
            raise ValueError(f"model must be 'CONGEST' or 'LOCAL', got {model!r}")
        self.graph = graph
        self.model = model
        self.bandwidth_factor = float(bandwidth_factor)
        self.strict_bandwidth = bool(strict_bandwidth)
        self.bandwidth_violations = 0
        self.rounds_executed = 0
        self.round_metrics: list[RoundMetrics] = []

        shared = dict(globals or {})
        shared.setdefault("n", graph.n)
        shared.setdefault("delta", graph.max_degree)
        self.globals = shared

        self.nodes: list[NodeAlgorithm] = []
        # Per-node neighbor ids (as plain ints) and membership sets, hoisted
        # out of the delivery loop: outbox expansion runs once per node per
        # round and must not re-slice the CSR arrays every time.
        self._neighbor_ids: list[list[int]] = []
        self._neighbor_sets: list[frozenset[int]] = []
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            ctx = NodeContext(
                node=v,
                degree=graph.degree(v),
                neighbors=nbrs,
                globals=shared,
            )
            self.nodes.append(factory(ctx))
            ids = [int(u) for u in nbrs]
            self._neighbor_ids.append(ids)
            self._neighbor_sets.append(frozenset(ids))

        # The budget only depends on n and the factor fixed at construction;
        # compute it once instead of per round.
        self._bandwidth_budget = self.bandwidth_factor * max(
            1.0, math.log2(max(2, graph.n))
        )

        #: pending outboxes produced by ``start()`` / the previous ``receive()``
        self._pending: list[Any] = [None] * graph.n
        self._started = False

    # ------------------------------------------------------------------ #

    @property
    def bandwidth_bits(self) -> float:
        """The per-message bit budget used for CONGEST accounting."""
        return self._bandwidth_budget

    def all_halted(self) -> bool:
        """Whether every node has halted."""
        return all(node.halted for node in self.nodes)

    # ------------------------------------------------------------------ #

    def _collect_start(self) -> None:
        for v, node in enumerate(self.nodes):
            if not node.halted:
                self._pending[v] = node.start()
        self._started = True

    def _expand_outbox(self, v: int, outbox: Any) -> dict[int, Any]:
        """Normalise an outbox to ``{neighbor: payload}``."""
        if outbox is None:
            return {}
        if isinstance(outbox, Broadcast):
            return {u: outbox.payload for u in self._neighbor_ids[v]}
        if isinstance(outbox, dict):
            neighbor_set = self._neighbor_sets[v]
            for u in outbox:
                if int(u) not in neighbor_set:
                    raise ValueError(
                        f"node {v} attempted to send to non-neighbor {u}"
                    )
            return {int(u): payload for u, payload in outbox.items()}
        raise TypeError(
            f"node {v} returned an invalid outbox of type {type(outbox).__name__}; "
            "expected None, Broadcast, or dict"
        )

    def step(self) -> bool:
        """Execute one synchronous round.

        Returns ``True`` if a round was executed, ``False`` if every node had
        already halted (in which case nothing happens).
        """
        if not self._started:
            self._collect_start()
        if self.all_halted():
            return False

        budget = self._bandwidth_budget
        # Bit accounting only matters under CONGEST: the LOCAL model allows
        # unbounded messages, so computing message_bits for every payload
        # there is pure overhead (bit columns then report 0).
        account_bits = self.model == "CONGEST"
        inboxes: list[dict[int, Any]] = [dict() for _ in range(self.graph.n)]
        messages_sent = 0
        total_bits = 0
        max_bits = 0
        active = 0

        # Phase 1: collect and deliver all messages (state frozen at round start).
        for v, node in enumerate(self.nodes):
            if node.halted:
                continue
            active += 1
            outbox = self._expand_outbox(v, self._pending[v])
            self._pending[v] = None
            for u, payload in outbox.items():
                messages_sent += 1
                if account_bits:
                    bits = message_bits(payload)
                    total_bits += bits
                    if bits > max_bits:
                        max_bits = bits
                    if bits > budget:
                        self.bandwidth_violations += 1
                        if self.strict_bandwidth:
                            raise CongestViolation(
                                f"node {v} sent a {bits}-bit message to {u}, exceeding "
                                f"the CONGEST budget of {budget:.0f} bits"
                            )
                inboxes[u][v] = payload

        # Phase 2: every non-halted node processes its inbox and queues the
        # next round's messages.
        for v, node in enumerate(self.nodes):
            if node.halted:
                continue
            self._pending[v] = node.receive(inboxes[v])
            if node.halted:
                self._pending[v] = None

        self.rounds_executed += 1
        self.round_metrics.append(
            RoundMetrics(
                round_index=self.rounds_executed,
                messages_sent=messages_sent,
                total_bits=total_bits,
                max_message_bits=max_bits,
                active_nodes=active,
            )
        )
        return True

    def run(self, max_rounds: int = 100_000) -> RunResult:
        """Run until every node halts (or ``max_rounds`` is exceeded)."""
        while not self.all_halted():
            if self.rounds_executed >= max_rounds:
                raise RuntimeError(
                    f"algorithm did not terminate within {max_rounds} rounds "
                    f"({sum(1 for nd in self.nodes if not nd.halted)} nodes still active)"
                )
            progressed = self.step()
            if not progressed:
                break
        return RunResult(
            outputs=[node.output() for node in self.nodes],
            rounds=self.rounds_executed,
            round_metrics=self.round_metrics,
            model=self.model,
        )
