"""Run-to-completion driver for distributed algorithms."""

from __future__ import annotations

from typing import Any, Mapping

from repro.congest.graph import Graph
from repro.congest.metrics import RunResult
from repro.congest.network import AlgorithmFactory, SynchronousNetwork

__all__ = ["run_algorithm"]


def run_algorithm(
    graph: Graph,
    factory: AlgorithmFactory,
    globals: Mapping[str, Any] | None = None,
    model: str = "CONGEST",
    max_rounds: int = 100_000,
    bandwidth_factor: float = 32.0,
    strict_bandwidth: bool = False,
) -> RunResult:
    """Instantiate a per-node algorithm on ``graph`` and run it to completion.

    Parameters
    ----------
    graph:
        Communication graph.
    factory:
        ``factory(ctx) -> NodeAlgorithm`` building each node's algorithm.
    globals:
        Globally known values (the paper assumes ``n``, ``Delta``, ``m`` and the
        algorithm parameters are global knowledge); ``n`` and ``delta`` are
        added automatically.
    model:
        ``"CONGEST"`` (default, with bandwidth accounting) or ``"LOCAL"``.
    max_rounds:
        Safety bound; a :class:`RuntimeError` is raised if the algorithm does
        not terminate in time (all the paper's algorithms have explicit round
        bounds, so hitting this indicates a bug).
    bandwidth_factor / strict_bandwidth:
        See :class:`repro.congest.network.SynchronousNetwork`.

    Returns
    -------
    RunResult
        Node outputs plus round / message / bandwidth metrics.
    """
    network = SynchronousNetwork(
        graph,
        factory,
        globals=globals,
        model=model,
        bandwidth_factor=bandwidth_factor,
        strict_bandwidth=strict_bandwidth,
    )
    return network.run(max_rounds=max_rounds)
