"""Per-node algorithm API.

A distributed algorithm is written as a subclass of :class:`NodeAlgorithm`.
One instance is created per vertex and receives a :class:`NodeContext` that
exposes *only* the information a node legitimately has in the LOCAL/CONGEST
models:

* its own id / input color,
* its own degree (the number of communication ports),
* globally known scalars (``n``, ``Delta``, ``m``, algorithm parameters), which
  the paper also assumes to be global knowledge,
* whatever it has received from its neighbors in previous rounds.

Nodes address neighbors by vertex id (equivalently: by port — the simulator
hands the inbox keyed by the sending neighbor's id, which is the standard
"nodes learn who sent what" convention once the first message arrives).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.congest.messages import Broadcast

__all__ = ["NodeContext", "NodeAlgorithm", "Outbox"]

#: What a node may return from :meth:`NodeAlgorithm.start` / ``receive``:
#: ``None`` (silence), a :class:`Broadcast`, or a dict ``{neighbor_id: payload}``.
Outbox = "None | Broadcast | dict[int, Any]"


@dataclass(frozen=True)
class NodeContext:
    """The immutable local view handed to a node algorithm.

    Attributes
    ----------
    node:
        This node's vertex id.  In the paper nodes are anonymous except for an
        input coloring / id; algorithms must not use ``node`` for anything other
        than indexing their own input (e.g. ``input_colors[node]`` supplied via
        ``globals``) — the provided algorithms only use it that way.
    degree:
        Number of incident edges.
    neighbors:
        The ids of the adjacent vertices (read-only array).  This models the
        ports of the node; ids become meaningful to the algorithm only through
        received messages.
    globals:
        Mapping of globally known values (``n``, ``delta``, ``m``, parameters).
    """

    node: int
    degree: int
    neighbors: np.ndarray
    globals: Mapping[str, Any] = field(default_factory=dict)

    def globl(self, key: str, default: Any = None) -> Any:
        """Convenience accessor for a globally known value."""
        return self.globals.get(key, default)


class NodeAlgorithm(ABC):
    """Base class for per-node algorithms.

    Lifecycle (driven by :class:`repro.congest.network.SynchronousNetwork`):

    1. ``__init__(ctx)`` — local initialization, no communication.
    2. ``start()`` — returns the messages for round 1.
    3. For every round: the network delivers the inbox and calls
       ``receive(inbox)`` which returns the messages for the *next* round.
    4. A node signals completion by setting ``self.halted = True``; once every
       node has halted the execution stops.  A halted node neither sends nor
       receives.
    5. ``output()`` — the node's local output (e.g. its color).

    Messages returned by ``start``/``receive`` are either ``None``, a
    :class:`~repro.congest.messages.Broadcast`, or a dict mapping neighbor id to
    payload.
    """

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx
        self.halted = False

    # -- communication hooks ------------------------------------------------

    def start(self):
        """Messages to send in the first round (default: nothing)."""
        return None

    @abstractmethod
    def receive(self, inbox: dict[int, Any]):
        """Process the messages received this round; return next round's messages."""

    # -- results ------------------------------------------------------------

    def halt(self) -> None:
        """Mark this node as finished (no further sends or receives)."""
        self.halted = True

    @abstractmethod
    def output(self) -> Any:
        """The node's local output once the algorithm has finished."""
