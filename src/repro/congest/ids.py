"""Unique identifiers and input colorings.

The paper's algorithms take an *input coloring* with ``m`` colors rather than
unique IDs; Linial's algorithm treats the unique ``O(log n)``-bit IDs as an
input coloring with ``m = poly(n)`` colors.  This module provides

* unique ID assignments (identity or a seeded permutation over a polynomial
  ID space),
* helpers that turn IDs into input colorings,
* a sequential greedy proper coloring used to manufacture ``m``-input-colored
  test instances,
* validation of input colorings.
"""

from __future__ import annotations

import numpy as np

from repro.congest.generators import canonical_rng
from repro.congest.graph import Graph

__all__ = [
    "assign_unique_ids",
    "ids_as_coloring",
    "greedy_coloring",
    "random_proper_coloring",
    "distinct_input_coloring",
    "delta4_input_coloring",
    "validate_proper_coloring",
    "InputColoringError",
]


class InputColoringError(ValueError):
    """Raised when an input coloring is not a proper coloring or out of range."""


def assign_unique_ids(graph: Graph, id_space: int | None = None, seed: int | None = None) -> np.ndarray:
    """Assign distinct IDs from ``[id_space]`` to the vertices.

    With ``seed=None`` the identity assignment ``id(v) = v`` is used (and
    ``id_space`` defaults to ``n``); otherwise IDs are a random injection into
    ``[id_space]`` (default ``n**2``, mimicking the usual polynomial ID space).
    """
    n = graph.n
    if seed is None:
        space = n if id_space is None else int(id_space)
        if space < n:
            raise InputColoringError(f"id space {space} too small for {n} vertices")
        return np.arange(n, dtype=np.int64)
    space = int(id_space) if id_space is not None else max(n * n, 4)
    if space < n:
        raise InputColoringError(f"id space {space} too small for {n} vertices")
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(space, size=n, replace=False)).astype(np.int64)[
        rng.permutation(n)
    ]


def ids_as_coloring(ids: np.ndarray, id_space: int | None = None) -> tuple[np.ndarray, int]:
    """Interpret unique IDs as an input coloring; returns ``(colors, m)``."""
    ids = np.asarray(ids, dtype=np.int64)
    m = int(id_space) if id_space is not None else int(ids.max()) + 1 if ids.size else 1
    if ids.size and (ids.min() < 0 or ids.max() >= m):
        raise InputColoringError("ids out of range of the declared id space")
    return ids.copy(), m


def greedy_coloring(graph: Graph, order: np.ndarray | None = None) -> np.ndarray:
    """Sequential greedy coloring (first-fit) along ``order``; uses ``<= Delta + 1`` colors.

    This is the centralized baseline the ``Delta + 1`` bound comes from; it is
    also used to manufacture proper ``m``-input colorings for experiments.
    """
    n = graph.n
    if order is None:
        order = np.arange(n, dtype=np.int64)
    order = np.asarray(order, dtype=np.int64)
    if order.size != n or set(order.tolist()) != set(range(n)):
        raise InputColoringError("order must be a permutation of the vertices")
    colors = -np.ones(n, dtype=np.int64)
    for v in order:
        used = {int(colors[u]) for u in graph.neighbors(int(v)) if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def random_proper_coloring(
    graph: Graph, num_colors: int | None = None, seed: int = 0
) -> tuple[np.ndarray, int]:
    """A proper input coloring with (at most) ``num_colors`` colors.

    The coloring is produced by greedy first-fit along a random vertex order
    and then randomly "spread out" over the requested color space so that the
    input coloring actually uses large color values (as an adversarial input
    coloring would).  Returns ``(colors, m)`` where ``m`` is the size of the
    color space (``num_colors`` or ``Delta + 1`` if not given).
    """
    rng = canonical_rng(seed)
    base = greedy_coloring(graph, order=rng.permutation(graph.n).astype(np.int64))
    used = int(base.max()) + 1 if base.size else 1
    m = int(num_colors) if num_colors is not None else used
    if m < used:
        raise InputColoringError(
            f"requested {m} colors but the greedy coloring needs {used} "
            f"(graph has max degree {graph.max_degree})"
        )
    # Injectively remap the used colors into [m] so that high color values occur.
    remap = np.sort(rng.choice(m, size=used, replace=False))
    rng.shuffle(remap)
    return remap[base], m


def distinct_input_coloring(graph: Graph, m: int, seed: int = 0) -> np.ndarray:
    """A proper input coloring where every vertex gets a *distinct* color from ``[m]``.

    This mimics the typical source of an ``m``-input coloring in the paper —
    unique IDs, or the output of Linial's algorithm — where the number of
    distinct colors is large.  (The greedy-based
    :func:`random_proper_coloring` only produces ``~Delta + 1`` distinct
    colors, which makes the coloring algorithms finish unrealistically fast.)
    Requires ``m >= n``.
    """
    if m < graph.n:
        raise InputColoringError(
            f"distinct input coloring needs m >= n, got m={m}, n={graph.n}"
        )
    rng = canonical_rng(seed)
    return np.sort(rng.choice(m, size=graph.n, replace=False).astype(np.int64))[
        rng.permutation(graph.n)
    ]


def delta4_input_coloring(graph: Graph, seed: int = 0) -> tuple[np.ndarray, int]:
    """The standing ``Delta^4``-input coloring of Corollary 1.2, as ``(colors, m)``.

    Distinct colors whenever the ``Delta^4`` space covers all vertices (as
    with unique IDs), otherwise a greedy coloring spread into the space.  The
    single source of this construction — the experiment harness and the
    BatchRunner both build their workloads from it, so recorded tables stay
    reproducible.
    """
    delta = max(1, graph.max_degree)
    m = max(delta + 1, delta ** 4)
    if m >= graph.n:
        return distinct_input_coloring(graph, m, seed=seed), m
    return random_proper_coloring(graph, num_colors=m, seed=seed)


def validate_proper_coloring(graph: Graph, colors: np.ndarray, m: int | None = None) -> None:
    """Raise :class:`InputColoringError` unless ``colors`` is a proper coloring in ``[m]``."""
    colors = np.asarray(colors)
    if colors.shape != (graph.n,):
        raise InputColoringError(
            f"coloring has shape {colors.shape}, expected ({graph.n},)"
        )
    if graph.n and colors.min() < 0:
        raise InputColoringError("colors must be non-negative")
    if m is not None and graph.n and colors.max() >= m:
        raise InputColoringError(
            f"color {int(colors.max())} out of range for declared m={m}"
        )
    edges = graph.edge_array()
    if edges.size:
        same = colors[edges[:, 0]] == colors[edges[:, 1]]
        if np.any(same):
            u, v = edges[np.argmax(same)]
            raise InputColoringError(
                f"not a proper coloring: edge ({int(u)}, {int(v)}) is monochromatic "
                f"with color {int(colors[u])}"
            )
