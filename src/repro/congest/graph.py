"""Static undirected graphs in compressed-sparse-row (CSR) form.

The simulator and all algorithms operate on :class:`Graph`, a lightweight
immutable adjacency structure backed by two NumPy arrays (``indptr`` and
``indices``), the same layout used by ``scipy.sparse.csr_matrix``.  The CSR
layout makes the vectorized twin of the mother algorithm
(:mod:`repro.core.vectorized`) a collection of flat array operations and keeps
per-node neighbor access an ``O(degree)`` slice.

Construction is array-native: :meth:`Graph.from_edge_array` is the canonical
constructor (sort + ``bincount``, no Python edge loop), and
:meth:`Graph.to_shared` / :meth:`Graph.from_shared` publish the frozen CSR
triplet (``indptr``, ``indices``, ``src_index``) through
:mod:`multiprocessing.shared_memory` so worker processes of a parallel sweep
map the *same* physical pages read-only instead of regenerating or unpickling
private copies (see :mod:`repro.congest.shared`).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.congest.shared import SharedGraphHandle

__all__ = ["Graph", "GraphError", "GraphFormatError", "GraphPerformanceWarning"]


class GraphError(ValueError):
    """Raised for malformed graph inputs (self loops, out-of-range vertices, ...)."""


class GraphFormatError(GraphError):
    """A malformed edge in graph input data, pinned to the offending entry.

    Raised by :meth:`Graph.from_edge_array` (and the corpus ingestion layer,
    :mod:`repro.corpus`) instead of a bare :class:`GraphError` or an opaque
    NumPy error when the *data* is dirty — a self loop, an out-of-range
    endpoint, an unparseable token.  The structured attributes let callers
    report exactly where the input went wrong:

    ``edge``
        The offending ``(u, v)`` pair, when known.
    ``index``
        Row index of the offending edge within the edge array, when known.
    ``line``
        1-based source line number in the file being ingested (set by the
        edge-list parser, which tracks line provenance through filtering).
    """

    def __init__(
        self,
        message: str,
        *,
        edge: tuple[int, int] | None = None,
        index: int | None = None,
        line: int | None = None,
    ):
        super().__init__(message)
        self.edge = edge
        self.index = index
        self.line = line


class GraphPerformanceWarning(UserWarning):
    """A graph was built along a slow path a vectorized constructor exists for."""


#: Edge count above which feeding ``Graph(n, edges)`` a Python sequence of
#: tuples (rather than an ``(m, 2)`` array) emits a one-time
#: :class:`GraphPerformanceWarning` pointing at :meth:`Graph.from_edge_array`.
PYTHON_EDGE_LIST_WARN_THRESHOLD = 1 << 16

_warned_python_edge_list = False


def _csr_from_edge_array(n: int, edges: np.ndarray):
    """Vectorized CSR build: validate, canonicalize ``u < v``, dedup, sort.

    Returns ``(indptr, indices, degrees, num_edges)`` for a simple undirected
    graph.  Pure NumPy — no Python loop over edges — so construction cost is
    ``O(m log m)`` in array ops; at ``n = 10^6`` this is the difference
    between milliseconds and minutes.
    """
    raw = np.asarray(edges)
    if raw.dtype.kind == "f":
        # A float edge array is tolerated only when every value is integral;
        # silently truncating 2.7 -> 2 would mis-wire real-world inputs.
        bad_vals = ~np.isfinite(raw) | (raw != np.trunc(raw))
        if raw.size and bad_vals.any():
            flat = int(np.argmax(bad_vals))
            i = flat // 2 if raw.ndim == 2 else flat
            raise GraphFormatError(
                f"edge array has non-integral endpoint {raw.ravel()[flat]!r} "
                f"(edge {i})", index=i,
            )
    elif raw.dtype.kind not in "iub":
        raise GraphFormatError(
            f"edge array must contain integers, got dtype {raw.dtype!s}"
        )
    edges = raw.astype(np.int64, copy=False)
    if edges.size == 0:
        dst = np.empty(0, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    else:
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError("edge array must have shape (m, 2)")
        u, v = edges[:, 0], edges[:, 1]
        loops = u == v
        if loops.any():
            i = int(np.argmax(loops))
            raise GraphFormatError(
                f"self loop on vertex {int(u[i])} is not allowed (edge {i} of {u.size})",
                edge=(int(u[i]), int(v[i])), index=i,
            )
        bad = (u < 0) | (u >= n) | (v < 0) | (v >= n)
        if bad.any():
            i = int(np.argmax(bad))
            raise GraphFormatError(
                f"edge ({int(u[i])}, {int(v[i])}) out of range for n={n} "
                f"(edge {i} of {u.size})",
                edge=(int(u[i]), int(v[i])), index=i,
            )
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        # Duplicate edges (in either orientation) collapse via sorted integer
        # keys (n < 2^31 keeps n * n inside int64; larger graphs could not
        # hold their CSR arrays in memory anyway).  A plain sort plus a
        # consecutive-equality mask beats hash-based ``np.unique`` severalfold
        # at scale.
        key = np.sort(lo * np.int64(n) + hi)
        if key.size > 1:
            keep = np.empty(key.size, dtype=bool)
            keep[0] = True
            np.not_equal(key[1:], key[:-1], out=keep[1:])
            key = key[keep]
        lo, hi = key // n, key % n
        # CSR entries sorted by (source, neighbor) with ONE flat sort: the
        # combined key src * n + dst orders exactly like the lexsort would.
        comb = np.concatenate([key, hi * np.int64(n) + lo])
        comb.sort()
        dst = comb % n
        counts = np.bincount(lo, minlength=n) + np.bincount(hi, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst, counts.astype(np.int64), dst.size // 2


class Graph:
    """An undirected simple graph on vertices ``0 .. n-1`` in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicate edges (in
        either orientation) are collapsed; self loops raise :class:`GraphError`.

    Notes
    -----
    The graph is immutable: the CSR arrays are created once and marked
    read-only.  All algorithm state lives outside the graph.
    """

    __slots__ = (
        "_n", "_indptr", "_indices", "_degrees", "_num_edges", "_src_index", "_shared",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()):
        if n < 0:
            raise GraphError(f"number of vertices must be non-negative, got {n}")
        self._n = int(n)

        if isinstance(edges, np.ndarray):
            arr = edges
        else:
            pairs = [(int(u), int(v)) for u, v in edges]
            if len(pairs) > PYTHON_EDGE_LIST_WARN_THRESHOLD:
                global _warned_python_edge_list
                if not _warned_python_edge_list:
                    _warned_python_edge_list = True
                    warnings.warn(
                        f"Graph(n, edges) was fed a Python sequence of {len(pairs)} "
                        "edge tuples; build an (m, 2) NumPy array and use "
                        "Graph.from_edge_array for large graphs (the tuple-list "
                        "path re-walks every edge in the interpreter)",
                        GraphPerformanceWarning,
                        stacklevel=2,
                    )
            arr = (
                np.array(pairs, dtype=np.int64)
                if pairs
                else np.empty((0, 2), dtype=np.int64)
            )
        indptr, indices, degrees, num_edges = _csr_from_edge_array(self._n, arr)
        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        self._num_edges = num_edges
        self._src_index = None
        self._shared = None
        for a in (self._indptr, self._indices, self._degrees):
            a.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_array(cls, n: int, edges: np.ndarray) -> "Graph":
        """Build a graph from an ``(m, 2)`` integer array of edges.

        The canonical constructor: a fully vectorized CSR build (canonicalize,
        ``unique``-dedup, ``lexsort``, ``bincount``) that never walks edges in
        the interpreter.  Semantics match ``Graph(n, edges)`` exactly —
        duplicate edges (in either orientation) collapse, self loops and
        out-of-range endpoints raise :class:`GraphFormatError` naming the
        offending edge (a :class:`GraphError` subclass), as do non-integer
        edge arrays — ingestion inputs fail loudly, never silently truncate.
        """
        try:
            arr = np.asarray(edges)
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(f"edge array is not array-like: {exc}") from None
        return cls(n, arr)

    @classmethod
    def from_csr_arrays(
        cls, indptr: np.ndarray, indices: np.ndarray, copy: bool = True
    ) -> "Graph":
        """Trusted fast path: build a graph directly from CSR arrays.

        ``indptr`` / ``indices`` must already describe a *valid* simple
        undirected graph: every edge present in both directions, neighbor
        lists sorted, no self loops.  Only cheap shape checks are performed —
        this constructor exists so array-backend code (e.g. the vectorized
        :meth:`induced_subgraph`) can skip the ``O(E)`` Python dedup loop of
        the public constructor.

        With ``copy=True`` (the default) the graph freezes private copies, so
        the caller's buffers stay writable.  Pass ``copy=False`` only when
        handing over freshly built arrays nobody else holds — they are frozen
        in place.
        """
        def owned(a):
            arr = np.ascontiguousarray(a, dtype=np.int64)
            # Never freeze a buffer the caller still holds a writable handle
            # to; take a private copy instead.
            if copy and arr is a and arr.flags.writeable:
                arr = arr.copy()
            return arr

        indptr = owned(indptr)
        indices = owned(indices)
        if indptr.ndim != 1 or indptr.size == 0 or indices.ndim != 1:
            raise GraphError("malformed CSR arrays")
        if int(indptr[0]) != 0 or int(indptr[-1]) != indices.size:
            raise GraphError("indptr does not span the indices array")
        g = cls.__new__(cls)
        g._n = indptr.size - 1
        g._indptr = indptr
        g._indices = indices
        g._degrees = np.diff(indptr)
        g._num_edges = indices.size // 2
        g._src_index = None
        g._shared = None
        for a in (g._indptr, g._indices, g._degrees):
            a.setflags(write=False)
        return g

    # ------------------------------------------------------------------ #
    # Shared-memory plane
    # ------------------------------------------------------------------ #

    def to_shared(self) -> "SharedGraphHandle":
        """Publish the CSR triplet in a shared-memory segment; return its handle.

        The returned :class:`repro.congest.shared.SharedGraphHandle` is
        picklable and cheap to ship to worker processes, which attach with
        :meth:`from_shared` and get zero-copy read-only views of the *same*
        physical pages — no per-worker regeneration, no ``W x`` memory.

        The segment is refcounted: the handle holds one reference and every
        attached graph holds another; ``handle.close()`` (or using the handle
        as a context manager) drops the publisher's reference and unlinks the
        segment once the last local reference is gone.  Undropped references
        are reclaimed by an ``atexit`` hook.  Publishing an already-attached
        graph returns a handle on the existing segment instead of copying.
        """
        from repro.congest import shared

        if self._shared is not None:
            return shared.reshare(self._shared.name, self._n, self._indices.size)
        # Materialise src_index up front: attachers get it for free and the
        # hot kernels never rebuild it per worker.
        return shared.publish(self._indptr, self._indices, self.src_index)

    @classmethod
    def from_shared(cls, handle: "SharedGraphHandle") -> "Graph":
        """Attach to a published graph: zero-copy read-only CSR views.

        The attached graph keeps the segment mapped for its lifetime (a
        refcounted lease released on garbage collection); nothing is copied
        and the arrays are read-only, so any number of processes can share one
        physical graph.
        """
        from repro.congest import shared

        indptr, indices, src_index, lease = shared.attach(handle)
        g = cls.__new__(cls)
        g._n = indptr.size - 1
        g._indptr = indptr
        g._indices = indices
        g._degrees = np.diff(indptr)
        g._degrees.setflags(write=False)
        g._num_edges = indices.size // 2
        g._src_index = src_index
        g._shared = lease
        return g

    @property
    def shared_name(self) -> str | None:
        """Name of the shared-memory segment backing this graph (None if private)."""
        return None if self._shared is None else self._shared.name

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph from an adjacency-list representation."""
        n = len(adjacency)
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                edges.append((u, int(v)))
        return cls(n, edges)

    @classmethod
    def from_networkx(cls, nxgraph) -> "Graph":
        """Build a graph from a ``networkx`` graph with integer-convertible nodes.

        Node labels are relabelled to ``0..n-1`` in sorted order.
        """
        nodes = sorted(nxgraph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nxgraph.edges() if u != v]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Return a ``networkx.Graph`` copy (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer, shape ``(n + 1,)``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (flattened neighbor lists), shape ``(2 * num_edges,)``."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degrees, shape ``(n,)``."""
        return self._degrees

    @property
    def src_index(self) -> np.ndarray:
        """Source vertex of every CSR entry, shape ``(2 * num_edges,)``.

        Equal to ``np.repeat(np.arange(n), degrees)`` — the edge-source array
        every flat array kernel scatters per-entry values back to vertices
        with.  Built lazily on first access and cached read-only, so hot
        kernels (the vectorized mother algorithm, the array reductions,
        orientation derivation, coloring validation) share one copy instead
        of rebuilding an ``O(E)`` array per call.
        """
        if self._src_index is None:
            src = np.repeat(np.arange(self._n, dtype=np.int64), self._degrees)
            src.setflags(write=False)
            self._src_index = src
        return self._src_index

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the graph (0 for an empty graph)."""
        if self._n == 0 or self._degrees.size == 0:
            return 0
        return int(self._degrees.max())

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._degrees[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted array of neighbors of ``v`` (a read-only view)."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether ``{u, v}`` is an edge."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return pos < nbrs.size and nbrs[pos] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """Return all edges as an ``(num_edges, 2)`` array with ``u < v`` per row."""
        if self._num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        src = self.src_index
        mask = src < self._indices
        return np.stack([src[mask], self._indices[mask]], axis=1)

    def incident_csr_entries(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather the CSR entry positions incident to ``vertices`` (frontier compaction).

        Returns ``(positions, rows)``: ``positions`` indexes into
        :attr:`indices` (so ``indices[positions]`` are the neighbors), and
        ``rows[i]`` is the index *within* ``vertices`` that entry ``i``
        belongs to.  Entries of one vertex stay contiguous and in sorted
        neighbor order.  Cost is ``O(sum of degrees(vertices))`` — this is the
        primitive that lets per-round kernels touch only the active
        subgraph's adjacency instead of all ``2|E|`` entries.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        deg = self._degrees[verts]
        total = int(deg.sum())
        rows = np.repeat(np.arange(verts.size, dtype=np.int64), deg)
        starts = np.zeros(verts.size, dtype=np.int64)
        np.cumsum(deg[:-1], out=starts[1:])
        positions = np.arange(total, dtype=np.int64) + np.repeat(self._indptr[verts] - starts, deg)
        return positions, rows

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, vertices: Iterable[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns
        -------
        (subgraph, mapping):
            ``subgraph`` is a :class:`Graph` on ``len(vertices)`` relabelled
            vertices and ``mapping`` maps subgraph vertex ``i`` back to the
            original vertex id ``mapping[i]``.
        """
        verts = np.unique(np.array(list(vertices), dtype=np.int64))
        if verts.size and (verts[0] < 0 or verts[-1] >= self._n):
            raise GraphError("subgraph vertices out of range")
        if verts.size == 0:
            return Graph(0), verts
        # Fully vectorized: keep the CSR entries whose both endpoints are in
        # the vertex set and relabel.  ``position`` is monotone over the sorted
        # ``verts``, so each surviving row keeps its sorted neighbor order and
        # the filtered arrays are already a valid CSR of the subgraph.
        keep = np.zeros(self._n, dtype=bool)
        keep[verts] = True
        position = -np.ones(self._n, dtype=np.int64)
        position[verts] = np.arange(verts.size)
        src = self.src_index
        sel = keep[src] & keep[self._indices]
        sub_src = position[src[sel]]
        sub_dst = position[self._indices[sel]]
        counts = np.bincount(sub_src, minlength=verts.size)
        indptr = np.zeros(verts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return Graph.from_csr_arrays(indptr, sub_dst, copy=False), verts

    def power_graph(self, power: int) -> "Graph":
        """Return ``G^power``: vertices at distance ``<= power`` become adjacent.

        Used for ``(alpha, r)``-ruling sets, where independence is required in
        ``G^(alpha-1)``.  Implemented by breadth-first search from every vertex,
        which is fine for the moderate graph sizes used in the experiments.
        """
        if power < 1:
            raise GraphError("power must be >= 1")
        if power == 1:
            return self
        edges = []
        for source in range(self._n):
            dist = self.bfs_distances(source, cutoff=power)
            close = np.nonzero((dist > 0) & (dist <= power))[0]
            for v in close:
                if source < v:
                    edges.append((source, int(v)))
        return Graph(self._n, edges)

    def bfs_distances(self, source: int, cutoff: int | None = None) -> np.ndarray:
        """Breadth-first-search distances from ``source``.

        Unreachable vertices get distance ``-1``.  If ``cutoff`` is given, the
        search stops after ``cutoff`` levels (farther vertices report ``-1``).
        """
        dist = -np.ones(self._n, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        level = 0
        while frontier and (cutoff is None or level < cutoff):
            level += 1
            nxt = []
            for u in frontier:
                for v in self.neighbors(u):
                    if dist[v] < 0:
                        dist[v] = level
                        nxt.append(int(v))
            frontier = nxt
        return dist

    def connected_components(self) -> list[np.ndarray]:
        """Return the connected components as arrays of vertex ids."""
        seen = np.zeros(self._n, dtype=bool)
        components = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = []
            while stack:
                u = stack.pop()
                comp.append(u)
                for v in self.neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        stack.append(int(v))
            components.append(np.array(sorted(comp), dtype=np.int64))
        return components

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, edges={self._num_edges}, max_degree={self.max_degree})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._num_edges, self._indices.tobytes()))
