"""Merge shard result files back into one canonical run.

A fleet-scale sweep runs as ``k`` shard files (``repro batch --shard i/k``
or ``run_spec(..., shard=(i, k))``), each carrying a shard descriptor in its
manifest: ``{"index": i, "of": k, "total": N, "cells": {cell_id: grid
position}}``.  :func:`merge_shards` validates that the files really are the
``k`` disjoint, complete shards of *one* sweep and writes a merged file that
is indistinguishable from a single-box run:

* identity must agree everywhere — same task, backend, parity setting,
  ``grid_hash`` (the hash of the *full* grid, identical on every shard),
  ``spec_hash``, package version, and shard count;
* coverage must be exact — every shard index ``0..k-1`` present exactly
  once, the union of the per-shard cell maps covering every grid position
  ``0..N-1`` with no duplicate cell and no gap;
* every shard must be complete — each cell in a shard's descriptor needs a
  durable record in its file (a torn final line is not durable, so an
  interrupted shard fails the merge loudly: finish it with ``--resume``
  first), and a CellError record (a cell that exhausted its retry budget)
  also refuses the merge — failure is never silently merged;

and any violation raises :class:`MergeError` naming the offending shard —
overlap, gap, and hash drift are never silent.

The merged file carries the records in full grid order under an unsharded
manifest (``shard`` stripped, ``cells = N``), with every shard's provenance
events appended after the records tagged with their shard index.  The
manifest reports ``workers = 1``: the merged run is the canonical
serial-equivalent run, byte-identical (modulo wall-clock ``seconds``) to an
unsharded ``workers=1`` sweep of the same spec on the same machine — and
``--resume`` against the merged file re-runs zero cells.
"""

from __future__ import annotations

import csv
import io
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.sink import (
    RunManifest,
    SinkError,
    _csv_decode,
    open_sink,
)

__all__ = ["MergeError", "MergeResult", "merge_shards"]


class MergeError(SinkError):
    """Shard files that cannot be merged: overlap, gaps, or identity drift."""


@dataclass
class _Shard:
    """One parsed shard input: its manifest, durable records, and events."""

    path: pathlib.Path
    manifest: RunManifest
    records: dict[str, dict[str, Any]]  # cell id -> record, in file order
    events: list[dict[str, Any]]

    @property
    def index(self) -> int:
        return int(self.manifest.shard["index"])


@dataclass
class MergeResult:
    """What :func:`merge_shards` produced (for reporting, not validation)."""

    output: pathlib.Path
    manifest: RunManifest
    cells: int
    shards: int
    events: int


# --------------------------------------------------------------------------- #
# Shard readers (read-only: merging never mutates its inputs)
# --------------------------------------------------------------------------- #


def _read_jsonl(path: pathlib.Path) -> tuple[RunManifest, dict, list]:
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")
    if lines[-1] != "":
        # A torn final line is a write the producing run did not survive; it
        # is not durable, so it contributes nothing (the missing cell is
        # reported by the coverage check, loudly).
        lines = lines[:-1]
    parsed = []
    for lineno, line in enumerate((l for l in lines if l.strip()), start=1):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise MergeError(f"{path}: malformed JSONL at line {lineno}: {exc}") from None
    if not parsed or not isinstance(parsed[0], dict) or "manifest" not in parsed[0]:
        raise MergeError(f"{path}: first line is not a run manifest")
    manifest = RunManifest.from_dict(parsed[0]["manifest"])
    records: dict[str, dict[str, Any]] = {}
    events: list[dict[str, Any]] = []
    for obj in parsed[1:]:
        if isinstance(obj, dict) and "event" in obj and "record" not in obj:
            events.append(dict(obj["event"]))
        elif isinstance(obj, dict) and "cell" in obj and "record" in obj:
            records[obj["cell"]] = obj["record"]
        else:
            raise MergeError(f"{path}: unrecognized line {obj!r}")
    return manifest, records, events


def _read_csv(path: pathlib.Path) -> tuple[RunManifest, dict, list]:
    sidecar_path = path.with_name(path.name + ".manifest.json")
    if not sidecar_path.exists():
        raise MergeError(f"{path}: missing sidecar {sidecar_path.name}")
    try:
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise MergeError(f"{sidecar_path}: {exc}") from None
    manifest = RunManifest.from_dict(sidecar)
    tags = sidecar.get("columns")
    events = [dict(e) for e in sidecar.get("events", [])]
    text = path.read_text(encoding="utf-8")
    if text and not text.endswith("\n"):
        head, _, _torn = text.rpartition("\n")
        text = head + "\n" if head else ""
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or not rows[0] or rows[0][0] != "cell":
        raise MergeError(f"{path}: missing 'cell' header column")
    columns = rows[0][1:]
    records: dict[str, dict[str, Any]] = {}
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != len(rows[0]):
            raise MergeError(f"{path}: row {lineno} has {len(row)} fields, "
                             f"expected {len(rows[0])}")
        records[row[0]] = {
            col: _csv_decode(val, None if tags is None else tags.get(col))
            for col, val in zip(columns, row[1:])
        }
    return manifest, records, events


def _read_shard(path: os.PathLike | str) -> _Shard:
    path = pathlib.Path(path)
    if not path.exists():
        raise MergeError(f"shard file not found: {path}")
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        manifest, records, events = _read_jsonl(path)
    elif suffix == ".csv":
        manifest, records, events = _read_csv(path)
    else:
        raise MergeError(f"cannot infer shard format from {os.fspath(path)!r}; "
                         "use a .jsonl/.ndjson/.csv suffix")
    if manifest.shard is None:
        raise MergeError(
            f"{path}: not a shard file (its manifest has no shard descriptor) — "
            "it already is a canonical run"
        )
    for field in ("index", "of", "total", "cells"):
        if field not in manifest.shard:
            raise MergeError(f"{path}: shard descriptor is missing {field!r}: "
                             f"{manifest.shard!r}")
    return _Shard(path=path, manifest=manifest, records=records, events=events)


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #

#: Manifest fields every shard of one sweep must agree on.  ``grid_hash`` is
#: the full-grid hash (identical across shards by construction) and
#: ``spec_hash``/``version`` pin the document and code that produced them —
#: drift on any of these means the files are not shards of one run.
_IDENTITY_FIELDS = ("task", "backend", "parity_check", "grid_hash",
                    "spec_hash", "version")


def _validate(shards: Sequence[_Shard]) -> int:
    """Check identity, disjointness, and completeness; return the cell total."""
    first = shards[0]
    for shard in shards[1:]:
        for field in _IDENTITY_FIELDS:
            ours, theirs = getattr(first.manifest, field), getattr(shard.manifest, field)
            if ours != theirs:
                raise MergeError(
                    f"manifest drift: field {field!r} is {ours!r} in {first.path} "
                    f"but {theirs!r} in {shard.path} — these are not shards of "
                    "the same run"
                )
    of = int(first.manifest.shard["of"])
    total = int(first.manifest.shard["total"])
    for shard in shards:
        if int(shard.manifest.shard["of"]) != of or \
                int(shard.manifest.shard["total"]) != total:
            raise MergeError(
                f"shard-count drift: {first.path} says {of} shard(s) of "
                f"{total} cell(s) but {shard.path} says "
                f"{shard.manifest.shard['of']} of {shard.manifest.shard['total']}"
            )
    by_index: dict[int, _Shard] = {}
    for shard in shards:
        index = shard.index
        if not 0 <= index < of:
            raise MergeError(f"{shard.path}: shard index {index} out of range 0..{of - 1}")
        if index in by_index:
            raise MergeError(
                f"overlapping shards: both {by_index[index].path} and {shard.path} "
                f"claim shard {index}/{of}"
            )
        by_index[index] = shard
    missing = sorted(set(range(of)) - set(by_index))
    if missing:
        raise MergeError(
            f"incomplete shard set: got {len(shards)} file(s) but shard(s) "
            f"{missing} of {of} are missing"
        )

    seen_cells: dict[str, _Shard] = {}
    seen_positions: dict[int, _Shard] = {}
    for shard in shards:
        cells = shard.manifest.shard["cells"]
        for cid, position in cells.items():
            if cid in seen_cells and seen_cells[cid] is not shard:
                raise MergeError(
                    f"overlapping shards: cell {cid} appears in both "
                    f"{seen_cells[cid].path} and {shard.path}"
                )
            seen_cells[cid] = shard
            position = int(position)
            if position in seen_positions:
                raise MergeError(
                    f"overlapping shards: grid position {position} is claimed by "
                    f"both {seen_positions[position].path} and {shard.path}"
                )
            seen_positions[position] = shard
        # Completeness of this shard's file vs its own descriptor.
        declared = set(cells)
        durable = set(shard.records)
        lost = sorted(declared - durable)
        if lost:
            raise MergeError(
                f"{shard.path}: shard {shard.index}/{of} is incomplete — "
                f"{len(lost)} declared cell(s) have no durable record "
                f"(e.g. {lost[0]}); finish the shard with --resume before merging"
            )
        stray = sorted(durable - declared)
        if stray:
            raise MergeError(
                f"{shard.path}: record(s) for cell(s) not in the shard's "
                f"descriptor (e.g. {stray[0]}) — the file does not match its "
                "manifest"
            )
        failed = sorted(cid for cid, record in shard.records.items()
                        if "error" in record)
        if failed:
            raise MergeError(
                f"{shard.path}: {len(failed)} cell(s) recorded a CellError "
                f"(e.g. {failed[0]}); re-run the shard with --resume until it "
                "completes before merging"
            )
    gaps = sorted(set(range(total)) - set(seen_positions))
    if gaps:
        raise MergeError(
            f"coverage gap: grid position(s) {gaps[:5]}{'...' if len(gaps) > 5 else ''} "
            f"of {total} are in no shard — the shard set does not cover the grid"
        )
    if len(seen_positions) != total:
        raise MergeError(
            f"coverage drift: shards cover {len(seen_positions)} position(s) "
            f"but the grid has {total} cell(s)"
        )
    return total


def _merged_manifest(shards: Sequence[_Shard], total: int) -> RunManifest:
    """The unsharded manifest of the merged run.

    ``workers`` is reported as 1 (the merged file is the canonical
    serial-equivalent run); ``backend_tier``/``cores`` are kept only when
    every shard agrees — they are provenance, and a mixed fleet has no
    single honest value.
    """
    first = shards[0].manifest
    tiers = {s.manifest.backend_tier for s in shards}
    cores = {s.manifest.cores for s in shards}
    return RunManifest(
        task=first.task,
        backend=first.backend,
        grid_hash=first.grid_hash,
        cells=total,
        parity_check=first.parity_check,
        version=first.version,
        spec_hash=first.spec_hash,
        backend_tier=tiers.pop() if len(tiers) == 1 else None,
        workers=1,
        cores=cores.pop() if len(cores) == 1 else None,
        shard=None,
    )


# --------------------------------------------------------------------------- #
# The merge
# --------------------------------------------------------------------------- #


def merge_shards(
    inputs: Sequence[os.PathLike | str],
    output: os.PathLike | str,
) -> MergeResult:
    """Join the shard result files ``inputs`` into the canonical run ``output``.

    Validates identity (same task/backend/parity/grid hash/spec hash/version
    across every shard), disjoint + complete coverage (each shard index and
    each grid position exactly once), and per-shard completeness (every
    declared cell durable, no CellError records) — any violation raises
    :class:`MergeError` and nothing is written.  The output format follows
    the suffix of ``output`` exactly like ``--output`` on a sweep
    (``.jsonl``/``.ndjson``/``.csv``); records land in full grid order and
    the shards' provenance events are appended after them, tagged with their
    shard index.
    """
    if not inputs:
        raise MergeError("merge needs at least one shard file")
    shards = [_read_shard(path) for path in inputs]
    total = _validate(shards)
    shards.sort(key=lambda s: s.index)
    manifest = _merged_manifest(shards, total)

    ordered: list[tuple[int, str, dict[str, Any]]] = []
    for shard in shards:
        for cid, position in shard.manifest.shard["cells"].items():
            ordered.append((int(position), cid, shard.records[cid]))
    ordered.sort(key=lambda item: item[0])

    output = pathlib.Path(output)
    events_written = 0
    sink = open_sink(output, resume=False)
    try:
        sink.start(manifest)
        for _, cid, record in ordered:
            sink.write(cid, record)
        for shard in shards:
            for event in shard.events:
                sink.note({"shard": shard.index, **event})
                events_written += 1
    finally:
        sink.close()
    return MergeResult(output=output, manifest=manifest, cells=total,
                       shards=len(shards), events=events_written)
