"""Process-pool sharding for :class:`repro.engine.batch.BatchRunner` sweeps.

The (graph x seed x params) cells of a sweep are embarrassingly parallel map
steps: no cell reads another cell's output.  This module shards an *ordered*
job list across a :mod:`multiprocessing` pool while preserving everything the
serial runner guarantees:

* **Deterministic records** — jobs carry their grid index and results are
  consumed via the *ordered* ``imap``, so records come back in exactly the
  serial order; combined with the cross-process determinism of the graph
  generators (see :func:`repro.congest.generators.canonical_rng`) a parallel
  sweep is byte-identical to the serial one modulo wall-clock fields.
* **A zero-copy shared graph plane** — the parent builds each
  :class:`~repro.engine.batch.GraphSpec`'s graph *once*, publishes its CSR
  arrays through :mod:`multiprocessing.shared_memory`
  (:meth:`repro.congest.graph.Graph.to_shared`), and the pool initializer
  hands every worker the picklable handles; workers attach read-only views of
  the same physical pages (:meth:`~repro.congest.graph.Graph.from_shared`)
  instead of regenerating graphs, so sweep memory stays flat in the worker
  count and no graph is ever pickled.  Per-worker caches keep only *derived*
  state (the ``Delta^4`` input colorings).
* **A parallel-safe parity oracle** — with ``parity_check=True`` every worker
  holds its *own* parity engine and re-runs its own cells on it, so the
  reference-parity guarantee is enforced shard-locally and a
  :class:`~repro.engine.batch.ParityError` raised in any worker propagates to
  the parent sweep.

Workers are described by *names* (backend registry keys, task registry keys
or importable callables), never by live objects: that is what makes the
sharding safe under both ``fork`` and ``spawn`` start methods.  Third-party
backends registered at runtime can be made visible to workers by passing an
importable ``worker_init`` callable, which runs first in every worker.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.engine.base import EngineError

__all__ = ["default_start_method", "run_cells_parallel"]

#: The per-process runner, created once per worker by :func:`_init_worker`.
_WORKER_RUNNER = None


def default_start_method() -> str:
    """``"fork"`` where available (cheap, inherits registrations), else ``"spawn"``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _init_worker(
    backend: str,
    parity_check: bool,
    parity_backend: str,
    worker_init: Callable[[], None] | None,
    shared_graphs: Mapping[Any, Any] | None = None,
) -> None:
    from repro.engine.batch import BatchRunner

    if worker_init is not None:
        worker_init()
    global _WORKER_RUNNER
    _WORKER_RUNNER = BatchRunner(
        backend=backend, parity_check=parity_check, parity_backend=parity_backend
    )
    if shared_graphs:
        # Attach the parent's published graphs zero-copy: the worker's graph
        # cache is pre-seeded with read-only shared-memory views, so only
        # derived colorings are ever built (or held) per worker.
        from repro.congest.graph import Graph

        for spec, handle in shared_graphs.items():
            _WORKER_RUNNER.preload_graph(spec, Graph.from_shared(handle))


def _run_job(job: tuple[int, Any, Any, Mapping[str, Any]]) -> tuple[int, dict[str, Any]]:
    index, task, spec, params = job
    return index, _WORKER_RUNNER.run_cell(task, spec, params=params)


def _require_importable(value: Any, role: str) -> None:
    """Reject objects a freshly spawned worker could not reconstruct."""
    if value is None or isinstance(value, str):
        return
    import importlib

    module, qualname = getattr(value, "__module__", None), getattr(value, "__qualname__", None)
    resolved = None
    if module and qualname and "<locals>" not in qualname:
        try:
            resolved = importlib.import_module(module)
            for part in qualname.split("."):
                resolved = getattr(resolved, part)
        except (ImportError, AttributeError):
            resolved = None
    if resolved is not value:
        raise EngineError(
            f"parallel execution needs an importable {role}, got {value!r}; "
            f"use a registered name or a module-level function"
        )


def run_cells_parallel(
    jobs: list[tuple[int, str | Callable[..., Mapping[str, Any]], Any, Mapping[str, Any]]],
    *,
    workers: int,
    backend: str,
    parity_check: bool,
    parity_backend: str,
    worker_init: Callable[[], None] | None = None,
    start_method: str | None = None,
    chunksize: int = 1,
    shared_graphs: Mapping[Any, Any] | None = None,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Run ``(index, task, spec, params)`` jobs on a pool; yield ``(index, record)``.

    Results are yielded in job order (ordered ``imap``), one at a time as the
    pool completes them, so the caller can stream each record to a sink while
    later cells are still computing.  Any exception raised in a worker —
    including :class:`~repro.engine.batch.ParityError` — re-raises here.

    ``shared_graphs`` maps :class:`~repro.engine.batch.GraphSpec` to
    :class:`repro.congest.shared.SharedGraphHandle`; every worker attaches the
    published graphs zero-copy in its initializer.  The caller owns the
    handles' lifetime (publish before, close after the pool is drained).
    """
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    for _, task, _, _ in jobs:
        _require_importable(task, "task")
    _require_importable(worker_init, "worker_init")
    ctx = mp.get_context(start_method or default_start_method())
    processes = max(1, min(workers, len(jobs)))
    with ctx.Pool(
        processes,
        initializer=_init_worker,
        initargs=(backend, parity_check, parity_backend, worker_init,
                  dict(shared_graphs) if shared_graphs else None),
    ) as pool:
        yield from pool.imap(_run_job, jobs, chunksize=max(1, chunksize))
