"""Fault-tolerant process-pool sharding for :class:`~repro.engine.batch.BatchRunner`.

The (graph x seed x params) cells of a sweep are embarrassingly parallel map
steps: no cell reads another cell's output.  This module shards an *ordered*
job list across worker processes while preserving everything the serial
runner guarantees:

* **Deterministic records** — jobs carry their grid index; the parent buffers
  completions and yields them in exact grid order, so a parallel sweep is
  byte-identical to the serial one modulo wall-clock fields — *even when
  cells were retried, re-dispatched after a worker death, or downgraded*.
* **A zero-copy shared graph plane** — the parent publishes each cell's CSR
  arrays through :mod:`multiprocessing.shared_memory` and workers attach
  read-only views (:meth:`~repro.congest.graph.Graph.from_shared`) instead of
  regenerating graphs; memory stays flat in the worker count.
* **A parallel-safe parity oracle** — with ``parity_check=True`` every worker
  re-runs its own cells on its own parity engine; a
  :class:`~repro.engine.batch.ParityError` in any worker is *fatal* (never
  retried — a parity mismatch is a correctness bug, not a transient fault)
  and re-raises in the parent.

Crash containment
-----------------

Earlier versions used one shared :class:`multiprocessing.pool.Pool`: a single
worker death (segfaulting kernel, OOM kill) either hung the ordered ``imap``
forever or surfaced as an opaque pool-wide ``BrokenProcessPool``, destroying
the whole sweep.  This pool owns each worker individually — one process, one
duplex pipe, one in-flight cell — so the parent always knows *which* cell a
dead worker was running and since when:

* a worker EOF/death charges exactly its in-flight cell with a ``"crash"``
  attempt; the worker is respawned and only the lost cell is re-dispatched;
* a :attr:`~repro.engine.retry.RetryPolicy.cell_timeout` breach kills the
  worker (``SIGKILL`` — a hung kernel cannot be asked nicely) and counts a
  ``"timeout"`` attempt;
* a killed/corrupted pipe is *contained*: other workers' pipes are untouched,
  so no shared result queue can be poisoned by a mid-write death;
* when a cell exhausts its attempts (see
  :meth:`~repro.engine.retry.RetryPolicy.next_action`: retry with backoff ->
  jit->array downgrade -> record/raise) the parent emits a structured
  CellError record (:func:`~repro.engine.retry.cell_error_record`) in the
  cell's grid slot and the sweep continues.

Workers are described by *names* (backend registry keys, task registry keys
or importable callables), never by live objects: that is what makes the
sharding safe under both ``fork`` and ``spawn`` start methods.  Third-party
backends registered at runtime can be made visible to workers by passing an
importable ``worker_init`` callable, which runs first in every worker.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.engine.base import EngineError
from repro.engine.retry import (
    FATAL_KINDS,
    CellExecutionError,
    CellTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    cell_error_record,
    describe_error,
)

__all__ = ["default_start_method", "run_cells_parallel"]

#: How long the parent blocks waiting for worker messages per scheduling pass.
_POLL_SECONDS = 0.25

#: Grace period for workers to exit after receiving the shutdown sentinel.
_JOIN_SECONDS = 5.0


def default_start_method() -> str:
    """``"fork"`` where available (cheap, inherits registrations), else ``"spawn"``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _require_importable(value: Any, role: str) -> None:
    """Reject objects a freshly spawned worker could not reconstruct."""
    if value is None or isinstance(value, str):
        return
    import importlib

    module, qualname = getattr(value, "__module__", None), getattr(value, "__qualname__", None)
    resolved = None
    if module and qualname and "<locals>" not in qualname:
        try:
            resolved = importlib.import_module(module)
            for part in qualname.split("."):
                resolved = getattr(resolved, part)
        except (ImportError, AttributeError):
            resolved = None
    if resolved is not value:
        raise EngineError(
            f"parallel execution needs an importable {role}, got {value!r}; "
            f"use a registered name or a module-level function"
        )


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #


def _dumps_exc(exc: BaseException) -> bytes | None:
    """Best-effort pickle of an exception so the parent can re-raise natively."""
    try:
        return pickle.dumps(exc)
    except Exception:  # noqa: BLE001 — unpicklable: the structured dict suffices
        return None


def _loads_exc(payload: bytes | None) -> BaseException | None:
    if payload is None:
        return None
    try:
        exc = pickle.loads(payload)
    except Exception:  # noqa: BLE001
        return None
    return exc if isinstance(exc, BaseException) else None


def _worker_main(
    conn,
    backend: str,
    parity_check: bool,
    parity_backend: str,
    worker_init: Callable[[], None] | None,
    shared_graphs: Mapping[Any, Any] | None,
) -> None:
    """One pool worker: recv job tuples, send result tuples, until sentinel.

    The worker keeps one :class:`~repro.engine.batch.BatchRunner` per backend
    it has been asked to run (the primary, plus ``"array"`` once a downgraded
    cell arrives), each pre-seeded with the parent's shared-memory graphs.
    A cell raising an ordinary exception is *reported*, not fatal: the worker
    survives to run the next cell, so one poisoned cell cannot take healthy
    in-flight work down with it.
    """
    runners: dict[str, Any] = {}

    def runner_for(name: str):
        if name not in runners:
            from repro.engine.batch import BatchRunner

            runner = BatchRunner(backend=name, parity_check=parity_check,
                                 parity_backend=parity_backend)
            if shared_graphs:
                from repro.congest.graph import Graph

                for spec, handle in shared_graphs.items():
                    runner.preload_graph(spec, Graph.from_shared(handle))
            runners[name] = runner
        return runners[name]

    def tier_of(name: str) -> str | None:
        try:
            return runners[name].engine.active_tier()
        except Exception:  # noqa: BLE001 — tier is provenance, never load-bearing
            return None

    try:
        try:
            if worker_init is not None:
                worker_init()
            runner_for(backend)  # build + warm the primary engine up front
        except Exception as exc:  # noqa: BLE001 — reported, parent aborts the sweep
            conn.send(("init-error", describe_error(exc), _dumps_exc(exc)))
            return
        while True:
            job = conn.recv()
            if job is None:
                return
            index, task, spec, params, attempt, backend_override = job
            name = backend_override or backend
            try:
                record = runner_for(name)._attempt_cell(task, spec, params, attempt=attempt)
            except Exception as exc:  # noqa: BLE001 — reported; worker survives
                conn.send(("error", index,
                           describe_error(exc, attempts=attempt, tier=tier_of(name)),
                           _dumps_exc(exc)))
            except BaseException as exc:
                # Interrupt-class failures: report (so the parent can abort
                # deliberately) and let the exception end this worker.
                conn.send(("error", index,
                           describe_error(exc, attempts=attempt, tier=tier_of(name)),
                           _dumps_exc(exc)))
                raise
            else:
                conn.send(("ok", index, record))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        return  # parent went away (or the sweep was interrupted): die quietly


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #


@dataclass
class _Cell:
    """Scheduling state of one grid cell (one job)."""

    index: int
    task: Any
    spec: Any
    params: dict[str, Any]
    attempt: int = 1
    downgraded: bool = False
    not_before: float = 0.0


@dataclass
class _Worker:
    """One owned worker process and its duplex pipe."""

    process: Any
    conn: Any
    cell: _Cell | None = None
    deadline: float | None = None

    @property
    def idle(self) -> bool:
        return self.cell is None

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=_JOIN_SECONDS)
        self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class _FaultTolerantPool:
    """Per-worker-owned process pool: spawn, dispatch, detect death, respawn."""

    def __init__(self, ctx, size: int, worker_args: tuple):
        self._ctx = ctx
        self.size = size
        self._worker_args = worker_args
        self.workers: list[_Worker] = []

    def spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, *self._worker_args),
            daemon=True, name="repro-pool-worker",
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        worker = _Worker(process=process, conn=parent_conn)
        self.workers.append(worker)
        return worker

    def ensure(self, needed: int) -> None:
        """Respawn up to the pool size while there is work to run."""
        while len(self.workers) < min(self.size, needed):
            self.spawn()

    def discard(self, worker: _Worker) -> None:
        if worker in self.workers:
            self.workers.remove(worker)
        worker.kill()

    def shutdown(self) -> None:
        """Graceful: sentinel every idle worker, then reap; kill stragglers."""
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=_JOIN_SECONDS)
            if worker.process.is_alive():
                worker.kill()
            else:
                worker._close()
        self.workers.clear()

    def terminate(self) -> None:
        """Hard stop (error paths): kill everything, reap, close pipes."""
        for worker in self.workers:
            worker.kill()
        self.workers.clear()


def run_cells_parallel(
    jobs: list[tuple[int, str | Callable[..., Mapping[str, Any]], Any, Mapping[str, Any]]],
    *,
    workers: int,
    backend: str,
    parity_check: bool,
    parity_backend: str,
    worker_init: Callable[[], None] | None = None,
    start_method: str | None = None,
    shared_graphs: Mapping[Any, Any] | None = None,
    retry: RetryPolicy | None = None,
    on_event: Callable[[int, dict[str, Any]], None] | None = None,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Run ``(index, task, spec, params)`` jobs on a fault-tolerant pool;
    yield ``(index, record)`` in exact job order.

    Results stream to the caller as the ordered prefix completes, so records
    can be sunk while later cells are still computing.  Failure semantics are
    ``retry``'s (default :class:`~repro.engine.retry.RetryPolicy`): worker
    deaths re-dispatch the lost cell (crash floor of two attempts), deadline
    breaches kill and recount, a failing ``jit`` cell gets one attempt on
    ``"array"``, and exhausted cells yield a CellError record in their grid
    slot instead of aborting the sweep.  Fatal failures —
    :class:`~repro.engine.batch.ParityError`, interrupts, exhausted plain
    errors under ``on_error="raise"`` — re-raise here.

    ``on_event(index, event)`` — when given — is called for every retry,
    downgrade and exhaustion decision (``event["event"]`` is ``"retry"`` /
    ``"degrade"`` / ``"cell-error"``); the batch layer forwards these to the
    sink's provenance notes.

    ``shared_graphs`` maps :class:`~repro.engine.batch.GraphSpec` to
    :class:`repro.congest.shared.SharedGraphHandle`; every worker attaches the
    published graphs zero-copy.  The caller owns the handles' lifetime
    (publish before, close after the pool is drained).
    """
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    for _, task, _, _ in jobs:
        _require_importable(task, "task")
    _require_importable(worker_init, "worker_init")
    policy = retry or RetryPolicy()
    ctx = mp.get_context(start_method or default_start_method())
    pool = _FaultTolerantPool(
        ctx, max(1, min(workers, len(jobs))),
        (backend, parity_check, parity_backend, worker_init,
         dict(shared_graphs) if shared_graphs else None),
    )

    order = [index for index, _, _, _ in jobs]
    cells = {index: _Cell(index=index, task=task, spec=spec, params=dict(params))
             for index, task, spec, params in jobs}
    ready: deque[int] = deque(order)
    delayed: list[int] = []  # indices backing off; runnable once not_before passes
    buffered: dict[int, dict[str, Any]] = {}
    outstanding = set(order)
    next_pos = 0

    def emit(index: int, event: dict[str, Any]) -> None:
        if on_event is not None:
            on_event(index, event)

    def cell_label(cell: _Cell) -> str:
        from repro.engine.sink import cell_key

        return cell_key(cell.task, cell.spec, cell.params)

    def reraise(cell: _Cell, kind: str, err: Mapping[str, Any],
                exc: BaseException | None) -> None:
        if exc is not None:
            raise exc
        message = (f"{err.get('type')}: {err.get('message')} "
                   f"(cell index {cell.index}, attempt {cell.attempt}, "
                   f"traceback digest {err.get('traceback_digest')})")
        if kind == "crash":
            raise WorkerCrashError(message)
        if kind == "timeout":
            raise CellTimeoutError(message)
        raise CellExecutionError(message)

    def register_failure(cell: _Cell, kind: str, err: Mapping[str, Any],
                         exc: BaseException | None = None) -> None:
        action = policy.next_action(kind, cell.attempt, backend=backend,
                                    downgraded=cell.downgraded)
        if action == "retry":
            emit(cell.index, {"event": "retry", "kind": kind,
                              "attempt": cell.attempt, "error": dict(err)})
            cell.not_before = time.monotonic() + policy.delay(cell_label(cell), cell.attempt)
            cell.attempt += 1
            delayed.append(cell.index)
        elif action == "downgrade":
            emit(cell.index, {"event": "degrade", "from": backend, "to": "array",
                              "kind": kind, "attempt": cell.attempt, "error": dict(err)})
            cell.downgraded = True
            cell.not_before = 0.0
            cell.attempt += 1
            ready.append(cell.index)
        elif action == "record":
            error = {**err, "attempts": cell.attempt}
            emit(cell.index, {"event": "cell-error", "error": error})
            complete(cell.index, cell_error_record(
                cell.spec, cell.params,
                backend="array" if cell.downgraded else backend, error=error,
            ))
        else:  # "raise" — fatal for the whole sweep
            reraise(cell, kind, err, exc)

    def complete(index: int, record: dict[str, Any]) -> None:
        buffered[index] = record
        outstanding.discard(index)

    def on_worker_dead(worker: _Worker) -> None:
        cell = worker.cell
        worker.cell = None
        pool.discard(worker)
        if cell is not None:
            exc = WorkerCrashError(
                f"worker process died while executing cell index {cell.index} "
                f"(attempt {cell.attempt})"
            )
            register_failure(cell, "crash", describe_error(exc, attempts=cell.attempt))

    def on_worker_timeout(worker: _Worker) -> None:
        cell = worker.cell
        worker.cell = None
        pool.discard(worker)  # SIGKILL: a hung kernel cannot be asked nicely
        exc = CellTimeoutError(
            f"cell index {cell.index} exceeded cell_timeout={policy.cell_timeout}s "
            f"(attempt {cell.attempt}); its worker was killed"
        )
        register_failure(cell, "timeout", describe_error(exc, attempts=cell.attempt))

    def on_message(worker: _Worker, message: tuple) -> None:
        tag = message[0]
        if tag == "init-error":
            _, err, payload = message
            pool.discard(worker)
            exc = _loads_exc(payload)
            if exc is not None:
                raise exc
            raise EngineError(
                f"pool worker initialization failed: {err.get('type')}: {err.get('message')}"
            )
        cell = worker.cell
        worker.cell = None
        worker.deadline = None
        if cell is None:
            return  # message for a cell already resolved elsewhere (late result)
        if tag == "ok":
            complete(cell.index, message[2])
            return
        _, _, err, payload = message
        kind = err.get("kind", "error")
        exc = _loads_exc(payload)
        if kind in FATAL_KINDS:
            reraise(cell, kind, err, exc)
        register_failure(cell, kind, err, exc=exc)

    try:
        while outstanding:
            now = time.monotonic()
            # Promote backed-off retries whose delay has passed.
            due = [i for i in delayed if cells[i].not_before <= now]
            for index in due:
                delayed.remove(index)
                ready.append(index)
            # Keep the pool sized to the remaining work (respawning after
            # crashes), and dispatch ready cells to idle workers.
            busy = sum(1 for w in pool.workers if not w.idle)
            pool.ensure(busy + len(ready) + len(delayed))
            for worker in list(pool.workers):
                if not ready:
                    break
                if not worker.idle:
                    continue
                cell = cells[ready.popleft()]
                try:
                    worker.conn.send((cell.index, cell.task, cell.spec, cell.params,
                                      cell.attempt,
                                      "array" if cell.downgraded else None))
                except (BrokenPipeError, OSError):
                    ready.appendleft(cell.index)  # never reached the worker: no attempt charged
                    on_worker_dead(worker)
                    continue
                worker.cell = cell
                worker.deadline = (
                    None if policy.cell_timeout is None else now + policy.cell_timeout
                )
            # Wait for results (bounded so deadlines/backoffs stay responsive).
            timeout = _POLL_SECONDS
            for worker in pool.workers:
                if worker.deadline is not None:
                    timeout = min(timeout, max(0.0, worker.deadline - now))
            if delayed:
                soonest = min(cells[i].not_before for i in delayed)
                timeout = min(timeout, max(0.0, soonest - now))
            conns = {w.conn: w for w in pool.workers}
            if not conns:
                time.sleep(min(timeout, 0.05) or 0.01)
            else:
                for conn in _wait_connections(list(conns), timeout):
                    worker = conns[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        on_worker_dead(worker)
                        continue
                    on_message(worker, message)
            # Enforce per-cell deadlines on whoever is still running.
            now = time.monotonic()
            for worker in list(pool.workers):
                if worker.cell is not None and worker.deadline is not None \
                        and now >= worker.deadline:
                    on_worker_timeout(worker)
            # Stream the completed prefix in exact grid order.
            while next_pos < len(order) and order[next_pos] in buffered:
                index = order[next_pos]
                next_pos += 1
                yield index, buffered.pop(index)
        pool.shutdown()
        while next_pos < len(order):  # drain any buffered tail
            index = order[next_pos]
            next_pos += 1
            yield index, buffered.pop(index)
    finally:
        pool.terminate()
