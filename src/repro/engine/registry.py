"""Backend registry: resolve ``backend=`` arguments to :class:`Engine` instances.

Every backend-generic function in :mod:`repro.core` accepts
``backend="reference" | "array" | Engine``; :func:`get_engine` is the single
resolution point.  Third-party backends (e.g. a GPU twin) can be plugged in
with :func:`register_engine` without touching any call site.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.array import ArrayEngine
from repro.engine.base import Engine, EngineError, UnknownBackendError
from repro.engine.jit import JitEngine
from repro.engine.reference import ReferenceEngine

__all__ = [
    "BACKENDS",
    "get_engine",
    "register_engine",
    "available_backends",
    "describe_backends",
    "ensure_known_backend",
    "resolve_backend",
]

#: Factories for the built-in backends (instantiated with defaults on demand).
BACKENDS: dict[str, Callable[[], Engine]] = {
    "reference": ReferenceEngine,
    "array": ArrayEngine,
    "jit": JitEngine,
}

# Default instances are shared: engines are stateless apart from their
# configuration, so one instance per name suffices for the default settings.
_DEFAULT_INSTANCES: dict[str, Engine] = {}


def register_engine(name: str, factory: Callable[[], Engine]) -> None:
    """Register a new backend under ``name`` (overwrites any existing entry)."""
    if not name or not isinstance(name, str):
        raise EngineError(f"backend name must be a non-empty string, got {name!r}")
    BACKENDS[name] = factory
    _DEFAULT_INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(BACKENDS)


def ensure_known_backend(name: object, context: str | None = None) -> str:
    """Validate a backend *name* without instantiating its engine.

    Raises :class:`UnknownBackendError` (naming the accepted backends) for
    unregistered names; used by ``Run.backend`` validation in
    :mod:`repro.api.spec` so spec errors match engine-resolution errors.
    """
    if not isinstance(name, str) or name not in BACKENDS:
        raise UnknownBackendError(name, available_backends(), context=context)
    return name


def describe_backends() -> list[dict]:
    """Availability/version/thread metadata for every registered backend.

    One :meth:`Engine.describe` dict per backend, sorted by name — the data
    behind ``repro list-backends``.  Engines are instantiated (shared default
    instances) and the jit engine resolves its kernel provider (availability
    is the point of the report); the C tier's one-time build is disk-cached.
    """
    return [get_engine(name).describe() for name in available_backends()]


def get_engine(backend: str | Engine = "reference") -> Engine:
    """Resolve a backend specifier to an :class:`Engine` instance.

    ``backend`` may be an engine instance (returned as-is) or a registered
    name.  Unknown names raise :class:`EngineError` listing the alternatives.
    """
    if isinstance(backend, Engine):
        return backend
    if not isinstance(backend, str):
        raise EngineError(
            f"backend must be an Engine or a backend name, got {type(backend).__name__}"
        )
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise UnknownBackendError(backend, available_backends()) from None
    if backend not in _DEFAULT_INSTANCES:
        _DEFAULT_INSTANCES[backend] = factory()
    return _DEFAULT_INSTANCES[backend]


def resolve_backend(backend: str | Engine, vectorized: bool | None = None) -> Engine:
    """Resolve ``backend`` honoring the deprecated ``vectorized`` flag.

    ``vectorized=True/False`` predates the engine layer; when it is passed
    explicitly it overrides ``backend`` (``True`` -> ``"array"``, ``False`` ->
    ``"reference"``) so pre-engine call sites keep their exact behavior —
    with a :class:`DeprecationWarning` pointing at the replacement.  A bare
    bool arriving *as* ``backend`` (a legacy caller passing the old
    positional ``vectorized`` argument) is honored and warned about the same
    way.
    """
    if vectorized is not None:
        _warn_vectorized(vectorized)
        return get_engine("array" if vectorized else "reference")
    if isinstance(backend, bool):
        _warn_vectorized(backend)
        return get_engine("array" if backend else "reference")
    return get_engine(backend)


def _warn_vectorized(value: bool) -> None:
    import warnings

    replacement = "array" if value else "reference"
    warnings.warn(
        f"the vectorized= flag is deprecated; pass backend={replacement!r} instead "
        f"(or solve through the unified API: repro.api.solve with "
        f"Run(..., backend={replacement!r}))",
        DeprecationWarning,
        stacklevel=3,
    )
