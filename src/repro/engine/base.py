"""The backend contract of the execution-engine layer.

An :class:`Engine` provides the primitive operations every coloring
pipeline in the package is composed of:

* :meth:`Engine.run_mother` — one invocation of Algorithm 1 / Theorem 1.1
  (the "mother algorithm") with parameters ``(m, d, k)``;
* :meth:`Engine.remove_color_class` — the color-class-removal reduction used
  as the finishing step of the ``(Delta + 1)`` pipeline;
* :meth:`Engine.kuhn_wattenhofer` — the classical block-halving reduction
  (the baseline the paper's reductions are compared against).

Everything else (Linial's iterated reduction, the Corollary 1.2 wrappers, the
Theorem 1.3 defective-class decomposition, ruling sets) is backend-generic
composition living in :mod:`repro.core`; those functions accept a
``backend=`` argument and route the primitives through the selected engine.

Two engines ship with the package (see :mod:`repro.engine.registry`):

* ``"reference"`` — the model-faithful per-node CONGEST/LOCAL simulator.
  Every message is materialised and bit-accounted; results carry the
  simulator's round/message/bandwidth metrics.  Slow, but it *is* the model.
* ``"array"`` — the whole-graph NumPy twin over the CSR adjacency.  Produces
  bit-identical colors, parts, and round counts (property-tested), orders of
  magnitude faster, but reports no per-message metrics.

The parity guarantee between the two is the load-bearing invariant of the
layer: any new backend must reproduce the reference outputs exactly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.graph import Graph
    from repro.core.params import MotherParameters
    from repro.core.results import ColoringResult

__all__ = ["Engine", "EngineError", "UnknownBackendError"]


class EngineError(RuntimeError):
    """Raised for unknown backends or invalid engine configurations."""


class UnknownBackendError(EngineError, ValueError):
    """An unregistered backend name was requested.

    Typed (and carrying ``backend`` and ``available``) so every resolution
    path — :func:`repro.engine.registry.get_engine`, the reduction
    dispatchers in :mod:`repro.core.reduce`, and ``Run.backend`` validation
    in :mod:`repro.api.spec` — fails the same way, naming the accepted
    backends instead of surfacing a bare ``KeyError``/``ValueError``.
    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    call sites keep working.
    """

    def __init__(self, backend: object, available: "list[str] | tuple[str, ...]",
                 context: str | None = None):
        self.backend = backend
        self.available = sorted(available)
        where = f" for {context}" if context else ""
        super().__init__(
            f"unknown backend {backend!r}{where}; "
            f"available backends: {', '.join(self.available)}"
        )


class Engine(abc.ABC):
    """A pluggable execution backend for the paper's algorithms.

    Subclasses implement the abstract primitives below and may override
    :meth:`kuhn_wattenhofer` (which defaults to the reference path); every
    primitive must match the reference semantics exactly (same colors, same
    part indices, same round counts) — callers are free to mix backends
    across pipeline stages.
    """

    #: Registry key and the value reported in result metadata.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def run_mother(
        self,
        graph: "Graph",
        input_colors: np.ndarray,
        m: int,
        d: int = 0,
        k: int = 1,
        params: "MotherParameters | None" = None,
        validate_input: bool = True,
        with_orientation: bool = False,
    ) -> "ColoringResult":
        """Run Algorithm 1 on ``graph`` (the semantics of Theorem 1.1)."""

    @abc.abstractmethod
    def remove_color_class(
        self,
        graph: "Graph",
        colors: np.ndarray,
        target_colors: int | None = None,
    ) -> "ColoringResult":
        """Greedy color-class removal down to ``target_colors`` colors."""

    def kuhn_wattenhofer(
        self,
        graph: "Graph",
        colors: np.ndarray,
        m: int,
        target_colors: int | None = None,
    ) -> "ColoringResult":
        """Kuhn-Wattenhofer block-halving reduction down to ``target_colors``.

        Concrete (not abstract) with a reference-path default so pre-existing
        third-party engines keep working; the built-in engines override it
        with their own execution path.
        """
        from repro.core.reduce import kuhn_wattenhofer_reduction

        return kuhn_wattenhofer_reduction(
            graph, colors, m, target_colors=target_colors, backend="reference"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def warmup(self) -> None:
        """Pay one-time setup cost (JIT compilation, library loads) now.

        A no-op by default.  :class:`~repro.engine.jit.JitEngine` overrides it
        to compile/load its kernels on tiny inputs so the cost is never timed
        into a sweep's first cell; :class:`~repro.engine.batch.BatchRunner`
        and the parallel worker initializer call it for every engine.
        """

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """Availability/version/threads metadata for ``repro list-backends``.

        Subclasses extend the returned dict; ``available`` means "runs its
        own execution path" (the jit engine reports ``False`` — plus its
        fallback — when no compiled tier exists).
        """
        return {
            "backend": self.name,
            "available": True,
            "implementation": type(self).__name__,
            "versions": {"numpy": np.__version__},
            "threads": 1,
        }

    def active_tier(self) -> str:
        """The execution tier actually running this engine's primitives.

        For single-path engines this is just the backend name.  Tiered
        engines (the jit backend) override it to report which tier resolved
        — e.g. ``"jit:numba"``, ``"jit:cc"`` or ``"jit:fallback-array"`` —
        so per-job metadata (RunReport provenance, sink manifests, the job
        server's ``/healthz``) can surface silent degradation instead of
        relying on a once-per-process warning.
        """
        return self.name

    @property
    def collects_message_metrics(self) -> bool:
        """Whether results carry per-message simulator metrics."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
