"""Batched experiment execution: sweep (graph x seed x params) grids through a backend.

:class:`BatchRunner` is the experiment driver of the engine layer.  It

* **shares precomputed structures** — graphs (CSR adjacency) and their
  ``Delta^4`` input colorings are built once per :class:`GraphSpec` and reused
  across every parameter combination and backend that touches the cell;
* **runs named or custom tasks** — a task maps one workload to a flat record
  of measurements (``{"rounds": 7, "colors used": 33, ...}``); named tasks
  resolve through the algorithm registry (:mod:`repro.api.registry`), which
  covers every algorithm family of the paper and validates parameters against
  each algorithm's typed schema;
* **parity-checks against the reference backend** — with
  ``parity_check=True`` every cell is re-run on the reference engine and all
  scalar measurements plus array artifacts (colors, parts, ruling sets) must
  match exactly, so a fast array sweep is continuously validated against the
  model-faithful simulator;
* **returns a tidy records table** — one dict per (graph, seed, params) cell,
  convertible to the :class:`repro.analysis.tables.Table` the experiment
  harness renders;
* **shards across processes** — ``workers=N`` fans the deterministic cell
  order out over a :mod:`multiprocessing` pool (see
  :mod:`repro.engine.parallel`) with per-worker workload caches and
  shard-local parity checking; records come back in the serial order, so a
  parallel sweep is byte-identical to a serial one modulo wall-clock fields;
* **streams to durable sinks** — pass ``sink=`` (see
  :mod:`repro.engine.sink`) to append each record to a JSONL/CSV file as it
  completes; a sink opened with ``resume=True`` skips already-completed
  cells, making interrupted sweeps restartable.

The CLI (``python -m repro batch``), the E1-E10 experiment suite, and the
benchmark harness all drive their sweeps through this class.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.congest.graph import Graph
from repro.engine.base import Engine, EngineError
from repro.engine.registry import get_engine
from repro.engine.retry import (
    RetryPolicy,
    call_with_deadline,
    cell_error_record,
    classify_error,
    describe_error,
)
from repro.engine.sink import (
    ResultSink,
    RunManifest,
    cell_id,
    cell_key,
    grid_hash,
    machine_cores,
    shard_of,
    task_name,
)
from repro.testing import faults

__all__ = ["GraphSpec", "Workload", "BatchRunner", "BatchResult", "ParityError"]


class ParityError(AssertionError):
    """A backend produced different results than the parity (reference) backend."""


@dataclass(frozen=True)
class GraphSpec:
    """One cell of a sweep grid: a graph family instantiation plus its seed.

    Two kinds of cell share this shape:

    * a *generator* cell — ``family`` names one of
      :data:`repro.congest.generators.FAMILIES` and ``path`` is ``None``;
    * a *file* cell — ``family == "file"`` and ``path`` names an on-disk edge
      list (or cached artifact) ingested by :mod:`repro.corpus`; ``n`` and
      ``delta`` record the ingested graph's actual values and are verified
      against the file at build time, so a spec silently drifting from its
      file fails loudly.

    ``path`` defaults to ``None`` and is omitted from every serialized form
    when absent, so the identity (cell keys, grid hashes, spec hashes) of all
    pre-existing generator specs is unchanged.
    """

    family: str
    n: int
    delta: int
    seed: int = 0
    path: str | None = None

    def label(self) -> str:
        base = f"{self.family}(n={self.n}, Delta={self.delta}, seed={self.seed})"
        if self.path is not None:
            import pathlib

            return f"{self.family}({pathlib.Path(self.path).name}, n={self.n}, Delta={self.delta})"
        return base


@dataclass(frozen=True)
class Workload:
    """A materialised cell: the graph and its standing ``Delta^4`` input coloring.

    The input coloring — the assumption of Corollary 1.2 ("on any
    Delta^4-input colored graph"): distinct colors whenever the ``Delta^4``
    space allows it, otherwise a greedy coloring spread into the space — is
    built *lazily* on first access, so algorithms that start from unique IDs
    instead (registered with ``requires_input_coloring=False``, e.g.
    ``linial`` / ``delta_plus_one``) never pay for its construction.
    """

    spec: GraphSpec
    graph: Graph

    @cached_property
    def _delta4_input(self) -> tuple[np.ndarray, int]:
        from repro.congest.ids import delta4_input_coloring

        return delta4_input_coloring(self.graph, seed=self.spec.seed)

    @property
    def input_colors(self) -> np.ndarray:
        return self._delta4_input[0]

    @property
    def m(self) -> int:
        return int(self._delta4_input[1])

    @property
    def eff_delta(self) -> int:
        return max(1, self.graph.max_degree)


# --------------------------------------------------------------------------- #
# Tasks
#
# A task is ``task(workload, engine, **params) -> Mapping[str, Any]``.  Keys
# starting with "_" are artifacts (arrays used for parity checking, stripped
# from the tidy record); everything else must be a scalar measurement.
#
# Named tasks live in the algorithm registry (:mod:`repro.api.registry`):
# every ``repro.core`` module self-registers its algorithms, so the runner
# needs no hardcoded task table.  The registry import is local (inside the
# resolver) so that ``repro.engine`` never imports ``repro.core`` at module
# load time (``repro.core`` imports the engine registry).
# --------------------------------------------------------------------------- #


def __getattr__(name: str):
    if name == "TASKS":
        # The pre-registry task table, kept as a deprecated live view.
        import warnings

        warnings.warn(
            "repro.engine.batch.TASKS is deprecated; use the algorithm registry "
            "instead: repro.api.algorithm_names() lists the names, "
            "repro.api.get_algorithm(name) returns the spec (its .runner is the "
            "task callable)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.registry import tasks_view

        return tasks_view()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #


@dataclass
class BatchResult:
    """Tidy records produced by a sweep (one dict per cell).

    ``records`` holds one dict per cell in grid order; a cell that exhausted
    its retry budget contributes a *CellError record* (its ``"error"`` key
    carries the structured failure — see :attr:`failures`) so partial results
    keep their grid shape.  ``events`` is the fault-tolerance provenance
    stream: one entry per retry / jit->array downgrade / recorded failure.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    backend: str = "array"
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def failures(self) -> list[dict[str, Any]]:
        """The CellError records of the sweep (cells that exhausted retries)."""
        return [r for r in self.records if "error" in r]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def column(self, key: str) -> list[Any]:
        return [r.get(key) for r in self.records]

    def columns(self, exclude: Sequence[str] = ()) -> list[str]:
        """The union of record keys in first-seen order.

        A heterogeneous params grid (e.g. ``[{"r": 2}, {"r": 2, "baseline":
        True}]``) yields records with different key sets; taking the union —
        not the first record's keys — keeps every measurement visible.
        """
        seen: dict[str, None] = {}
        for record in self.records:
            seen.update(dict.fromkeys(record))
        return [key for key in seen if key not in exclude]

    @property
    def total_seconds(self) -> float:
        return float(sum(r.get("seconds", 0.0) for r in self.records))

    def to_table(self, title: str, columns: Sequence[str] | None = None):
        """Render the records as a :class:`repro.analysis.tables.Table`."""
        from repro.analysis.tables import Table

        if columns is None:
            columns = self.columns()
        table = Table(title, list(columns))
        for record in self.records:
            table.add_row(*(record.get(c, "") for c in columns))
        return table


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #


class BatchRunner:
    """Run experiment tasks over grids of graphs with a pluggable backend.

    Parameters
    ----------
    backend:
        The engine (or backend name) every cell runs on; default ``"array"``,
        the fast path.
    parity_check:
        Re-run every cell on ``parity_backend`` and require identical scalar
        measurements and array artifacts (colors / parts / ruling sets).
        This is the built-in reference-parity check of the engine layer.
    parity_backend:
        Backend to validate against (default ``"reference"``).
    workers:
        Number of worker processes :meth:`run` shards its cells across.  The
        default ``1`` executes serially in-process; ``N > 1`` requires
        ``backend``/``parity_backend`` to be registered *names* (workers
        rebuild their engines from the registry) and named or importable
        tasks.  Records are identical either way.
    worker_init:
        Importable callable executed first in every worker process (e.g. to
        register a third-party backend); ignored when ``workers == 1``.
    start_method:
        ``multiprocessing`` start method for the pool; default ``"fork"``
        where available, else ``"spawn"``.
    retry:
        The :class:`~repro.engine.retry.RetryPolicy` governing failing cells
        in :meth:`run` (attempts, per-cell timeout, backoff, record-vs-raise
        on exhaustion).  The default policy keeps today's fail-fast behavior
        for plain exceptions while still containing worker crashes and
        downgrading failing jit cells to ``"array"``.

    Graphs and input colorings are cached per :class:`GraphSpec`, so a sweep
    over many parameter settings of the same graphs pays the generation and
    CSR construction cost exactly once — including across the parity re-runs.
    With ``workers > 1`` each worker process keeps its own cache.
    """

    def __init__(
        self,
        backend: str | Engine = "array",
        parity_check: bool = False,
        parity_backend: str | Engine = "reference",
        workers: int = 1,
        worker_init: Callable[[], None] | None = None,
        start_method: str | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.engine = get_engine(backend)
        self.parity_check = bool(parity_check)
        self.parity_engine = get_engine(parity_backend)
        self.workers = int(workers)
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.worker_init = worker_init
        self.start_method = start_method
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise EngineError(f"retry must be a RetryPolicy or None, got {retry!r}")
        self.retry = retry or RetryPolicy()
        self._downgrade_engine: Engine | None = None
        # Pay one-time backend setup (JIT compilation) before any cell is
        # timed; a no-op for the reference/array engines.
        self.engine.warmup()
        # Registry names survive the trip to a worker process; live Engine
        # instances do not, so remember which kind we were given.
        self._backend_name = backend if isinstance(backend, str) else None
        self._parity_backend_name = parity_backend if isinstance(parity_backend, str) else None
        self._graphs: dict[GraphSpec, Graph] = {}
        self._workloads: dict[GraphSpec, Workload] = {}

    # ------------------------------------------------------------------ #
    # Grid and workload construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def grid(
        families: str | Iterable[str],
        ns: int | Iterable[int],
        deltas: int | Iterable[int],
        seeds: int | Iterable[int] = (0,),
    ) -> list[GraphSpec]:
        """Cross product of the given axes as a list of :class:`GraphSpec`."""

        def tup(x):
            return (x,) if isinstance(x, (int, str)) else tuple(x)

        return [
            GraphSpec(family=f, n=n, delta=d, seed=s)
            for f, n, d, s in itertools.product(tup(families), tup(ns), tup(deltas), tup(seeds))
        ]

    def _build_graph(self, spec: GraphSpec) -> Graph:
        """The cell's graph, from the cache when present but *without* caching.

        The parallel path publishes graphs to shared memory and must not pin
        private parent-process copies alive for the whole sweep — the shared
        segment (closed when the sweep ends) is the only copy that should
        exist.
        """
        if spec in self._graphs:
            return self._graphs[spec]
        if spec.family == "file":
            from repro.corpus import load_file_graph

            return load_file_graph(spec)
        from repro.congest import generators

        return generators.by_name(spec.family, spec.n, spec.delta, seed=spec.seed)

    def graph(self, spec: GraphSpec) -> Graph:
        """The (cached) graph of a cell."""
        if spec not in self._graphs:
            self._graphs[spec] = self._build_graph(spec)
        return self._graphs[spec]

    def preload_graph(self, spec: GraphSpec, graph: Graph) -> None:
        """Seed the graph cache: ``spec``'s cell runs on ``graph`` as given.

        This is how live (non-generator) graphs enter the runner — the solver
        API uses it for ``Problem(graph=<Graph>)``, and the parallel workers
        use it to attach the parent's shared-memory graphs.  The derived
        ``Delta^4`` workload is still built from the cell's seed, exactly as
        for a generated graph.
        """
        self._graphs[spec] = graph
        self._workloads.pop(spec, None)

    def workload(self, spec: GraphSpec) -> Workload:
        """The (cached) graph plus its standing ``Delta^4`` input coloring
        (built lazily — see :class:`Workload`)."""
        if spec not in self._workloads:
            self._workloads[spec] = Workload(spec=spec, graph=self.graph(spec))
        return self._workloads[spec]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve_task(task: str | Callable[..., Mapping[str, Any]]):
        if callable(task):
            return task
        from repro.api.registry import get_algorithm

        return get_algorithm(task).runner  # raises UnknownAlgorithmError (a KeyError)

    @staticmethod
    def _validate_params(
        task: str | Callable[..., Mapping[str, Any]], params: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Registry-validate ``params`` for named tasks; custom callables pass through.

        Unknown keys raise :class:`repro.api.registry.UnknownParameterError`
        naming the algorithm and its accepted keys; ill-typed values raise
        :class:`repro.api.registry.ParameterValueError`.  Values are returned
        exactly as given (validation never coerces), so cell keys and records
        are unaffected.
        """
        params = dict(params or {})
        if isinstance(task, str):
            from repro.api.registry import get_algorithm

            get_algorithm(task).validate_params(params)
        return params

    @staticmethod
    def _split_artifacts(raw: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
        record = {k: v for k, v in raw.items() if not k.startswith("_")}
        artifacts = {k: v for k, v in raw.items() if k.startswith("_")}
        return record, artifacts

    def _check_parity(self, task_fn, workload: Workload, params: Mapping[str, Any],
                      record: Mapping[str, Any], artifacts: Mapping[str, Any],
                      engine: Engine | None = None) -> None:
        engine = engine or self.engine
        ref_raw = task_fn(workload, self.parity_engine, **params)
        ref_record, ref_artifacts = self._split_artifacts(ref_raw)
        cell = f"{workload.spec.label()} params={dict(params)}"
        for key, value in ref_record.items():
            if record.get(key) != value:
                raise ParityError(
                    f"parity mismatch on {cell}: field {key!r} is {record.get(key)!r} on "
                    f"backend {engine.name!r} but {value!r} on {self.parity_engine.name!r}"
                )
        for key, value in ref_artifacts.items():
            if key not in artifacts or not np.array_equal(artifacts[key], value):
                raise ParityError(
                    f"parity mismatch on {cell}: artifact {key!r} differs between "
                    f"backends {engine.name!r} and {self.parity_engine.name!r}"
                )

    def run_cell(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        spec: GraphSpec,
        params: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Run one (graph, seed, params) cell and return its tidy record."""
        record, _ = self.run_cell_with_artifacts(task, spec, params=params)
        return record

    def run_cell_with_artifacts(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        spec: GraphSpec,
        params: Mapping[str, Any] | None = None,
        _engine: Engine | None = None,
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Like :meth:`run_cell`, but also return the artifacts (colors, parts, ...).

        The solver API (:func:`repro.api.solve.solve`) uses this to build a
        :class:`~repro.api.report.RunReport` carrying the actual coloring.
        ``_engine`` overrides the runner's engine for this one call — the
        retry ladder's jit->array downgrade path; the record's ``"backend"``
        field reports the engine that actually produced it.
        """
        task_fn = self._resolve_task(task)
        params = self._validate_params(task, params)
        engine = _engine or self.engine
        workload = self.workload(spec)
        start = time.perf_counter()
        raw = task_fn(workload, engine, **params)
        elapsed = time.perf_counter() - start
        record, artifacts = self._split_artifacts(raw)
        if self.parity_check:
            self._check_parity(task_fn, workload, params, record, artifacts, engine=engine)
        out: dict[str, Any] = {
            "family": spec.family,
            "n": workload.graph.n,
            "Delta": workload.eff_delta,
            "seed": spec.seed,
            **params,
            **record,
            "backend": engine.name,
            "seconds": elapsed,
        }
        if getattr(spec, "path", None) is not None:
            out["path"] = str(spec.path)
        return out, artifacts

    # ------------------------------------------------------------------ #
    # Fault-tolerant execution (the retry ladder)
    # ------------------------------------------------------------------ #

    def _attempt_cell(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        spec: GraphSpec,
        params: Mapping[str, Any] | None = None,
        attempt: int = 1,
        engine: Engine | None = None,
    ) -> dict[str, Any]:
        """One attempt of one cell (the unit the retry ladder retries).

        This is also where the ``"cell"`` fault-injection site fires — before
        any work, with the cell's identity and attempt number as match
        context — and it is the method pool workers invoke, so an injected
        kill/hang lands inside the worker process exactly like a real one.
        """
        faults.fire(
            "cell",
            family=spec.family, n=spec.n, delta=spec.delta, seed=spec.seed,
            attempt=attempt, backend=(engine or self.engine).name,
        )
        record, _ = self.run_cell_with_artifacts(task, spec, params=params, _engine=engine)
        return record

    def _array_engine(self) -> Engine:
        """The lazily-built downgrade target for failing jit cells."""
        if self._downgrade_engine is None:
            self._downgrade_engine = get_engine("array")
            self._downgrade_engine.warmup()
        return self._downgrade_engine

    def _run_cell_guarded(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        spec: GraphSpec,
        params: Mapping[str, Any],
        key: str,
        on_event: Callable[[dict[str, Any]], None],
    ) -> dict[str, Any]:
        """Run one cell under :attr:`retry` (the serial arm of the ladder).

        Mirrors the parallel scheduler's failure handling exactly —
        :meth:`RetryPolicy.next_action` is the single shared state machine —
        except that deadlines are enforced by abandoning the hung thread
        (:func:`~repro.engine.retry.call_with_deadline`) rather than killing
        a worker process.
        """
        policy = self.retry
        backend = self._backend_name or self.engine.name
        attempt, downgraded = 1, False
        engine: Engine | None = None  # None = the runner's own engine
        while True:
            try:
                if policy.cell_timeout is not None:
                    return call_with_deadline(
                        lambda: self._attempt_cell(task, spec, params,
                                                   attempt=attempt, engine=engine),
                        policy.cell_timeout, key,
                    )
                return self._attempt_cell(task, spec, params, attempt=attempt, engine=engine)
            except BaseException as exc:  # noqa: BLE001 — classified; fatal kinds re-raise
                kind = classify_error(exc)
                action = policy.next_action(kind, attempt, backend=backend,
                                            downgraded=downgraded)
                tier = None
                try:
                    tier = (engine or self.engine).active_tier()
                except Exception:  # noqa: BLE001 — tier is provenance only
                    pass
                err = describe_error(exc, kind=kind, attempts=attempt, tier=tier)
                if action == "retry":
                    on_event({"event": "retry", "kind": kind,
                              "attempt": attempt, "error": err})
                    delay = policy.delay(key, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                elif action == "downgrade":
                    on_event({"event": "degrade", "from": backend, "to": "array",
                              "kind": kind, "attempt": attempt, "error": err})
                    engine = self._array_engine()
                    downgraded = True
                    attempt += 1
                elif action == "record":
                    on_event({"event": "cell-error", "error": err})
                    return cell_error_record(
                        spec, params,
                        backend="array" if downgraded else backend, error=err,
                    )
                else:  # "raise" — fatal, or exhausted under on_error="raise"
                    raise

    def _jobs(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        cells: Iterable[GraphSpec],
        params_grid: Iterable[Mapping[str, Any]] | None,
    ) -> list[tuple[int, str, GraphSpec, dict[str, Any]]]:
        """The deterministic job list: ``(index, cell key, spec, params)``.

        Materialises both axes up front so one-shot iterables (generators)
        behave identically to lists — ``params_grid`` is re-used per spec.
        """
        grids = [dict(p) for p in params_grid] if params_grid is not None else [{}]
        grids = [self._validate_params(task, p) for p in grids]
        jobs = []
        for spec in cells:
            for params in grids:
                jobs.append((len(jobs), cell_key(task, spec, params), spec, dict(params)))
        return jobs

    @staticmethod
    def _apply_shard(
        jobs: list, shard: tuple[int, int] | None,
    ) -> tuple[list, dict[str, Any] | None]:
        """Filter the deterministic job list down to one shard.

        Returns ``(shard jobs, shard descriptor)``.  Shard jobs keep their
        *global* grid indices, so a shard's records — and its sink line order
        — are exactly the corresponding slice of an unsharded run.  The
        descriptor (``index`` / ``of`` / ``total`` / ``cells`` mapping each
        cell id to its global grid position) goes into the sink manifest,
        where ``repro merge`` validates coverage and restores grid order.
        """
        if shard is None:
            return jobs, None
        try:
            index, of = int(shard[0]), int(shard[1])
        except (TypeError, ValueError, IndexError, KeyError):
            raise EngineError(
                f"shard must be an (index, of) pair, got {shard!r}"
            ) from None
        if of < 1 or not 0 <= index < of:
            raise EngineError(
                f"shard must satisfy 0 <= index < of (of >= 1), got {index}/{of}"
            )
        mine = [job for job in jobs if shard_of(job[1], of) == index]
        descriptor = {
            "index": index,
            "of": of,
            "total": len(jobs),
            "cells": {cell_id(key): position for position, key, _, _ in mine},
        }
        return mine, descriptor

    def _manifest_from_jobs(
        self, task: str | Callable[..., Mapping[str, Any]], jobs: list,
        spec_hash: str | None = None, all_jobs: list | None = None,
        shard: dict[str, Any] | None = None,
    ) -> RunManifest:
        from repro import __version__

        # grid_hash always pins the FULL grid (identical on every shard and
        # on an unsharded run); `cells` counts what this file will contain.
        keys = all_jobs if all_jobs is not None else jobs
        return RunManifest(
            task=task_name(task),
            backend=self.engine.name,
            grid_hash=grid_hash(key for _, key, _, _ in keys),
            cells=len(jobs),
            parity_check=self.parity_check,
            version=__version__,
            spec_hash=spec_hash,
            backend_tier=self.engine.active_tier(),
            workers=self.workers,
            cores=machine_cores(),
            shard=shard,
        )

    def manifest(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        cells: Iterable[GraphSpec],
        params_grid: Iterable[Mapping[str, Any]] | None = None,
        spec_hash: str | None = None,
        shard: tuple[int, int] | None = None,
    ) -> RunManifest:
        """The :class:`RunManifest` describing a sweep (what sinks record/check)."""
        all_jobs = self._jobs(task, cells, params_grid)
        jobs, descriptor = self._apply_shard(all_jobs, shard)
        return self._manifest_from_jobs(task, jobs, spec_hash=spec_hash,
                                        all_jobs=all_jobs, shard=descriptor)

    def run(
        self,
        task: str | Callable[..., Mapping[str, Any]],
        cells: Iterable[GraphSpec],
        params_grid: Iterable[Mapping[str, Any]] | None = None,
        sink: ResultSink | None = None,
        spec_hash: str | None = None,
        progress: Callable[[int, int, str | None, Mapping[str, Any] | None], None] | None = None,
        shard: tuple[int, int] | None = None,
    ) -> BatchResult:
        """Sweep ``task`` over every cell (and every params dict, if given).

        Cells are ordered deterministically (grid order), sharded across
        :attr:`workers` processes when ``workers > 1``, streamed to ``sink``
        as they complete, and returned as a :class:`BatchResult` in grid
        order.  A sink opened with ``resume=True`` pre-loads the records of
        already-completed cells; those cells are not re-executed.  When the
        sweep was described by a saved spec (``repro run --spec``),
        ``spec_hash`` is embedded in the sink's manifest so the result file
        pins the exact spec that produced it.

        ``progress(done, total, cell_id, record)`` — when given — is called
        once up front with the resumed-cell count (``cell_id=None``) and then
        after every completed cell (after the sink write, so a reported cell
        is always durable).  This is the hook the job server's SSE stream and
        live status counters hang off.

        Failing cells follow :attr:`retry` (see
        :mod:`repro.engine.retry`): transient failures are retried with
        deterministic backoff, worker crashes re-dispatch only the lost
        cells, failing jit cells get one attempt on ``"array"`` (the
        downgrade is recorded in the event stream and the record's backend
        field), and exhausted cells yield CellError records in their grid
        slot instead of aborting the sweep.  A resumed sink re-runs cells
        whose stored record is a CellError — failure is never "completed".

        ``shard=(i, k)`` restricts the sweep to shard ``i`` of ``k``: the
        deterministic, worker-count-independent partition of the full grid
        by :func:`~repro.engine.sink.shard_of`.  A shard's records are
        byte-identical (modulo wall-clock fields) to the corresponding slice
        of an unsharded run, its sink manifest carries the shard descriptor,
        and ``repro merge`` joins the ``k`` shard files back into one
        canonical run.
        """
        self._resolve_task(task)  # fail fast on unknown task names
        all_jobs = self._jobs(task, cells, params_grid)
        jobs, shard_descriptor = self._apply_shard(all_jobs, shard)
        ids = {index: cell_id(key) for index, key, _, _ in jobs}
        records: dict[int, dict[str, Any]] = {}
        if sink is not None:
            sink.start(self._manifest_from_jobs(task, jobs, spec_hash=spec_hash,
                                                all_jobs=all_jobs,
                                                shard=shard_descriptor))
            for index, cid in ids.items():
                done = sink.completed.get(cid)
                if done is not None and "error" not in done:
                    records[index] = done
        pending = [job for job in jobs if job[0] not in records]
        if progress is not None:
            progress(len(records), len(jobs), None, None)

        events: list[dict[str, Any]] = []

        def on_event(index: int, event: dict[str, Any]) -> None:
            entry = {"cell": ids[index], **event}
            events.append(entry)
            if sink is not None:
                sink.note(entry)

        handles: dict[GraphSpec, Any] = {}
        try:
            if self.workers > 1 and len(pending) > 1:
                if self._backend_name is None or self._parity_backend_name is None:
                    raise EngineError(
                        "parallel execution requires backends given as registered names "
                        "(workers rebuild their engines from the registry); pass e.g. "
                        "backend='array' or register_engine() your engine and use its name"
                    )
                from repro.engine.parallel import run_cells_parallel

                # The zero-copy graph plane: build each pending cell's graph
                # ONCE in the parent, publish its CSR arrays to shared memory,
                # and let every worker attach read-only views — instead of W
                # workers regenerating W private copies.  Handles are closed
                # (and the segments unlinked) as soon as the pool is drained,
                # even on worker exceptions.  Deliberate trade-off: the parent
                # generates serially before the pool starts and the segments
                # live for the whole sweep, buying zero redundant generation
                # and worker-count-independent memory; per-worker lazy
                # regeneration would overlap generation with compute but redo
                # it up to W (x2 with parity) times and multiply peak memory.
                for spec in dict.fromkeys(spec for _, _, spec, _ in pending):
                    handles[spec] = self._build_graph(spec).to_shared()
                results = run_cells_parallel(
                    [(index, task, spec, params) for index, _, spec, params in pending],
                    workers=self.workers,
                    backend=self._backend_name,
                    parity_check=self.parity_check,
                    parity_backend=self._parity_backend_name,
                    worker_init=self.worker_init,
                    start_method=self.start_method,
                    shared_graphs=handles,
                    retry=self.retry,
                    on_event=on_event,
                )
            else:
                results = (
                    (index,
                     self._run_cell_guarded(task, spec, params, key,
                                            lambda e, i=index: on_event(i, e)))
                    for index, key, spec, params in pending
                )

            for index, record in results:
                records[index] = record
                if sink is not None:
                    if "error" in record:
                        sink.write_failure(ids[index], record)
                    else:
                        sink.write(ids[index], record)
                if progress is not None:
                    progress(len(records), len(jobs), ids[index], record)
        finally:
            for handle in handles.values():
                handle.close()
        return BatchResult(
            records=[records[index] for index, _, _, _ in jobs],
            backend=self.engine.name,
            events=events,
        )
