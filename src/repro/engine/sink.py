"""Streaming result sinks: durable, resumable record streams for sweeps.

A :class:`ResultSink` receives the tidy records of a
:class:`repro.engine.batch.BatchRunner` sweep *as each cell completes* and
appends them to a durable file, so an interrupted sweep loses at most the
cells in flight.  Two formats ship with the package:

* :class:`JsonlSink` — one JSON object per line.  The first line is the run
  manifest; every following line is ``{"cell": <id>, "record": {...}}``.
  JSONL is the *resumable* format of record: types round-trip exactly, and
  partially written final lines (a sweep killed mid-write) are detected and
  discarded on resume.
* :class:`CsvSink` — a spreadsheet-friendly table with a leading ``cell``
  column; the manifest lives in a ``<path>.manifest.json`` sidecar.  CSV also
  resumes, but values read back from a CSV are re-typed best-effort (CSV has
  no types), so prefer JSONL when the file feeds further tooling.

The **manifest** pins down what a result file is: the task, the backend, the
package version, whether cells were parity-checked, and a hash over the
ordered cell keys of the grid.  ``resume=True`` refuses to append to a file
whose manifest disagrees — resuming a *different* sweep into an existing file
is always an error, never silent corruption.

Cell identity is the (task, graph spec, params) triple, canonicalised by
:func:`cell_key` and hashed by :func:`cell_id`; the runner skips cells whose
ids are already present in the sink.  Because the runner also orders cells
deterministically, a resumed or parallel sweep produces the same records as
an uninterrupted serial one (modulo the wall-clock ``seconds`` field).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.testing import faults

__all__ = [
    "SinkError",
    "RunManifest",
    "ResultSink",
    "JsonlSink",
    "CsvSink",
    "open_sink",
    "task_name",
    "cell_key",
    "cell_id",
    "grid_hash",
    "shard_of",
    "machine_cores",
]


class SinkError(RuntimeError):
    """Raised for unusable sink files: malformed lines, manifest mismatches."""


# --------------------------------------------------------------------------- #
# Cell identity
# --------------------------------------------------------------------------- #


def task_name(task: str | Callable[..., Any]) -> str:
    """Canonical name of a task: the registry key, or ``module:qualname``."""
    if isinstance(task, str):
        return task
    return f"{getattr(task, '__module__', '?')}:{getattr(task, '__qualname__', repr(task))}"


def _jsonable(value: Any) -> Any:
    """JSON encoder fallback: NumPy scalars become plain Python scalars."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"value {value!r} of type {type(value).__name__} is not JSON-serializable")


def cell_key(task: str | Callable[..., Any], spec, params: Mapping[str, Any]) -> str:
    """Canonical JSON identity of one (task, graph spec, params) cell.

    A file-backed spec (``family="file"``) contributes its ``path`` — two
    corpus cells with equal (n, delta) must not collide — while generator
    specs keep the exact pre-file payload, so every existing cell id, grid
    hash, and shard assignment is unchanged.
    """
    payload = {
        "task": task_name(task),
        "family": spec.family,
        "n": spec.n,
        "delta": spec.delta,
        "seed": spec.seed,
        "params": {k: params[k] for k in sorted(params)},
    }
    path = getattr(spec, "path", None)
    if path is not None:
        payload["path"] = str(path)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_jsonable)


def cell_id(key: str) -> str:
    """Short stable id of a cell key (hex SHA-256 prefix)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def grid_hash(keys: Iterable[str]) -> str:
    """Hash of the *ordered* cell keys of a sweep; pins grid and cell order."""
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def shard_of(key: str, of: int) -> int:
    """Deterministic shard index of one cell: a stable hash of its identity.

    The assignment depends only on the cell's canonical :func:`cell_key` and
    the shard count ``of`` — never on worker counts, the machine, execution
    order, or Python's per-process hash seed — so shard ``i`` of ``k`` names
    the same set of cells anywhere, any time.  Domain-separated from
    :func:`cell_id` (different hash input prefix), so shard index and cell id
    are independent functions of the same key.
    """
    of = int(of)
    if of < 1:
        raise SinkError(f"shard count must be >= 1, got {of!r}")
    digest = hashlib.sha256(b"shard:" + key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % of


def machine_cores() -> int:
    """CPU cores available to this process (manifest/benchmark provenance)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# --------------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunManifest:
    """What a result stream contains; written first, checked on resume.

    ``spec_hash`` is set when the sweep was described by a saved declarative
    spec (see :mod:`repro.api.spec`): it is the canonical hash of the exact
    ``{problems, run, params_grid}`` document, so a result file can be traced
    back to — and re-verified against — the spec that produced it.

    ``backend_tier`` records the execution tier that actually ran (see
    :meth:`repro.engine.base.Engine.active_tier` — e.g. ``"jit:numba"`` vs
    ``"jit:fallback-array"``), so a result file also answers *how* its
    backend executed.  The tier is informational provenance, not identity:
    resume does **not** compare it (results are bit-identical across tiers
    by the parity guarantee, and a restart may legitimately resolve a
    different tier).  ``workers`` and ``cores`` are equally provenance —
    how many worker processes the producing run sharded across and how many
    CPU cores its machine had — and are never compared on resume (records
    are worker-count-independent by construction).

    ``shard``, when set, marks the file as one shard of a fleet-scale sweep:
    ``{"index": i, "of": k, "total": N, "cells": {cell_id: grid_position}}``.
    ``grid_hash`` stays the hash of the *full* grid (all ``N`` cells, the
    same value on every shard and on an unsharded run), while ``cells``
    counts only this shard's cells.  Unlike the provenance fields the shard
    identity *is* compared on resume — resuming shard 1/2 into shard 0/2's
    file is a different sweep — and ``repro merge`` uses the per-shard cell
    position maps to validate disjoint, complete coverage and to interleave
    records back into full grid order.
    """

    task: str
    backend: str
    grid_hash: str
    cells: int
    parity_check: bool
    version: str
    spec_hash: str | None = None
    backend_tier: str | None = None
    workers: int = 1
    cores: int | None = None
    shard: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        fields = {f: data.get(f) for f in ("task", "backend", "grid_hash", "cells",
                                           "parity_check", "version")}
        if any(v is None for v in fields.values()):
            raise SinkError(f"incomplete run manifest: {dict(data)!r}")
        return cls(**fields, spec_hash=data.get("spec_hash"),
                   backend_tier=data.get("backend_tier"),
                   workers=int(data.get("workers", 1)),
                   cores=data.get("cores"),
                   shard=data.get("shard"))

    def shard_identity(self) -> tuple[int, int] | None:
        """The ``(index, of)`` pair of a shard manifest, or ``None``."""
        if self.shard is None:
            return None
        return (self.shard.get("index"), self.shard.get("of"))

    def check_resumable(self, existing: "RunManifest", path: os.PathLike | str) -> None:
        """Refuse to resume into a file produced by a *different* run setup."""
        for field in ("task", "backend", "grid_hash", "parity_check"):
            ours, theirs = getattr(self, field), getattr(existing, field)
            if ours != theirs:
                raise SinkError(
                    f"cannot resume into {os.fspath(path)!r}: manifest field {field!r} is "
                    f"{theirs!r} in the file but {ours!r} for this run — the file belongs "
                    f"to a different sweep"
                )
        if self.shard_identity() != existing.shard_identity():
            raise SinkError(
                f"cannot resume into {os.fspath(path)!r}: the file belongs to shard "
                f"{existing.shard_identity()!r} but this run is shard "
                f"{self.shard_identity()!r} — shards never share a result file"
            )


# --------------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------------- #


class ResultSink:
    """Base class: a durable, append-only stream of sweep records.

    Lifecycle: ``start(manifest)`` once (loads completed cells when resuming,
    writes the manifest otherwise), then ``write(cell, record)`` per completed
    cell, then ``close()``.  Sinks are context managers; :attr:`completed`
    maps cell ids to their previously recorded records after ``start``.
    """

    #: cell id -> record, loaded by ``start`` when resuming.
    completed: dict[str, dict[str, Any]]

    def __init__(self, path: os.PathLike | str, resume: bool = False):
        self.path = pathlib.Path(path)
        self.resume = bool(resume)
        self.completed = {}
        self.written = 0
        self._listeners: list[Callable[[str, Mapping[str, Any]], None]] = []

    # -- interface ------------------------------------------------------- #

    def add_listener(self, listener: Callable[[str, Mapping[str, Any]], None]) -> None:
        """Register ``listener(cell_id, record)``, called after each durable write.

        The sink-layer progress hook: listeners fire only once the record has
        been flushed to the file, so anything built on them (the job server's
        SSE stream) never reports a cell the sink could still lose.
        """
        self._listeners.append(listener)

    def _notify(self, cell: str, record: Mapping[str, Any]) -> None:
        for listener in self._listeners:
            listener(cell, record)

    def start(self, manifest: RunManifest) -> None:
        raise NotImplementedError

    def write(self, cell: str, record: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def write_failure(self, cell: str, record: Mapping[str, Any]) -> None:
        """Record a CellError record (a record whose ``"error"`` key carries a
        structured failure — see :func:`repro.engine.retry.cell_error_record`).

        Default: same as :meth:`write`.  Sinks whose format cannot hold the
        nested error object (CSV) override this to keep the failure in their
        provenance channel instead; either way the cell is *not* treated as
        completed on resume, so a later run re-executes it.
        """
        self.write(cell, record)

    def note(self, event: Mapping[str, Any]) -> None:
        """Append a provenance event (retry / downgrade / cell-error) to the
        sink's side channel.  Events are *not* records: resume ignores them
        and they never mark a cell completed.  Default: dropped."""

    def _fire_write_fault(self, cell: str) -> None:
        """The ``"sink-write"`` fault-injection site (fires before the append)."""
        faults.fire("sink-write", cell=cell, write=self.written + 1)

    def close(self) -> None:
        pass

    # -- context management ---------------------------------------------- #

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlSink(ResultSink):
    """Line-delimited JSON: manifest first, then one ``{cell, record}`` per line."""

    def __init__(self, path: os.PathLike | str, resume: bool = False):
        super().__init__(path, resume)
        self._file = None

    def start(self, manifest: RunManifest) -> None:
        if self.resume and self.path.exists() and self.path.stat().st_size > 0:
            self._load_existing(manifest)
            self._file = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
            self._emit({"manifest": manifest.to_dict()})

    def _load_existing(self, manifest: RunManifest) -> None:
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        # A trailing chunk without a newline is a write the previous run did
        # not survive mid-write; it is dropped — but only *after* the file has
        # been validated as belonging to this sweep (never mutate a file the
        # resume is about to refuse).
        torn = lines[-1] != ""
        complete_lines = [line for line in lines[:-1] if line.strip()]
        if not complete_lines:
            raise SinkError(f"cannot resume from {self.path}: no manifest line")
        parsed = []
        for lineno, line in enumerate(complete_lines, start=1):
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SinkError(
                    f"cannot resume from {self.path}: malformed JSONL at line {lineno}: {exc}"
                ) from None
        head = parsed[0]
        if not isinstance(head, dict) or "manifest" not in head:
            raise SinkError(f"cannot resume from {self.path}: first line is not a manifest")
        manifest.check_resumable(RunManifest.from_dict(head["manifest"]), self.path)
        for lineno, obj in enumerate(parsed[1:], start=2):
            if isinstance(obj, dict) and "event" in obj and "record" not in obj:
                continue  # provenance event line (retry/downgrade notes), not a record
            if not isinstance(obj, dict) or "cell" not in obj or "record" not in obj:
                raise SinkError(
                    f"cannot resume from {self.path}: line {lineno} is not a "
                    "{'cell': ..., 'record': ...} object"
                )
            self.completed[obj["cell"]] = obj["record"]
        if torn:
            self.path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")

    def _emit(self, obj: Mapping[str, Any]) -> None:
        self._file.write(json.dumps(obj, separators=(",", ":"), default=_jsonable) + "\n")
        self._file.flush()

    def write(self, cell: str, record: Mapping[str, Any]) -> None:
        self._fire_write_fault(cell)
        self._emit({"cell": cell, "record": dict(record)})
        self.written += 1
        self._notify(cell, record)

    def note(self, event: Mapping[str, Any]) -> None:
        self._emit({"event": dict(event)})

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def _csv_scalar(value: str) -> Any:
    """Legacy best-effort re-typing of a CSV cell (pre-schema sidecars only).

    Kept for resuming files whose sidecar predates the typed column schema;
    it is *lossy* (the string ``"42"`` comes back as the int ``42``), which is
    exactly the bug the schema fixes.
    """
    if value == "True":
        return True
    if value == "False":
        return False
    try:
        return json.loads(value)
    except (json.JSONDecodeError, ValueError):
        return value


#: Column type tags of the CSV schema (stored in the manifest sidecar under
#: ``"columns"``).  One tag per column, frozen by the first record.
_CSV_TAGS = ("int", "float", "bool", "str", "none", "json")


def _csv_tag(value: Any) -> str:
    """The schema tag of one record value (numpy scalars unwrap first)."""
    item = getattr(value, "item", None)
    if callable(item):
        value = item()
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "none"
    return "json"


def _csv_encode(value: Any, tag: str) -> str:
    """Render ``value`` as the CSV cell text its ``tag`` decodes exactly."""
    item = getattr(value, "item", None)
    if callable(item):
        value = item()
    if tag == "json":
        return json.dumps(value, sort_keys=True, separators=(",", ":"), default=_jsonable)
    if tag == "none":
        return ""
    if isinstance(value, str) and ("\n" in value or "\r" in value):
        # The torn-tail detector uses the newline as the row-completion
        # marker; a multi-line quoted field would defeat it.
        raise SinkError(
            "CSV sinks cannot store strings containing newlines; use a JSONL sink"
        )
    return str(value)


def _csv_decode(text: str, tag: str | None) -> Any:
    """Re-type one CSV cell from its column tag — the exact inverse of
    :func:`_csv_encode` (so CSV resume round-trips like JSONL).

    ``tag=None`` means a pre-schema sidecar: fall back to the legacy lossy
    heuristic.  The empty string is the "column absent in this record"
    marker for every tag except ``str`` (where it is a genuine empty string)
    and ``none`` (where it is ``None``).
    """
    if tag is None:
        return _csv_scalar(text)
    if tag == "str":
        return text
    if tag == "none":
        return None
    if text == "":
        return ""
    if tag == "int":
        return int(text)
    if tag == "float":
        return float(text)
    if tag == "bool":
        return text == "True"
    if tag == "json":
        return json.loads(text)
    raise SinkError(f"unknown CSV column tag {tag!r}; known: {list(_CSV_TAGS)}")


class CsvSink(ResultSink):
    """Streaming CSV with a leading ``cell`` id column and a manifest sidecar.

    The column set is frozen by the first record written (or by the header of
    the file being resumed); a record with unknown keys raises
    :class:`SinkError` rather than silently dropping measurements.

    Cells are plain spreadsheet-friendly text, but each column's Python type
    is recorded in the sidecar (``"columns": {name: tag}``) when the header
    freezes, and resume re-types every value from that schema — so a resumed
    CSV sweep returns records identical to the ones originally written
    (the string ``"42"`` stays a string, ``True`` stays a bool), exactly
    like JSONL.  A record whose value type disagrees with the column's
    frozen tag raises :class:`SinkError` (a lossless round-trip needs
    homogeneous column types; mixed-type sweeps belong in JSONL).
    """

    def __init__(self, path: os.PathLike | str, resume: bool = False):
        super().__init__(path, resume)
        self._file = None
        self._writer = None
        self._columns: list[str] | None = None
        self._column_types: dict[str, str] | None = None
        self._manifest_doc: dict[str, Any] | None = None
        self._events: list[dict[str, Any]] = []

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.path.with_name(self.path.name + ".manifest.json")

    def start(self, manifest: RunManifest) -> None:
        if self.resume and self.path.exists() and self.path.stat().st_size > 0:
            self._load_existing(manifest)
            self._file = self.path.open("a", encoding="utf-8", newline="")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8", newline="")
            self._manifest_doc = manifest.to_dict()
            self._write_sidecar()

    def _write_sidecar(self) -> None:
        doc = dict(self._manifest_doc or {})
        if self._column_types is not None:
            doc["columns"] = dict(self._column_types)
        if self._events:
            doc["events"] = list(self._events)
        self.manifest_path.write_text(
            json.dumps(doc, indent=2, default=_jsonable) + "\n", encoding="utf-8"
        )

    def _load_existing(self, manifest: RunManifest) -> None:
        if not self.manifest_path.exists():
            raise SinkError(
                f"cannot resume from {self.path}: missing sidecar {self.manifest_path.name}"
            )
        try:
            sidecar = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SinkError(f"cannot resume from {self.manifest_path}: {exc}") from None
        existing = RunManifest.from_dict(sidecar)
        manifest.check_resumable(existing, self.path)
        types = sidecar.get("columns")
        self._events = [dict(e) for e in sidecar.get("events", [])]
        self._manifest_doc = {k: v for k, v in sidecar.items()
                              if k not in ("columns", "events")}
        text = self.path.read_text(encoding="utf-8")
        # A trailing chunk without a newline is a row the previous run did not
        # survive mid-write.  Field counting cannot detect a row truncated
        # *inside* its last field, so the newline is the completion marker —
        # exactly as in the JSONL sink.  (Record values are scalars and
        # newline-free strings — enforced on write — so embedded newlines
        # cannot occur.)
        torn_tail = None
        if text and not text.endswith("\n"):
            head, _, torn_tail = text.rpartition("\n")
            text = head + "\n" if head else ""
        rows = list(csv.reader(io.StringIO(text)))
        if not rows or not rows[0] or rows[0][0] != "cell":
            raise SinkError(f"cannot resume from {self.path}: missing 'cell' header column")
        self._columns = rows[0][1:]
        if types is not None:
            if set(types) != set(self._columns):
                raise SinkError(
                    f"cannot resume from {self.path}: sidecar column schema "
                    f"{sorted(types)} disagrees with the CSV header {self._columns}"
                )
            self._column_types = {col: str(types[col]) for col in self._columns}
        for lineno, row in enumerate(rows[1:], start=2):
            if len(row) != len(rows[0]):
                raise SinkError(
                    f"cannot resume from {self.path}: row {lineno} has {len(row)} fields, "
                    f"expected {len(rows[0])}"
                )
            tags = self._column_types
            self.completed[row[0]] = {
                col: _csv_decode(val, None if tags is None else tags[col])
                for col, val in zip(self._columns, row[1:])
            }
        if torn_tail is not None:
            self.path.write_text(text, encoding="utf-8")

    def write_failure(self, cell: str, record: Mapping[str, Any]) -> None:
        """CSV cannot hold the nested error object as a column (and failure
        records would poison the frozen column schema), so the failure goes to
        the sidecar's event list; the cell stays incomplete and re-runs on
        resume."""
        self.note({"cell": cell, "event": "cell-error",
                   "error": dict(record.get("error") or {})})
        self._notify(cell, record)

    def note(self, event: Mapping[str, Any]) -> None:
        self._events.append(dict(event))
        self._write_sidecar()

    def write(self, cell: str, record: Mapping[str, Any]) -> None:
        self._fire_write_fault(cell)
        if self._columns is None:
            self._columns = list(record)
            self._column_types = {col: _csv_tag(record[col]) for col in self._columns}
            csv.writer(self._file).writerow(["cell", *self._columns])
            # The sidecar is rewritten (not appended) so the schema lands in
            # the same document the manifest check reads on resume.
            self._write_sidecar()
        unknown = set(record) - set(self._columns)
        if unknown:
            raise SinkError(
                f"record has columns {sorted(unknown)} not in the CSV header "
                f"{self._columns} — CSV sinks need a fixed column set per sweep"
            )
        row = [cell]
        for col in self._columns:
            if col not in record:
                row.append("")
                continue
            value = record[col]
            if self._column_types is not None:
                tag = _csv_tag(value)
                if tag != self._column_types[col]:
                    raise SinkError(
                        f"column {col!r} holds {self._column_types[col]} values but this "
                        f"record carries a {tag} ({value!r}) — a lossless CSV round-trip "
                        "needs homogeneous column types; use a JSONL sink for mixed types"
                    )
                row.append(_csv_encode(value, tag))
            else:
                # Pre-schema file being resumed: keep the legacy rendering.
                row.append("" if value is None else str(value))
        csv.writer(self._file).writerow(row)
        self._file.flush()
        self.written += 1
        self._notify(cell, record)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def open_sink(path: os.PathLike | str, resume: bool = False) -> ResultSink:
    """Build the sink matching ``path``'s suffix (``.jsonl``/``.ndjson``/``.csv``)."""
    suffix = pathlib.Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return JsonlSink(path, resume=resume)
    if suffix == ".csv":
        return CsvSink(path, resume=resume)
    raise SinkError(
        f"cannot infer sink format from {os.fspath(path)!r}; use a .jsonl/.ndjson/.csv suffix"
    )
