"""The fault-tolerance policy layer: retry/timeout policy and error records.

This module defines the vocabulary the execution plane uses to survive
failures instead of aborting sweeps:

* :class:`RetryPolicy` — a typed, serializable policy (max attempts, per-cell
  timeout, exponential backoff with *deterministic* jitter) declared on
  :class:`repro.api.spec.Run` and surfaced as ``--retries`` /
  ``--cell-timeout`` on the CLI.  The policy is part of the spec schema: a
  non-default policy is hashed into the spec hash (a default one is omitted,
  so every pre-existing spec hash is unchanged).
* **Error classification** — every failure is classified into an *error
  kind* (:func:`classify_error`): ``"crash"`` (the worker process died),
  ``"timeout"`` (the cell exceeded its deadline), ``"error"`` (the cell
  raised an ordinary exception), or a *fatal* kind (``"parity"``,
  ``"interrupt"``) that always aborts the sweep — a parity mismatch is never
  something to retry past.
* **Structured error records** — when a cell exhausts its attempts the sweep
  records a *CellError record* (:func:`cell_error_record`) carrying the cell
  identity plus an ``"error"`` object (kind, exception type, message, attempt
  count, backend tier, traceback digest) and continues with the remaining
  cells: partial results plus a failure manifest beat an empty directory.
  Failed cells are *not* treated as completed on resume — a later
  ``resume=True`` run re-executes exactly those cells.

The retry ladder for one cell (shared by the serial and parallel paths via
:meth:`RetryPolicy.next_action`)::

    attempt -> ok ........................................ record
            -> fatal (parity/interrupt) .................. raise (sweep aborts)
            -> crash/timeout/error
                 attempts left? .......................... retry (backoff)
                 backend == "jit", not yet downgraded? .... one attempt on "array"
                 kind == "error" and on_error == "raise"? . raise (back-compat)
                 otherwise ............................... CellError record

Crashes get a retry floor of two attempts even under the default policy —
re-dispatching a cell whose worker was OOM-killed is infrastructure recovery,
not a user-configured retry.  Plain cell exceptions keep today's fail-fast
default (``on_error="raise"``): a deterministic bug in an algorithm should
abort loudly unless the operator opts into ``on_error="record"``.
"""

from __future__ import annotations

import hashlib
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.engine.base import EngineError

__all__ = [
    "RETRY_SCHEMA_VERSION",
    "ERROR_KINDS",
    "FATAL_KINDS",
    "RetryPolicy",
    "CellTimeoutError",
    "WorkerCrashError",
    "CellExecutionError",
    "classify_error",
    "error_digest",
    "describe_error",
    "cell_error_record",
    "call_with_deadline",
]

#: Version of the serialized RetryPolicy form (bump on incompatible changes).
RETRY_SCHEMA_VERSION = 1

#: Non-fatal error kinds — eligible for retry / downgrade / CellError records.
ERROR_KINDS = ("error", "timeout", "crash")

#: Fatal kinds: never retried, always re-raised.  A parity mismatch means the
#: backend is wrong (retrying would launder a correctness bug into a transient
#: failure); an interrupt means the operator asked the process to stop.
FATAL_KINDS = ("parity", "interrupt")

#: What the policy tells the executor to do next with a failed cell.
_ACTIONS = ("retry", "downgrade", "record", "raise")


class CellTimeoutError(EngineError):
    """A cell exceeded its :attr:`RetryPolicy.cell_timeout` deadline."""


class WorkerCrashError(EngineError):
    """A pool worker died (killed/segfaulted) while executing a cell."""


class CellExecutionError(EngineError):
    """Parent-side stand-in for a worker-cell failure that could not be
    re-raised natively (the original exception did not survive pickling)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the execution plane treats a failing cell.

    Parameters
    ----------
    max_attempts:
        Total attempts per cell (``1`` = no retries, today's behavior).
        ``--retries N`` on the CLI maps to ``max_attempts = N + 1``.
    cell_timeout:
        Per-cell deadline in seconds (``None`` = no deadline).  Parallel
        workers breaching it are killed and respawned; the serial path
        abandons the hung thread (documented — a single process cannot
        preempt its own compute).
    backoff_base / backoff_factor:
        Sleep ``backoff_base * backoff_factor**(attempt-1)`` seconds before
        retry ``attempt+1``; ``backoff_base=0`` disables backoff.
    jitter:
        Fractional jitter on the backoff delay, in ``[0, jitter)`` — derived
        deterministically from the (cell key, attempt) pair, never from a
        live RNG, so a replayed sweep backs off identically (seed-pinned).
    on_error:
        What to do when a cell exhausts its attempts with a *plain
        exception* (kind ``"error"``): ``"raise"`` (default — abort the
        sweep, today's behavior) or ``"record"`` (write a CellError record
        and continue).  Crashes and timeouts always record-and-continue on
        exhaustion: they are infrastructure failures, and partial results
        beat an empty directory.
    """

    max_attempts: int = 1
    cell_timeout: float | None = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    on_error: str = "raise"

    def __post_init__(self):
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(f"RetryPolicy.max_attempts must be an int >= 1, "
                             f"got {self.max_attempts!r}")
        if self.cell_timeout is not None and not float(self.cell_timeout) > 0:
            raise ValueError(f"RetryPolicy.cell_timeout must be > 0 seconds or None, "
                             f"got {self.cell_timeout!r}")
        if float(self.backoff_base) < 0:
            raise ValueError(f"RetryPolicy.backoff_base must be >= 0, "
                             f"got {self.backoff_base!r}")
        if float(self.backoff_factor) < 1:
            raise ValueError(f"RetryPolicy.backoff_factor must be >= 1, "
                             f"got {self.backoff_factor!r}")
        if not 0 <= float(self.jitter) <= 1:
            raise ValueError(f"RetryPolicy.jitter must be in [0, 1], got {self.jitter!r}")
        if self.on_error not in ("raise", "record"):
            raise ValueError(f"RetryPolicy.on_error must be 'raise' or 'record', "
                             f"got {self.on_error!r}")

    # -- semantics -------------------------------------------------------- #

    @property
    def is_default(self) -> bool:
        """Whether this policy is exactly the implicit default (and therefore
        omitted from serialized specs — keeping all existing spec hashes)."""
        return self == RetryPolicy()

    def attempts_for(self, kind: str) -> int:
        """Allowed attempts for an error kind.  Crashes get a floor of two:
        re-dispatching a cell whose worker died is crash *containment*, not a
        user-configured retry, so it happens even under the default policy."""
        if kind == "crash":
            return max(self.max_attempts, 2)
        return self.max_attempts

    def next_action(self, kind: str, attempts: int, *,
                    backend: str | None = None, downgraded: bool = False) -> str:
        """The retry state machine: what to do after failure ``attempts`` of a
        cell.  Returns ``"retry"``, ``"downgrade"``, ``"record"`` or
        ``"raise"`` (see the module docstring for the ladder)."""
        if kind in FATAL_KINDS:
            return "raise"
        if kind not in ERROR_KINDS:
            raise EngineError(f"unknown error kind {kind!r}; known: "
                              f"{list(ERROR_KINDS + FATAL_KINDS)}")
        if not downgraded and attempts < self.attempts_for(kind):
            return "retry"
        if backend == "jit" and not downgraded:
            # Graceful degradation: a failing compiled tier gets one bonus
            # attempt on the array backend (bit-identical results by the
            # parity guarantee, only slower).
            return "downgrade"
        if kind == "error" and self.on_error == "raise":
            return "raise"
        return "record"

    def delay(self, cell_key: str, attempt: int) -> float:
        """Backoff before retrying ``attempt + 1`` of ``cell_key``.

        Exponential in the attempt number, with deterministic jitter: the
        jitter fraction is read from a hash of the (cell key, attempt) pair,
        so two runs of the same sweep sleep identically — no live RNG state
        leaks into execution timing decisions.
        """
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(f"{cell_key}\x00{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * fraction)

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": RETRY_SCHEMA_VERSION,
            "max_attempts": self.max_attempts,
            "cell_timeout": self.cell_timeout,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "on_error": self.on_error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        if not isinstance(data, Mapping):
            raise ValueError(f"retry policy must be a JSON object, got {data!r}")
        schema = data.get("schema", RETRY_SCHEMA_VERSION)
        if not isinstance(schema, int) or schema < 1 or schema > RETRY_SCHEMA_VERSION:
            raise ValueError(f"cannot read retry policy with schema {schema!r}; "
                             f"this package reads schema <= {RETRY_SCHEMA_VERSION}")
        known = {"schema", "max_attempts", "cell_timeout", "backoff_base",
                 "backoff_factor", "jitter", "on_error"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown retry policy field(s) {sorted(unknown)}; "
                             f"allowed: {sorted(known - {'schema'})}")
        timeout = data.get("cell_timeout")
        return cls(
            max_attempts=int(data.get("max_attempts", 1)),
            cell_timeout=None if timeout is None else float(timeout),
            backoff_base=float(data.get("backoff_base", 0.0)),
            backoff_factor=float(data.get("backoff_factor", 2.0)),
            jitter=float(data.get("jitter", 0.0)),
            on_error=str(data.get("on_error", "raise")),
        )


# --------------------------------------------------------------------------- #
# Error classification and structured error records
# --------------------------------------------------------------------------- #


def classify_error(exc: BaseException) -> str:
    """The error kind of an exception — see :data:`ERROR_KINDS` / :data:`FATAL_KINDS`."""
    from repro.engine.batch import ParityError

    if isinstance(exc, ParityError):
        return "parity"
    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
        return "interrupt"
    if isinstance(exc, CellTimeoutError):
        return "timeout"
    if isinstance(exc, WorkerCrashError):
        return "crash"
    return "error"


def error_digest(exc: BaseException) -> str:
    """Short stable digest of an exception's traceback (hex SHA-256 prefix).

    Two failures with the same traceback shape share a digest, so grouping a
    failure manifest by digest clusters identical bugs without storing whole
    tracebacks in every record.
    """
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()[:16]


def describe_error(
    exc: BaseException,
    *,
    kind: str | None = None,
    attempts: int | None = None,
    tier: str | None = None,
) -> dict[str, Any]:
    """The structured error object recorded everywhere a failure is durable:
    CellError records, ``job.json``, SSE ``failed`` events."""
    out: dict[str, Any] = {
        "kind": kind or classify_error(exc),
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback_digest": error_digest(exc),
    }
    if attempts is not None:
        out["attempts"] = int(attempts)
    if tier is not None:
        out["tier"] = tier
    return out


def cell_error_record(
    spec,
    params: Mapping[str, Any],
    backend: str,
    error: Mapping[str, Any],
    seconds: float = 0.0,
) -> dict[str, Any]:
    """The *CellError record*: what a sweep records for a cell that exhausted
    its attempts, in place of a measurement record.

    It mirrors the identity prefix of a normal record (family / n / Delta /
    seed / params / backend / seconds) — ``n`` and ``Delta`` are the *target*
    values from the grid spec, since a failing cell may not even have built
    its graph — plus the structured ``"error"`` object.  The ``"error"`` key
    is what marks the record as a failure: resume re-runs such cells, and
    :attr:`repro.engine.batch.BatchResult.failures` collects them.
    """
    record = {
        "family": spec.family,
        "n": spec.n,
        "Delta": spec.delta,
        "seed": spec.seed,
        **dict(params),
        "backend": backend,
        "seconds": float(seconds),
        "error": dict(error),
    }
    if getattr(spec, "path", None) is not None:
        record["path"] = str(spec.path)
    return record


# --------------------------------------------------------------------------- #
# Serial deadline enforcement
# --------------------------------------------------------------------------- #


def call_with_deadline(fn: Callable[[], Any], timeout: float, label: str) -> Any:
    """Run ``fn()`` with a wall-clock deadline; raise :class:`CellTimeoutError`
    on breach.

    The serial path's timeout: the call runs on a daemon thread and the
    caller waits at most ``timeout`` seconds.  On breach the thread is
    *abandoned* (a single process cannot preempt its own compute — only the
    parallel path can kill a hung worker); it keeps no references the sweep
    reads, so an eventually-completing zombie cell cannot corrupt results.
    """
    box: list[tuple[str, Any]] = []

    def target() -> None:
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 — re-raised on the caller's thread
            box.append(("err", exc))

    thread = threading.Thread(target=target, daemon=True, name="repro-cell-deadline")
    start = time.perf_counter()
    thread.start()
    thread.join(timeout)
    if thread.is_alive() or not box:
        raise CellTimeoutError(
            f"cell {label} exceeded its deadline "
            f"(cell_timeout={timeout}s, ran {time.perf_counter() - start:.3f}s)"
        )
    status, value = box[0]
    if status == "err":
        raise value
    return value
