"""The compiled multi-threaded backend.

Routes the three :class:`repro.engine.base.Engine` primitives through the
fused kernels of :mod:`repro.core.kernels_jit` — numba ``@njit`` when numba
is installed, an OpenMP C extension compiled on first use otherwise (see
:mod:`repro.core.kernels_cc`).  Outputs are bit-identical to the array
backend (property-tested and golden-replayed); no per-message simulator
metrics are produced.

When neither compiled tier is available the engine degrades to the array
backend, emitting a single :class:`RuntimeWarning` per process — results are
still correct and identical, only slower.  ``REPRO_NUM_THREADS`` caps the
kernel thread count; ``REPRO_JIT_DISABLE`` (comma-separated tier names) pins
or disables tiers for testing.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.congest.graph import Graph
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.engine.array import ArrayEngine
from repro.engine.base import Engine
from repro.testing import faults

__all__ = ["JitEngine"]

#: Sentinel: provider not yet resolved (``None`` is a valid resolution).
_UNSET = object()

# One warning per process, not per engine instance: parallel sweeps construct
# engines in every worker, but the operator only needs to hear once that the
# jit backend is running on the array path.
_FALLBACK_WARNED = False


def _warn_fallback_once() -> None:
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        "backend='jit': no compiled kernel tier is available (numba is not "
        "installed and no C compiler produced a working extension); falling "
        "back to the array backend. Results are identical, only slower. "
        "Install numba (pip install 'repro[jit]') for the compiled path.",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_fallback_warning() -> None:
    """Test hook: allow the one-time fallback warning to fire again."""
    global _FALLBACK_WARNED
    _FALLBACK_WARNED = False


class JitEngine(Engine):
    """Compiled-kernel backend (numba or C tier; array fallback)."""

    name = "jit"

    def __init__(self):
        self._provider = _UNSET
        self._fallback = ArrayEngine()
        self._warm = False
        self._warming = False

    def _fire_fault(self, primitive: str) -> None:
        """The ``"jit"`` fault-injection site: poison this engine's kernels.

        Fires at the entry of every primitive — *before* provider resolution,
        so an injected crash/hang behaves the same on every tier (numba, C,
        or the array fallback).  Suppressed during :meth:`warmup`: the retry
        ladder guards cells, not engine construction.
        """
        if not self._warming:
            faults.fire("jit", primitive=primitive, tier=self.name)

    # ------------------------------------------------------------------ #
    # Provider resolution
    # ------------------------------------------------------------------ #

    def _resolve(self):
        """Resolve the kernel provider once per engine, warning on fallback."""
        if self._provider is _UNSET:
            from repro.core.kernels_jit import get_provider

            self._provider = get_provider()
            if self._provider is None:
                _warn_fallback_once()
        return self._provider

    @property
    def available(self) -> bool:
        """Whether a compiled tier backs this engine (vs the array fallback)."""
        return self._resolve() is not None

    @property
    def provider_kind(self) -> str | None:
        """``"numba"`` / ``"cc"``, or ``None`` on the fallback path."""
        provider = self._resolve()
        return provider.kind if provider is not None else None

    @property
    def num_threads(self) -> int:
        provider = self._resolve()
        return provider.threads if provider is not None else 1

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #

    def run_mother(
        self,
        graph: Graph,
        input_colors: np.ndarray,
        m: int,
        d: int = 0,
        k: int = 1,
        params: MotherParameters | None = None,
        validate_input: bool = True,
        with_orientation: bool = False,
    ) -> ColoringResult:
        self._fire_fault("run_mother")
        provider = self._resolve()
        if provider is None:
            return self._fallback.run_mother(
                graph, input_colors, m, d=d, k=k, params=params,
                validate_input=validate_input, with_orientation=with_orientation,
            )
        from repro.core.kernels_jit import run_mother_jit

        return run_mother_jit(
            graph, input_colors, m, d=d, k=k, params=params,
            validate_input=validate_input, with_orientation=with_orientation,
            kernels=provider,
        )

    def remove_color_class(
        self,
        graph: Graph,
        colors: np.ndarray,
        target_colors: int | None = None,
    ) -> ColoringResult:
        self._fire_fault("remove_color_class")
        provider = self._resolve()
        if provider is None:
            return self._fallback.remove_color_class(
                graph, colors, target_colors=target_colors
            )
        from repro.core.reduce import remove_color_class_reduction

        return remove_color_class_reduction(
            graph, colors, target_colors=target_colors, backend="jit",
            kernels=provider,
        )

    def kuhn_wattenhofer(
        self,
        graph: Graph,
        colors: np.ndarray,
        m: int,
        target_colors: int | None = None,
    ) -> ColoringResult:
        self._fire_fault("kuhn_wattenhofer")
        provider = self._resolve()
        if provider is None:
            return self._fallback.kuhn_wattenhofer(
                graph, colors, m, target_colors=target_colors
            )
        from repro.core.reduce import kuhn_wattenhofer_reduction

        return kuhn_wattenhofer_reduction(
            graph, colors, m, target_colors=target_colors, backend="jit",
            kernels=provider,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #

    def warmup(self) -> None:
        """Compile/load the kernels and run all three primitives on a tiny
        graph, so numba's first-call compilation (or the C tier's first
        ``dlopen``) never lands inside a timed sweep cell.  Idempotent."""
        if self._warm:
            return
        self._warm = True
        provider = self._resolve()
        if provider is None:
            return
        ring = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        colors = np.array([0, 1, 2, 3], dtype=np.int64)
        self._warming = True
        try:
            self.run_mother(ring, colors, m=4, d=0, k=1, validate_input=False)
            self.remove_color_class(ring, colors, target_colors=3)
            self.kuhn_wattenhofer(ring, colors, m=4)
        finally:
            self._warming = False

    def active_tier(self) -> str:
        """``"jit:numba"`` / ``"jit:cc"``, or ``"jit:fallback-array"``.

        Resolving the provider is what answers the question, so the first
        call may trigger the one-time tier resolution (and the fallback
        warning); every later call is a cheap attribute read.
        """
        kind = self.provider_kind
        return f"jit:{kind}" if kind is not None else "jit:fallback-array"

    def describe(self) -> dict:
        info = super().describe()
        provider = self._resolve()
        info["available"] = provider is not None
        if provider is None:
            info["fallback"] = "array"
            info["kernel"] = None
        else:
            info["kernel"] = provider.kind
            info["threads"] = provider.threads
            info["versions"][provider.kind] = provider.version
            if provider.detail:
                info["detail"] = dict(provider.detail)
        return info
