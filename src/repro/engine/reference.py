"""The model-faithful reference backend.

Wraps the per-node message-passing implementation of Algorithm 1
(:func:`repro.core.algorithm1.run_mother_algorithm`, driven by
:class:`repro.congest.network.SynchronousNetwork`) and the Python
color-class removal.  Results keep the simulator's round, message and
bandwidth metrics in their metadata, so CONGEST claims stay checkable.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.engine.base import Engine

__all__ = ["ReferenceEngine"]


class ReferenceEngine(Engine):
    """Per-node scheduler backend (the model-level artifact).

    Parameters
    ----------
    model:
        ``"CONGEST"`` (default, with per-message bit accounting) or
        ``"LOCAL"``.
    bandwidth_factor / strict_bandwidth:
        Passed through to :class:`repro.congest.network.SynchronousNetwork`.
    """

    name = "reference"

    def __init__(
        self,
        model: str = "CONGEST",
        bandwidth_factor: float = 32.0,
        strict_bandwidth: bool = False,
    ):
        if model not in ("CONGEST", "LOCAL"):
            raise ValueError(f"model must be 'CONGEST' or 'LOCAL', got {model!r}")
        self.model = model
        self.bandwidth_factor = float(bandwidth_factor)
        self.strict_bandwidth = bool(strict_bandwidth)

    @property
    def collects_message_metrics(self) -> bool:
        return True

    def run_mother(
        self,
        graph: Graph,
        input_colors: np.ndarray,
        m: int,
        d: int = 0,
        k: int = 1,
        params: MotherParameters | None = None,
        validate_input: bool = True,
        with_orientation: bool = False,
    ) -> ColoringResult:
        from repro.core.algorithm1 import run_mother_algorithm

        return run_mother_algorithm(
            graph,
            input_colors,
            m=m,
            d=d,
            k=k,
            params=params,
            validate_input=validate_input,
            model=self.model,
            with_orientation=with_orientation,
            bandwidth_factor=self.bandwidth_factor,
            strict_bandwidth=self.strict_bandwidth,
        )

    def remove_color_class(
        self,
        graph: Graph,
        colors: np.ndarray,
        target_colors: int | None = None,
    ) -> ColoringResult:
        from repro.core.reduce import remove_color_class_reduction

        return remove_color_class_reduction(
            graph, colors, target_colors=target_colors, backend="reference"
        )

    # kuhn_wattenhofer: the Engine base-class default already runs the
    # reference path; no override needed.
