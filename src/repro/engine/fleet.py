"""The fleet coordinator: run every shard of a sweep as a subprocess.

``repro batch --fleet N`` (and :func:`run_fleet` under it) turns one sweep
into ``N`` shard subprocesses — each a plain ``repro batch --shard i/N``
writing its own shard file — launched concurrently, with their output
streamed line-by-line under a ``[shard i/N]`` prefix.  A shard that exits
non-zero is retried through the same :class:`~repro.engine.retry.RetryPolicy`
state machine that governs failing cells (a dead shard is a ``"crash"``:
at least one relaunch even under the default fail-fast policy), and every
relaunch resumes the shard's sink, so completed cells are never recomputed.
The caller merges the shard files afterwards (:mod:`repro.engine.merge`).

The coordinator is deliberately transport-agnostic: it drives any
``spawn(shard_index, attempt) -> subprocess.Popen`` factory, so tests can
substitute scripts for real sweeps and a future remote executor can replace
``subprocess`` without touching the retry/streaming logic.
"""

from __future__ import annotations

import subprocess
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.retry import RetryPolicy

__all__ = ["ShardOutcome", "FleetError", "run_fleet"]


class FleetError(RuntimeError):
    """A shard exhausted its retry budget (the fleet cannot be merged)."""


@dataclass
class ShardOutcome:
    """How one shard ended: its index, attempts used, and final exit code."""

    index: int
    attempts: int
    returncode: int

    @property
    def ok(self) -> bool:
        return self.returncode == 0


def _pump(prefix: str, stream, echo: Callable[[str], None], lock: threading.Lock) -> None:
    for line in stream:
        with lock:
            echo(f"{prefix} {line.rstrip()}")


def run_fleet(
    spawn: Callable[[int, int], subprocess.Popen],
    count: int,
    retry: RetryPolicy | None = None,
    echo: Callable[[str], None] = print,
) -> list[ShardOutcome]:
    """Run shards ``0..count-1`` concurrently; retry failures; return outcomes.

    ``spawn(index, attempt)`` must start shard ``index`` (1-based
    ``attempt``) with ``stdout`` piped (text mode); its lines are streamed
    through ``echo`` prefixed with ``[shard index/count]``.  A non-zero exit
    is classified as a ``"crash"`` for ``retry`` (default: the default
    policy, whose crash floor guarantees one relaunch) and relaunched after
    the policy's deterministic backoff; the relaunch is expected to resume
    the shard's sink.  The returned outcomes are ordered by shard index;
    callers should check :attr:`ShardOutcome.ok` before merging.
    """
    if int(count) < 1:
        raise FleetError(f"fleet size must be >= 1, got {count!r}")
    policy = retry or RetryPolicy()
    outcomes: list[ShardOutcome | None] = [None] * count
    echo_lock = threading.Lock()

    def _drive(index: int) -> None:
        attempt = 1
        prefix = f"[shard {index}/{count}]"
        while True:
            proc = spawn(index, attempt)
            if proc.stdout is not None:
                _pump(prefix, proc.stdout, echo, echo_lock)
            code = proc.wait()
            if code == 0:
                outcomes[index] = ShardOutcome(index, attempt, 0)
                return
            # A dead shard subprocess is a crash for the retry ladder (its
            # *cells'* failures were already handled inside the shard by its
            # own policy); "downgrade" cannot apply to a whole process, so it
            # also just relaunches.
            action = policy.next_action("crash", attempt, backend="array",
                                        downgraded=False)
            if action in ("retry", "downgrade"):
                with echo_lock:
                    echo(f"{prefix} exited with code {code}; relaunching "
                         f"(attempt {attempt + 1}, resuming its sink)")
                delay = policy.delay(f"shard:{index}", attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            outcomes[index] = ShardOutcome(index, attempt, code)
            return

    threads = [threading.Thread(target=_drive, args=(index,),
                                name=f"repro-fleet-{index}", daemon=True)
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [outcome for outcome in outcomes if outcome is not None]
