"""The vectorized NumPy backend.

Wraps the whole-graph CSR implementations — Algorithm 1 from
:mod:`repro.core.vectorized` and the array color-class removal from
:mod:`repro.core.reduce` — behind the :class:`repro.engine.base.Engine`
contract.  Outputs are bit-identical to the reference backend
(property-tested); the trade-off is that no per-message simulator metrics
are produced.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.core.params import MotherParameters
from repro.core.results import ColoringResult
from repro.engine.base import Engine

__all__ = ["ArrayEngine"]


class ArrayEngine(Engine):
    """CSR-adjacency NumPy backend (the performance twin)."""

    name = "array"

    def run_mother(
        self,
        graph: Graph,
        input_colors: np.ndarray,
        m: int,
        d: int = 0,
        k: int = 1,
        params: MotherParameters | None = None,
        validate_input: bool = True,
        with_orientation: bool = False,
    ) -> ColoringResult:
        from repro.core.vectorized import run_mother_algorithm_vectorized

        return run_mother_algorithm_vectorized(
            graph,
            input_colors,
            m=m,
            d=d,
            k=k,
            params=params,
            validate_input=validate_input,
            with_orientation=with_orientation,
        )

    def remove_color_class(
        self,
        graph: Graph,
        colors: np.ndarray,
        target_colors: int | None = None,
    ) -> ColoringResult:
        from repro.core.reduce import remove_color_class_reduction

        return remove_color_class_reduction(
            graph, colors, target_colors=target_colors, backend="array"
        )

    def kuhn_wattenhofer(
        self,
        graph: Graph,
        colors: np.ndarray,
        m: int,
        target_colors: int | None = None,
    ) -> ColoringResult:
        from repro.core.reduce import kuhn_wattenhofer_reduction

        return kuhn_wattenhofer_reduction(
            graph, colors, m, target_colors=target_colors, backend="array"
        )
