"""repro.engine — the pluggable execution-engine layer.

One backend API, two interchangeable implementations:

* :class:`ReferenceEngine` (``backend="reference"``) — the model-faithful
  per-node LOCAL/CONGEST scheduler with round/message/bandwidth metrics;
* :class:`ArrayEngine` (``backend="array"``) — the whole-graph NumPy twin
  over the CSR adjacency, bit-identical outputs, orders of magnitude faster.

Every algorithm in :mod:`repro.core` accepts ``backend=`` and routes its
primitive steps (mother-algorithm invocations and color-class removal)
through the selected engine; :class:`BatchRunner` sweeps whole
(graph x seed x params) grids through a backend with shared precomputed
CSR structures and optional built-in reference-parity checking.

See ARCHITECTURE.md for the backend contract and parity guarantees.
"""

from repro.engine.array import ArrayEngine
from repro.engine.base import Engine, EngineError
from repro.engine.batch import BatchResult, BatchRunner, GraphSpec, ParityError
from repro.engine.reference import ReferenceEngine
from repro.engine.sink import (
    CsvSink,
    JsonlSink,
    ResultSink,
    RunManifest,
    SinkError,
    open_sink,
)
from repro.engine.registry import (
    available_backends,
    get_engine,
    register_engine,
    resolve_backend,
)

__all__ = [
    "Engine",
    "EngineError",
    "ReferenceEngine",
    "ArrayEngine",
    "get_engine",
    "register_engine",
    "available_backends",
    "resolve_backend",
    "BatchRunner",
    "BatchResult",
    "GraphSpec",
    "ParityError",
    "ResultSink",
    "JsonlSink",
    "CsvSink",
    "RunManifest",
    "SinkError",
    "open_sink",
]
