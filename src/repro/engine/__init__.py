"""repro.engine — the pluggable execution-engine layer.

One backend API, three interchangeable implementations:

* :class:`ReferenceEngine` (``backend="reference"``) — the model-faithful
  per-node LOCAL/CONGEST scheduler with round/message/bandwidth metrics;
* :class:`ArrayEngine` (``backend="array"``) — the whole-graph NumPy twin
  over the CSR adjacency, bit-identical outputs, orders of magnitude faster;
* :class:`JitEngine` (``backend="jit"``) — compiled multi-threaded kernels
  (numba, or an OpenMP C extension when numba is absent), bit-identical to
  the array twin; degrades to the array backend with one warning when no
  compiled tier is available.

Every algorithm in :mod:`repro.core` accepts ``backend=`` and routes its
primitive steps (mother-algorithm invocations and color-class removal)
through the selected engine; :class:`BatchRunner` sweeps whole
(graph x seed x params) grids through a backend with shared precomputed
CSR structures and optional built-in reference-parity checking.

See ARCHITECTURE.md for the backend contract and parity guarantees.
"""

from repro.engine.array import ArrayEngine
from repro.engine.base import Engine, EngineError, UnknownBackendError
from repro.engine.batch import BatchResult, BatchRunner, GraphSpec, ParityError
from repro.engine.jit import JitEngine
from repro.engine.reference import ReferenceEngine
from repro.engine.sink import (
    CsvSink,
    JsonlSink,
    ResultSink,
    RunManifest,
    SinkError,
    open_sink,
)
from repro.engine.registry import (
    available_backends,
    describe_backends,
    ensure_known_backend,
    get_engine,
    register_engine,
    resolve_backend,
)
from repro.engine.retry import (
    CellExecutionError,
    CellTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    cell_error_record,
    classify_error,
    describe_error,
)

__all__ = [
    "Engine",
    "EngineError",
    "UnknownBackendError",
    "ReferenceEngine",
    "ArrayEngine",
    "JitEngine",
    "get_engine",
    "register_engine",
    "available_backends",
    "describe_backends",
    "ensure_known_backend",
    "resolve_backend",
    "BatchRunner",
    "BatchResult",
    "GraphSpec",
    "ParityError",
    "ResultSink",
    "JsonlSink",
    "CsvSink",
    "RunManifest",
    "SinkError",
    "open_sink",
    "RetryPolicy",
    "CellTimeoutError",
    "WorkerCrashError",
    "CellExecutionError",
    "classify_error",
    "describe_error",
    "cell_error_record",
]
