"""Command-line interface — generated from the algorithm registry.

``python -m repro <command>`` exposes the main entry points without writing
any Python.  The subcommand surface is *generated* from the algorithm
registry (:mod:`repro.api.registry`): a newly registered algorithm appears in
``repro color``, ``repro batch --task`` and ``repro list-algorithms`` with
zero CLI edits, and every ``--param`` is validated against the algorithm's
typed schema.

* ``list-algorithms`` — print the registry as a table (name, params with
  defaults, output kind, guarantee) — the living docs of the solver surface.
* ``list-backends`` — print the engine backends with availability, kernel
  tier, versions, and thread counts (``--json`` for machines).
* ``color <algorithm>`` — solve one problem with any registered algorithm;
  each algorithm subcommand carries typed ``--<param>`` flags generated from
  its schema (``repro color kdelta --k 4``, ``repro color ruling_set --r 3``).
* ``run`` — execute a saved declarative spec (``repro run --spec run.json``);
  the emitted sink manifest embeds the exact spec hash.
* ``experiment`` — run one of the experiments E1..E10 and print its table.
* ``batch`` — sweep a registered algorithm over a (family x n x Delta x seed)
  grid through the :class:`repro.engine.batch.BatchRunner`.

Every command accepts ``--backend reference|array`` (default ``array``, the
vectorized engine; ``reference`` is the per-node CONGEST simulator —
identical results, simulator metrics, much slower) and the sweep commands
accept ``--workers N``, ``--parity-check``, ``--output results.jsonl`` (or
``.csv``) and ``--resume`` exactly as before.

Every command prints a short report and exits non-zero if the produced
structure fails verification, so the CLI can be used in scripted sanity
checks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import zipfile
from typing import Any

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.api.registry import (
    AlgorithmError,
    AlgorithmSpec,
    algorithm_specs,
    get_algorithm,
)
from repro.api.solve import run_spec, solve
from repro.api.spec import JobSpec, Problem, Run, SpecError
from repro.congest import generators
from repro.congest.graph import GraphError
from repro.corpus.vendor import CorpusError
from repro.engine.base import EngineError
from repro.engine.batch import BatchRunner, GraphSpec
from repro.engine.registry import available_backends
from repro.engine.sink import SinkError, open_sink

__all__ = ["main", "build_parser"]


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="random_regular", choices=sorted(generators.FAMILIES),
                        help="graph family (default: random_regular)")
    parser.add_argument("--nodes", "-n", type=int, default=200, help="number of vertices")
    parser.add_argument("--delta", type=int, default=8, help="target maximum degree")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_backend_argument(parser: argparse.ArgumentParser, default: str | None = "array") -> None:
    parser.add_argument("--backend", default=default, choices=available_backends(),
                        help="execution engine (default: array — the vectorized twin; "
                             "'reference' is the per-node CONGEST simulator; 'jit' the "
                             "compiled multi-threaded kernels — see `repro list-backends`)")


def _add_retry_arguments(parser: argparse.ArgumentParser, with_on_error: bool = True) -> None:
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry each failing cell up to N times (total attempts = N+1; "
                             "default: no retries — worker crashes still re-dispatch once)")
    parser.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                        help="per-cell deadline; parallel workers breaching it are killed "
                             "and the cell is retried/recorded per the retry policy")
    if with_on_error:
        parser.add_argument("--on-error", choices=("raise", "record"), default=None,
                            help="when a cell exhausts its attempts with a plain exception: "
                                 "'raise' aborts the sweep (default), 'record' writes a "
                                 "structured CellError record and continues")


def _parse_shard(text: str | None) -> tuple[int, int] | None:
    """Parse an ``I/K`` shard selector (``repro batch --shard 0/4``)."""
    if text is None:
        return None
    try:
        index_text, _, of_text = text.partition("/")
        index, of = int(index_text), int(of_text)
    except ValueError:
        raise SystemExit(f"--shard expects I/K (e.g. 0/4), got {text!r}") from None
    if of < 1 or not 0 <= index < of:
        raise SystemExit(f"--shard must satisfy 0 <= I < K, got {text!r}")
    return (index, of)


def _retry_from_args(args):
    """The RetryPolicy the CLI flags describe, or None (keep spec/default)."""
    retries = getattr(args, "retries", None)
    cell_timeout = getattr(args, "cell_timeout", None)
    on_error = getattr(args, "on_error", None)
    if retries is None and cell_timeout is None and on_error is None:
        return None
    from repro.engine.retry import RetryPolicy

    try:
        return RetryPolicy(
            max_attempts=1 + (retries or 0),
            cell_timeout=cell_timeout,
            on_error=on_error or "raise",
        )
    except ValueError as exc:
        raise SystemExit(f"bad retry options: {exc}") from None


def _report_faults(result) -> int:
    """Print the sweep's fault-tolerance summary; non-zero when cells failed."""
    degraded = sum(1 for e in result.events if e.get("event") == "degrade")
    retried = sum(1 for e in result.events if e.get("event") == "retry")
    if retried:
        print(f"retried {retried} failing attempt(s)")
    if degraded:
        print(f"downgraded {degraded} cell(s) from the jit tier to backend 'array'")
    failures = result.failures
    if failures:
        print(f"FAILED CELLS: {len(failures)} cell(s) exhausted their attempts "
              "(structured CellError records were written in their grid slots):",
              file=sys.stderr)
        for record in failures:
            err = record.get("error", {})
            print(f"  - family={record.get('family')} n={record.get('n')} "
                  f"seed={record.get('seed')}: [{err.get('kind')}] "
                  f"{err.get('type')}: {err.get('message')} "
                  f"(attempts={err.get('attempts')})", file=sys.stderr)
        return 1
    return 0


def _add_param_arguments(parser: argparse.ArgumentParser, spec: AlgorithmSpec) -> None:
    """Generate one typed ``--<name>`` flag per schema parameter."""
    for param in spec.params:
        flag = f"--{param.name}"
        help_text = param.help or param.name
        if not param.required:
            help_text += f" (default: {param.default!r})"
        if param.type is bool:
            parser.add_argument(flag, action=argparse.BooleanOptionalAction,
                                required=param.required,
                                default=None if param.required else param.default,
                                help=help_text)
        else:
            parser.add_argument(flag, type=param.type,
                                default=None if param.required else param.default,
                                required=param.required, choices=param.choices,
                                help=help_text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distributed Graph Coloring Made Easy' (Maus, SPAA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list-algorithms",
                             help="print the algorithm registry (names, params, guarantees)")
    listing.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable JSON instead of the table")

    backends = sub.add_parser(
        "list-backends",
        help="print the engine backends (availability, kernel tier, versions, threads)")
    backends.add_argument("--json", action="store_true", dest="as_json",
                          help="machine-readable JSON instead of the table")

    color = sub.add_parser(
        "color",
        help="solve one problem with any registered algorithm",
        description="Pick a registered algorithm; its parameter flags are generated "
                    "from the registry schema (see `repro list-algorithms`).",
    )
    # dest is "algorithm_name" (not "algorithm") so a schema parameter named
    # "algorithm" (e.g. the baseline contender picker) cannot clobber it.
    algorithms = color.add_subparsers(dest="algorithm_name", required=True, metavar="ALGORITHM")
    for spec in algorithm_specs():
        algo = algorithms.add_parser(spec.name, help=spec.summary,
                                     description=f"{spec.summary} [{spec.source}]. "
                                                 f"Guarantee: {spec.guarantee}")
        _add_graph_arguments(algo)
        _add_backend_argument(algo)
        algo.add_argument("--parity-check", action="store_true",
                          help="re-run on the reference backend and require identical results")
        _add_param_arguments(algo, spec)

    runner = sub.add_parser("run", help="execute a saved declarative spec (run.json)")
    runner.add_argument("--spec", required=True, metavar="PATH",
                        help="JSON spec file: {problem(s): ..., run: ..., params_grid?: ...}")
    _add_backend_argument(runner, default=None)
    runner.add_argument("--workers", type=int, default=None,
                        help="override the spec's worker count")
    runner.add_argument("--parity-check", action="store_true", default=None,
                        help="re-run every cell on the reference backend and require "
                             "identical results (overrides the spec)")
    runner.add_argument("--output", metavar="PATH", default=None,
                        help="stream each record to PATH (.jsonl/.ndjson/.csv); the run "
                             "manifest embeds the exact spec hash")
    runner.add_argument("--resume", action="store_true",
                        help="skip cells already recorded in --output")
    runner.add_argument("--shard", metavar="I/K", default=None,
                        help="execute only deterministic shard I of K of the spec's cell "
                             "grid (stable hash of cell identity; worker-count-"
                             "independent); merge the K shard files with `repro merge`")
    _add_retry_arguments(runner)

    experiment = sub.add_parser("experiment", help="run one of the experiments E1..E10")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    _add_backend_argument(experiment)
    experiment.add_argument("--parity-check", action="store_true",
                            help="re-run every cell on the reference backend and require identical results")
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker processes the experiment's grid sweeps shard across (default: 1)")

    batch = sub.add_parser("batch", help="sweep an algorithm over a (family x n x Delta x seed) grid")
    batch.add_argument("--task", default="delta_plus_one",
                       choices=[spec.name for spec in algorithm_specs()],
                       help="registered algorithm to run per cell (default: delta_plus_one)")
    batch.add_argument("--family", default="random_regular", nargs="+",
                       choices=sorted(generators.FAMILIES), help="graph families")
    batch.add_argument("--nodes", "-n", type=int, nargs="+", default=[200], help="vertex counts")
    batch.add_argument("--delta", type=int, nargs="+", default=[8], help="target maximum degrees")
    batch.add_argument("--seeds", type=int, default=1, help="number of seeds per cell (0..seeds-1)")
    _add_backend_argument(batch)
    batch.add_argument("--parity-check", action="store_true",
                       help="re-run every cell on the reference backend and require identical results")
    batch.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                       help="task parameter (repeatable), e.g. --param k=4; validated "
                            "against the algorithm's schema")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes to shard the grid across (default: 1 = serial; "
                            "records are identical and deterministically ordered either way)")
    batch.add_argument("--output", metavar="PATH", default=None,
                       help="stream each record to PATH as it completes (.jsonl/.ndjson/.csv); "
                            "a run manifest is recorded alongside the records")
    batch.add_argument("--resume", action="store_true",
                       help="skip cells already recorded in --output (restart an interrupted sweep)")
    batch.add_argument("--shard", metavar="I/K", default=None,
                       help="execute only deterministic shard I of K of the cell grid "
                            "(stable hash of cell identity; worker-count-independent); "
                            "any shard can run anywhere, any time — merge the K shard "
                            "files with `repro merge`")
    batch.add_argument("--fleet", type=int, default=None, metavar="N",
                       help="fleet coordinator: launch N shard subprocesses "
                            "(--shard 0/N .. N-1/N), stream their progress, retry "
                            "failed shards per the retry policy, and auto-merge the "
                            "shard files into --output (required)")
    _add_retry_arguments(batch)

    merge = sub.add_parser(
        "merge",
        help="merge shard result files into one canonical run",
        description="Join the result files of a sharded sweep (`--shard i/k`) "
                    "into one file indistinguishable from a single-box run.  "
                    "Validates that the inputs are the k disjoint, complete "
                    "shards of one sweep (same spec/grid hash, every cell "
                    "exactly once) and fails loudly on overlap, gaps, or "
                    "hash drift.",
    )
    merge.add_argument("shards", nargs="+", metavar="SHARD",
                       help="shard result files (.jsonl/.ndjson/.csv) written by "
                            "--shard i/k runs of one sweep")
    merge.add_argument("--output", required=True, metavar="PATH",
                       help="merged result file; format follows the suffix "
                            "(.jsonl/.ndjson/.csv)")

    serve = sub.add_parser(
        "serve",
        help="run the job server: JobSpec JSON over HTTP, dedupe by spec hash",
        description="Long-running coloring service: POST a JobSpec document to "
                    "/jobs, poll /jobs/<id>, stream per-cell progress from "
                    "/jobs/<id>/events (SSE), check /healthz.  Jobs are "
                    "content-addressed by spec hash (duplicates are cache "
                    "hits) and survive restarts via the resumable sinks in "
                    "--state-dir.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default: 8765; 0 picks a free port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrently executing jobs (default: 2)")
    serve.add_argument("--state-dir", default="repro-jobs", metavar="DIR",
                       help="durable job state directory (default: ./repro-jobs); "
                            "reuse it across restarts to recover incomplete jobs")
    serve.add_argument("--drain-timeout", type=float, default=30.0, metavar="SECONDS",
                       help="on SIGTERM/SIGINT, wait this long for running jobs to "
                            "finish before forcing exit (default: 30; they resume "
                            "on restart either way)")
    serve.add_argument("--execution", choices=("auto", "thread", "process"),
                       default="auto",
                       help="per-job execution plane: 'thread' runs a job's cells on "
                            "its queue thread; 'process' fans them out through the "
                            "crash-containing process pool (hardware-bound instead of "
                            "GIL-bound); 'auto' (default) picks process on multi-core "
                            "machines — /healthz reports the resolved mode")
    serve.add_argument("--job-workers", type=int, default=None, metavar="N",
                       help="per-job worker budget in process mode (default: machine "
                            "cores split across the --workers job slots, min 2)")
    _add_retry_arguments(serve, with_on_error=False)

    corpus = sub.add_parser(
        "corpus",
        help="sweep the algorithm zoo over the vendored real-graph corpus, verified",
        description="Run every default-runnable registered algorithm over the "
                    "graphs of corpus/MANIFEST.json through BatchRunner, "
                    "independently re-verify every output with repro.verify, "
                    "and write a deterministic per-graph summary "
                    "(corpus_summary.md + corpus_summary.json).",
    )
    corpus.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="corpus directory (default: discover corpus/MANIFEST.json "
                             "from the cwd, $REPRO_CORPUS_DIR, or the checkout)")
    corpus.add_argument("--graphs", nargs="+", default=None, metavar="NAME",
                        help="restrict to these manifest graph names (default: all)")
    corpus.add_argument("--algorithms", nargs="+", default=None, metavar="ALGORITHM",
                        help="restrict the zoo to these algorithms (default: every "
                             "registered algorithm runnable with default parameters)")
    _add_backend_argument(corpus)
    corpus.add_argument("--parity-check", action="store_true",
                        help="re-run every cell on the reference backend and require "
                             "identical results")
    corpus.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1; records and summary are "
                             "identical and deterministically ordered either way)")
    corpus.add_argument("--output", metavar="PATH", default=None,
                        help="stream each record to PATH (.jsonl/.ndjson/.csv)")
    corpus.add_argument("--shard", metavar="I/K", default=None,
                        help="execute only deterministic shard I of K of the corpus "
                             "grid; merge the K record files with `repro merge`")
    corpus.add_argument("--summary-dir", metavar="DIR", default=None,
                        help="write corpus_summary.{md,json} here (default: print the "
                             "markdown only)")
    corpus.add_argument("--no-verify-manifest", action="store_true",
                        help="skip the corpus integrity check (file digests vs the "
                             "manifest) before sweeping")
    _add_retry_arguments(corpus)

    graph = sub.add_parser(
        "graph",
        help="inspect graphs (edge-list files, cached artifacts, generator specs)")
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)
    info = graph_sub.add_parser(
        "info",
        help="structural facts of a graph: n, m, Delta, degree histogram, components",
        description="TARGET is an edge-list file (.txt/.csv, optionally .gz — "
                    "ingested through the corpus cache), a corpus graph name, or "
                    "a generator spec FAMILY:N:DELTA[:SEED] "
                    "(e.g. random_regular:200:8).",
    )
    info.add_argument("target", metavar="TARGET",
                      help="edge-list path, corpus graph name, or FAMILY:N:DELTA[:SEED]")
    info.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable JSON instead of the table")
    info.add_argument("--corpus-dir", default=None, metavar="DIR",
                      help="corpus directory for corpus-name targets")

    return parser


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #


def _cmd_list_algorithms(args) -> int:
    specs = algorithm_specs()
    if args.as_json:
        payload = [
            {
                "name": spec.name,
                "summary": spec.summary,
                "source": spec.source,
                "output": spec.output,
                "guarantee": spec.guarantee,
                "requires_input_coloring": spec.requires_input_coloring,
                "params": [
                    {"name": p.name, "type": p.type.__name__, "required": p.required,
                     **({} if p.required else {"default": p.default}),
                     **({"choices": list(p.choices)} if p.choices else {}),
                     "help": p.help}
                    for p in spec.params
                ],
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    from repro.analysis.tables import Table

    table = Table(
        f"registered algorithms ({len(specs)}) — backends: {', '.join(available_backends())}",
        ["algorithm", "params", "output", "source", "guarantee"],
    )
    for spec in specs:
        params = ", ".join(p.describe() for p in spec.params) or "—"
        table.add_row(spec.name, params, spec.output, spec.source, spec.guarantee)
    table.add_note("run one: repro color <algorithm> [--<param> ...]   "
                   "sweep: repro batch --task <algorithm> --param KEY=VALUE")
    table.add_note("new algorithms registered via repro.api.register_algorithm appear "
                   "here and in every command automatically")
    print(table.render())
    return 0


def _cmd_list_backends(args) -> int:
    from repro.engine.registry import describe_backends

    infos = describe_backends()
    if args.as_json:
        print(json.dumps(infos, indent=2))
        return 0
    from repro.analysis.tables import Table

    table = Table(
        f"engine backends ({len(infos)})",
        ["backend", "available", "kernel", "threads", "versions", "notes"],
    )
    for info in infos:
        versions = ", ".join(f"{k} {v}" for k, v in sorted(info["versions"].items()))
        notes = []
        if info.get("fallback"):
            notes.append(f"falls back to {info['fallback']}")
        if info.get("detail", {}).get("openmp"):
            notes.append("openmp")
        table.add_row(
            info["backend"],
            "yes" if info["available"] else "no",
            info.get("kernel") or "—",
            str(info.get("threads", 1)),
            versions,
            "; ".join(notes) or "—",
        )
    table.add_note("select one: --backend <name> on color/run/batch, or "
                   "Run(..., backend=<name>) in a spec")
    table.add_note("jit threads are capped by REPRO_NUM_THREADS; "
                   "REPRO_JIT_DISABLE=numba,cc forces the array fallback")
    print(table.render())
    return 0


def _cmd_color(args) -> int:
    spec = get_algorithm(args.algorithm_name)
    params = {p.name: getattr(args, p.name) for p in spec.params}
    problem = Problem(graph=GraphSpec(args.family, args.nodes, args.delta, args.seed))
    run = Run(algorithm=spec.name, params=params, backend=args.backend,
              parity_check=args.parity_check)
    report = solve(problem, run)
    record = report.record
    print(f"graph: family={args.family} n={record['n']} Delta={record['Delta']} "
          f"seed={record['seed']}")
    print(report.summary())
    print(f"guarantee: {report.guarantee}")
    return 0


def _cmd_run(args) -> int:
    path = pathlib.Path(args.spec)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec file {path} is not valid JSON: {exc}") from None
    job = JobSpec.from_dict(document)
    if args.resume and not args.output:
        raise SystemExit("--resume requires --output (the file to resume from)")
    shard = _parse_shard(args.shard)
    sink = open_sink(args.output, resume=args.resume) if args.output else None
    try:
        result, digest = run_spec(job, sink=sink, backend=args.backend,
                                  workers=args.workers, parity_check=args.parity_check,
                                  retry=_retry_from_args(args), shard=shard)
    finally:
        if sink is not None:
            sink.close()
    columns = result.columns(exclude=("backend",))
    title = (f"spec {path.name}: algorithm={job.run.algorithm} backend={result.backend} "
             f"cells={len(result)}"
             + (f" shard={shard[0]}/{shard[1]}" if shard else ""))
    print(result.to_table(title, columns).render())
    print(f"\nspec hash: {digest}")
    print(f"total wall-clock: {result.total_seconds:.3f}s on backend {result.backend!r}")
    if sink is not None:
        skipped = len(result) - sink.written
        print(f"wrote {sink.written} record(s) to {args.output}"
              + (f" ({skipped} cell(s) resumed from a previous run)" if skipped else ""))
    return _report_faults(result)


def _cmd_experiment(args) -> int:
    table = run_experiment(args.name, backend=args.backend, parity_check=args.parity_check,
                           workers=args.workers)
    print(table.render())
    return 0


def _parse_params(algorithm: str, pairs: list[str]) -> dict:
    """Parse ``--param KEY=VALUE`` pairs, validated against the registry schema."""
    spec = get_algorithm(algorithm)
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        params[key] = spec.param(key).parse(algorithm, value)  # UnknownParameterError on bad key
    return spec.validate_params(params)


def _cmd_batch(args) -> int:
    if args.resume and not args.output:
        raise SystemExit("--resume requires --output (the file to resume from)")
    if args.fleet is not None:
        return _cmd_batch_fleet(args)
    shard = _parse_shard(args.shard)
    if shard is not None and not args.output:
        raise SystemExit("--shard requires --output (the shard's result file)")
    runner = BatchRunner(backend=args.backend, parity_check=args.parity_check,
                         workers=args.workers, retry=_retry_from_args(args))
    families = args.family if isinstance(args.family, list) else [args.family]
    cells = BatchRunner.grid(families, args.nodes, args.delta, seeds=range(args.seeds))
    params = _parse_params(args.task, args.param)
    sink = open_sink(args.output, resume=args.resume) if args.output else None
    try:
        result = runner.run(args.task, cells, params_grid=[params] if params else None,
                            sink=sink, shard=shard)
    finally:
        if sink is not None:
            sink.close()
    columns = result.columns(exclude=("backend",))
    title = (
        f"batch: task={args.task} backend={args.backend} cells={len(result)}"
        + (f" shard={shard[0]}/{shard[1]}" if shard else "")
        + (f" workers={args.workers}" if args.workers > 1 else "")
        + (" parity-checked" if args.parity_check else "")
    )
    print(result.to_table(title, columns).render())
    print(f"\ntotal wall-clock: {result.total_seconds:.3f}s on backend {args.backend!r}"
          + (f" across {args.workers} workers" if args.workers > 1 else "")
          + (" (every cell parity-checked against 'reference')" if args.parity_check else ""))
    if sink is not None:
        skipped = len(result) - sink.written
        print(f"wrote {sink.written} record(s) to {args.output}"
              + (f" ({skipped} cell(s) resumed from a previous run)" if skipped else ""))
    return _report_faults(result)


def _shard_path(output: pathlib.Path, index: int, of: int) -> pathlib.Path:
    """The per-shard result file the fleet coordinator writes/merges."""
    return output.with_name(f"{output.stem}.shard{index}of{of}{output.suffix}")


def _cmd_batch_fleet(args) -> int:
    """``repro batch --fleet N``: N shard subprocesses, retried, auto-merged."""
    if not args.output:
        raise SystemExit("--fleet requires --output (the merged result file)")
    if args.shard is not None:
        raise SystemExit("--fleet and --shard are mutually exclusive "
                         "(the fleet coordinator launches every shard itself)")
    if args.fleet < 1:
        raise SystemExit(f"--fleet must be >= 1, got {args.fleet}")
    import subprocess

    from repro.engine.fleet import run_fleet
    from repro.engine.merge import merge_shards

    of = args.fleet
    output = pathlib.Path(args.output)
    shard_paths = [_shard_path(output, i, of) for i in range(of)]
    families = args.family if isinstance(args.family, list) else [args.family]

    base = [sys.executable, "-m", "repro", "batch",
            "--task", args.task,
            "--family", *families,
            "--nodes", *(str(n) for n in args.nodes),
            "--delta", *(str(d) for d in args.delta),
            "--seeds", str(args.seeds),
            "--backend", args.backend,
            "--workers", str(args.workers)]
    if args.parity_check:
        base.append("--parity-check")
    for pair in args.param:
        base += ["--param", pair]
    if args.retries is not None:
        base += ["--retries", str(args.retries)]
    if args.cell_timeout is not None:
        base += ["--cell-timeout", str(args.cell_timeout)]
    if args.on_error is not None:
        base += ["--on-error", args.on_error]

    # Every launch resumes the shard's sink: a relaunched shard recomputes
    # only the cells its previous attempt did not make durable.
    def spawn(index: int, attempt: int) -> subprocess.Popen:
        argv = base + ["--shard", f"{index}/{of}",
                       "--output", str(shard_paths[index]), "--resume"]
        return subprocess.Popen(argv, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)

    print(f"fleet: launching {of} shard subprocess(es) "
          f"(backend={args.backend!r}, workers={args.workers} each)")
    outcomes = run_fleet(spawn, of, retry=_retry_from_args(args))
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        for outcome in failed:
            print(f"fleet: shard {outcome.index}/{of} FAILED with exit code "
                  f"{outcome.returncode} after {outcome.attempts} attempt(s)",
                  file=sys.stderr)
        print("fleet: not merging — completed shard files are kept; re-run to "
              "resume them", file=sys.stderr)
        return 1
    merged = merge_shards(shard_paths, output)
    attempts = sum(outcome.attempts for outcome in outcomes)
    print(f"fleet: merged {merged.cells} record(s) from {merged.shards} shard(s) "
          f"into {output} ({attempts} shard attempt(s) total)")
    print(f"  grid hash {merged.manifest.grid_hash}; the merged file resumes "
          "like a single-box run")
    return 0


def _cmd_merge(args) -> int:
    from repro.engine.merge import merge_shards

    result = merge_shards(args.shards, args.output)
    manifest = result.manifest
    print(f"merged {result.shards} shard(s) -> {result.output}")
    print(f"  task={manifest.task} backend={manifest.backend} cells={result.cells}")
    print(f"  grid hash {manifest.grid_hash}"
          + (f", spec hash {manifest.spec_hash}" if manifest.spec_hash else ""))
    if result.events:
        print(f"  {result.events} provenance event(s) carried over")
    print("  the merged file resumes like a single-box run (--resume re-runs 0 cells)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.server import JobServer

    server = JobServer(args.state_dir, host=args.host, port=args.port,
                       workers=args.workers, drain_timeout=args.drain_timeout,
                       default_retry=_retry_from_args(args),
                       execution=args.execution, job_workers=args.job_workers)

    async def _serve() -> int:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without loop signal handlers; Ctrl-C still works
        recovered = server.queue.pending()
        print(f"repro serve: listening on {server.url}")
        print(f"  state dir : {server.store.root}")
        print(f"  workers   : {server.workers}")
        execution = server.queue.execution
        if server.queue.job_workers is not None:
            execution += f" (job workers: {server.queue.job_workers})"
        print(f"  execution : {execution}")
        if recovered:
            print(f"  recovered : {recovered} incomplete job(s) re-queued")
        print("  routes    : POST /jobs   GET /jobs[/<id>[/records|/events]]   GET /healthz")
        await server.serve_forever()
        return 0

    try:
        code = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nrepro serve: shutting down (incomplete jobs resume on restart)")
        return 0
    if server.drained_clean:
        print("repro serve: drained cleanly (running jobs finished, state persisted)")
        return code
    # A job outlived --drain-timeout; its executor thread is non-daemon and
    # would block interpreter exit, so force it.  The job stays `running` on
    # disk and resumes from its sink on restart.
    print(f"repro serve: drain timed out after {args.drain_timeout:g}s; forcing "
          "exit (incomplete jobs resume on restart)", file=sys.stderr)
    sys.stdout.flush()
    sys.stderr.flush()
    import os
    os._exit(1)


def _cmd_corpus(args) -> int:
    from repro import corpus as corpus_mod

    entries = corpus_mod.load_manifest(args.corpus_dir,
                                       verify=not args.no_verify_manifest)
    if args.graphs:
        known = {entry.name for entry in entries}
        missing = sorted(set(args.graphs) - known)
        if missing:
            raise SystemExit(f"unknown corpus graph(s) {missing}; "
                             f"manifest has: {sorted(known)}")
        entries = [entry for entry in entries if entry.name in args.graphs]
    if args.algorithms:
        zoo = [{"algorithm": _resolve_algorithm(name).name} for name in args.algorithms]
    else:
        zoo = corpus_mod.default_zoo()

    shard = _parse_shard(args.shard)
    if shard is not None and not args.output:
        raise SystemExit("--shard requires --output (the shard's result file)")
    pairs = corpus_mod.corpus_specs(entries)
    sink = open_sink(args.output) if args.output else None
    try:
        result = corpus_mod.run_corpus_sweep(
            [spec for _, spec in pairs], zoo=zoo, backend=args.backend,
            workers=args.workers, parity_check=args.parity_check,
            retry=_retry_from_args(args), shard=shard, sink=sink)
    finally:
        if sink is not None:
            sink.close()
    summary = corpus_mod.summarize(entries, result, backend=args.backend)
    print(corpus_mod.render_summary(summary))
    if args.summary_dir:
        json_path, md_path = corpus_mod.write_summary(summary, args.summary_dir)
        print(f"\nwrote {json_path} and {md_path}")
    if sink is not None:
        print(f"wrote {sink.written} record(s) to {args.output}")
    unverified = [c for c in summary["cells"]
                  if "error" not in c and c.get("verified") is not True]
    if unverified:  # corpus_task raises on failure, so this is belt+braces
        print(f"VERIFICATION FAILED: {len(unverified)} cell(s) unverified",
              file=sys.stderr)
        return 1
    return _report_faults(result)


def _resolve_algorithm(name: str):
    from repro.api.registry import get_algorithm

    spec = get_algorithm(name)  # UnknownAlgorithmError -> ERROR
    if any(p.required for p in spec.params):
        raise SystemExit(
            f"algorithm {name!r} has required parameters ({spec.signature()}) and "
            f"cannot run in a corpus sweep; use `repro color {name}` instead")
    return spec


def _cmd_graph(args) -> int:
    if args.graph_command == "info":
        return _cmd_graph_info(args)
    raise SystemExit(f"unknown graph command {args.graph_command!r}")


def _cmd_graph_info(args) -> int:
    from repro import corpus as corpus_mod

    target = args.target
    path = pathlib.Path(target)
    origin: dict[str, Any] = {}
    if path.is_file() and path.suffix == ".npz":
        # a cached CSR artifact (see repro.corpus.cache) — load it directly
        import numpy as np

        from repro.congest.graph import Graph

        try:
            with np.load(path) as bundle:
                graph = Graph.from_csr_arrays(bundle["indptr"], bundle["indices"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise GraphError(f"{path.name}: not a CSR .npz artifact: {exc}") from None
        origin = {"target": str(path), "source": "npz artifact",
                  "digest": path.stem}
    elif path.is_file():
        ingested = corpus_mod.ingest(path)
        graph = ingested.graph
        origin = {"target": str(path), "source": "file",
                  "sha256": ingested.digest, "cached": ingested.cached,
                  **{k: v for k, v in ingested.meta.items()
                     if k in ("format", "compressed", "edges_raw", "duplicate_edges",
                              "self_loops_dropped", "relabelled", "header_skipped")}}
    elif ":" in target:
        family, _, rest = target.partition(":")
        try:
            numbers = [int(x) for x in rest.split(":")]
            n, delta = numbers[0], numbers[1]
            seed = numbers[2] if len(numbers) > 2 else 0
        except (ValueError, IndexError):
            raise SystemExit(
                f"bad generator spec {target!r}; expected FAMILY:N:DELTA[:SEED]"
            ) from None
        graph = generators.by_name(family, n, delta, seed=seed)
        origin = {"target": target, "source": "generator", "family": family,
                  "seed": seed}
    else:
        entries = [entry for entry in corpus_mod.load_manifest(args.corpus_dir)
                   if entry.name == target]
        if not entries:
            raise SystemExit(
                f"{target!r} is neither a file, a FAMILY:N:DELTA spec, nor a "
                "corpus graph name")
        ingested = corpus_mod.ingest(entries[0].path)
        graph = ingested.graph
        origin = {"target": target, "source": "corpus",
                  "file": entries[0].path.name, "kind": entries[0].kind,
                  "sha256": ingested.digest}

    info = corpus_mod.graph_info(graph)
    if args.as_json:
        print(json.dumps({**origin, **info}, indent=2))
        return 0
    from repro.analysis.tables import Table

    table = Table(f"graph info — {origin.get('target', '?')} ({origin['source']})",
                  ["property", "value"])
    for key, value in {**origin, **info}.items():
        if key in ("target", "degree_histogram"):
            continue
        table.add_row(key, value)
    histogram = info["degree_histogram"]
    spread = ", ".join(f"{d}:{c}" for d, c in list(histogram.items())[:12])
    if len(histogram) > 12:
        spread += f", ... ({len(histogram)} distinct degrees)"
    table.add_row("degree histogram", spread)
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "list-algorithms": _cmd_list_algorithms,
        "list-backends": _cmd_list_backends,
        "color": _cmd_color,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "batch": _cmd_batch,
        "merge": _cmd_merge,
        "serve": _cmd_serve,
        "corpus": _cmd_corpus,
        "graph": _cmd_graph,
    }
    try:
        return commands[args.command](args)
    except AssertionError as exc:  # verification failure (incl. parity errors)
        print(f"VERIFICATION FAILED: {exc}", file=sys.stderr)
        return 1
    except (SinkError, EngineError, AlgorithmError, SpecError,
            GraphError, CorpusError) as exc:
        # unusable sink / backend setup / spec mismatch / malformed graph file
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
