"""Command-line interface.

``python -m repro <command>`` exposes the main entry points without writing any
Python:

* ``color``       — color a graph from one of the built-in families with the
  (Delta+1) pipeline or the O(k*Delta) trade-off.
* ``defective``   — compute a d-defective or beta-outdegree coloring.
* ``ruling-set``  — compute a (2, r)-ruling set (Theorem 1.5 or the baseline).
* ``experiment``  — run one of the experiments E1..E10 and print its table.
* ``batch``       — sweep a task over a (family x n x Delta x seed) grid
  through the :class:`repro.engine.batch.BatchRunner` and print the tidy
  records table.

Every command accepts ``--backend reference|array`` (default ``array``, the
vectorized engine; ``reference`` is the per-node CONGEST simulator — identical
results, simulator metrics, much slower).  ``batch`` additionally accepts
``--parity-check`` to re-run every cell on the reference backend and require
identical outputs, ``--workers N`` to shard the grid across N worker
processes (identical records, deterministic order), ``--output results.jsonl``
(or ``.csv``) to stream each record to a durable sink as it completes, and
``--resume`` to skip cells already present in the output file — an
interrupted sweep restarts where it left off.  ``experiment`` accepts
``--workers`` as well.

Every command prints a short report (rounds, colors, verification status) and
exits non-zero if the produced structure fails verification, so the CLI can be
used in scripted sanity checks.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.congest import generators
from repro.congest.ids import distinct_input_coloring, random_proper_coloring
from repro.core import corollaries, pipelines, ruling_sets
from repro.engine.base import EngineError
from repro.engine.batch import TASKS, BatchRunner, GraphSpec
from repro.engine.registry import available_backends
from repro.engine.sink import SinkError, open_sink
from repro.verify.coloring import assert_defective_coloring, assert_proper_coloring
from repro.verify.orientation import assert_outdegree_orientation
from repro.verify.ruling import assert_ruling_set

__all__ = ["main", "build_parser"]


def _make_graph(args) -> "generators.Graph":
    return generators.by_name(args.family, args.nodes, args.delta, seed=args.seed)


def _make_input_coloring(graph, seed: int):
    delta = max(1, graph.max_degree)
    m = max(delta + 1, delta ** 4, graph.n)
    if m >= graph.n:
        return distinct_input_coloring(graph, m, seed=seed), m
    colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return colors, m


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="random_regular", choices=sorted(generators.FAMILIES),
                        help="graph family (default: random_regular)")
    parser.add_argument("--nodes", "-n", type=int, default=200, help="number of vertices")
    parser.add_argument("--delta", type=int, default=8, help="target maximum degree")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="array", choices=available_backends(),
                        help="execution engine (default: array — the vectorized twin; "
                             "'reference' is the per-node CONGEST simulator)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distributed Graph Coloring Made Easy' (Maus, SPAA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    color = sub.add_parser("color", help="proper coloring (Delta+1 pipeline or O(k*Delta) trade-off)")
    _add_graph_arguments(color)
    _add_backend_argument(color)
    color.add_argument("--k", type=int, default=None,
                       help="batch size for the O(k*Delta) trade-off; omit for the (Delta+1) pipeline")

    defective = sub.add_parser("defective", help="d-defective or beta-outdegree coloring")
    _add_graph_arguments(defective)
    _add_backend_argument(defective)
    defective.add_argument("--d", type=int, default=2, help="defect / outdegree parameter")
    defective.add_argument("--outdegree", action="store_true",
                           help="compute a beta-outdegree coloring instead of a defective one")

    ruling = sub.add_parser("ruling-set", help="(2, r)-ruling set")
    _add_graph_arguments(ruling)
    _add_backend_argument(ruling)
    ruling.add_argument("--r", type=int, default=2, help="domination radius r >= 2")
    ruling.add_argument("--baseline", action="store_true", help="use the SEW13-style baseline")

    experiment = sub.add_parser("experiment", help="run one of the experiments E1..E10")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    _add_backend_argument(experiment)
    experiment.add_argument("--parity-check", action="store_true",
                            help="re-run every cell on the reference backend and require identical results")
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker processes the experiment's grid sweeps shard across (default: 1)")

    batch = sub.add_parser("batch", help="sweep a task over a (family x n x Delta x seed) grid")
    batch.add_argument("--task", default="delta_plus_one", choices=sorted(TASKS),
                       help="named task to run per cell (default: delta_plus_one)")
    batch.add_argument("--family", default="random_regular", nargs="+",
                       choices=sorted(generators.FAMILIES), help="graph families")
    batch.add_argument("--nodes", "-n", type=int, nargs="+", default=[200], help="vertex counts")
    batch.add_argument("--delta", type=int, nargs="+", default=[8], help="target maximum degrees")
    batch.add_argument("--seeds", type=int, default=1, help="number of seeds per cell (0..seeds-1)")
    _add_backend_argument(batch)
    batch.add_argument("--parity-check", action="store_true",
                       help="re-run every cell on the reference backend and require identical results")
    batch.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                       help="task parameter (repeatable), e.g. --param k=4")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes to shard the grid across (default: 1 = serial; "
                            "records are identical and deterministically ordered either way)")
    batch.add_argument("--output", metavar="PATH", default=None,
                       help="stream each record to PATH as it completes (.jsonl/.ndjson/.csv); "
                            "a run manifest is recorded alongside the records")
    batch.add_argument("--resume", action="store_true",
                       help="skip cells already recorded in --output (restart an interrupted sweep)")

    return parser


def _cmd_color(args) -> int:
    graph = _make_graph(args)
    if args.k is None:
        result = pipelines.delta_plus_one_coloring(graph, seed=args.seed, backend=args.backend)
        assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)
        label = "(Delta+1) pipeline"
    else:
        colors, m = _make_input_coloring(graph, args.seed)
        result = corollaries.kdelta_coloring(graph, colors, m, k=args.k, backend=args.backend)
        assert_proper_coloring(graph, result.colors)
        label = f"O(k*Delta) trade-off with k={args.k}"
    print(f"graph: n={graph.n} edges={graph.num_edges} Delta={graph.max_degree}")
    print(f"{label} [{args.backend}]: {result.num_colors} colors (space {result.color_space_size}) "
          f"in {result.rounds} rounds — verified proper")
    return 0


def _cmd_defective(args) -> int:
    graph = _make_graph(args)
    colors, m = _make_input_coloring(graph, args.seed)
    if args.outdegree:
        result = corollaries.outdegree_coloring(graph, colors, m, beta=args.d, backend=args.backend)
        assert_outdegree_orientation(graph, result.colors, result.orientation, args.d)
        kind = f"beta-outdegree (beta={args.d})"
    else:
        result = corollaries.defective_coloring_one_round(
            graph, colors, m, d=args.d, backend=args.backend
        )
        assert_defective_coloring(graph, result.colors, d=args.d)
        kind = f"{args.d}-defective (one round)"
    print(f"graph: n={graph.n} edges={graph.num_edges} Delta={graph.max_degree}")
    print(f"{kind} [{args.backend}]: {result.num_colors} colors in {result.rounds} rounds — verified")
    return 0


def _cmd_ruling_set(args) -> int:
    graph = _make_graph(args)
    colors, m = _make_input_coloring(graph, args.seed)
    if args.baseline:
        result = ruling_sets.ruling_set_sew13_baseline(graph, colors, m, r=args.r, backend=args.backend)
        label = "SEW13 baseline"
    else:
        result = ruling_sets.ruling_set_theorem15(graph, colors, m, r=args.r, backend=args.backend)
        label = "Theorem 1.5"
    assert_ruling_set(graph, result.vertices, r=max(args.r, result.r))
    print(f"graph: n={graph.n} edges={graph.num_edges} Delta={graph.max_degree}")
    print(f"{label} [{args.backend}] (2,{args.r})-ruling set: {result.size} vertices in "
          f"{result.rounds} rounds ({result.metadata['ruling_rounds']} in the ruling phase) — verified")
    return 0


def _cmd_experiment(args) -> int:
    table = run_experiment(args.name, backend=args.backend, parity_check=args.parity_check,
                           workers=args.workers)
    print(table.render())
    return 0


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        try:
            parsed = int(value)
        except ValueError:
            try:
                parsed = float(value)
            except ValueError:
                parsed = {"true": True, "false": False}.get(value.lower(), value)
        params[key] = parsed
    return params


def _cmd_batch(args) -> int:
    if args.resume and not args.output:
        raise SystemExit("--resume requires --output (the file to resume from)")
    runner = BatchRunner(backend=args.backend, parity_check=args.parity_check,
                         workers=args.workers)
    families = args.family if isinstance(args.family, list) else [args.family]
    cells = BatchRunner.grid(families, args.nodes, args.delta, seeds=range(args.seeds))
    params = _parse_params(args.param)
    sink = open_sink(args.output, resume=args.resume) if args.output else None
    try:
        result = runner.run(args.task, cells, params_grid=[params] if params else None,
                            sink=sink)
    finally:
        if sink is not None:
            sink.close()
    columns = [c for c in result.records[0] if c != "backend"] if result.records else []
    title = (
        f"batch: task={args.task} backend={args.backend} cells={len(result)}"
        + (f" workers={args.workers}" if args.workers > 1 else "")
        + (" parity-checked" if args.parity_check else "")
    )
    print(result.to_table(title, columns).render())
    print(f"\ntotal wall-clock: {result.total_seconds:.3f}s on backend {args.backend!r}"
          + (f" across {args.workers} workers" if args.workers > 1 else "")
          + (" (every cell parity-checked against 'reference')" if args.parity_check else ""))
    if sink is not None:
        skipped = len(result) - sink.written
        print(f"wrote {sink.written} record(s) to {args.output}"
              + (f" ({skipped} cell(s) resumed from a previous run)" if skipped else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "color": _cmd_color,
        "defective": _cmd_defective,
        "ruling-set": _cmd_ruling_set,
        "experiment": _cmd_experiment,
        "batch": _cmd_batch,
    }
    try:
        return commands[args.command](args)
    except AssertionError as exc:  # verification failure (incl. parity errors)
        print(f"VERIFICATION FAILED: {exc}", file=sys.stderr)
        return 1
    except (SinkError, EngineError) as exc:  # unusable sink file / backend setup
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
