"""Real-graph corpus: edge-list ingestion, content-addressed caching, sweeps.

The generators in :mod:`repro.congest.generators` exercise the algorithms on
*synthetic* workloads with dialled-in ``n`` and ``Delta``; this subpackage is
the complementary plane — **graphs that arrive as files**.  It has four parts:

:mod:`repro.corpus.ingest`
    SNAP-style edge-list parsing (``.txt`` / ``.csv``, optionally gzipped;
    comment- and header-tolerant; 0- or 1-indexed) into the repo's CSR
    :class:`~repro.congest.graph.Graph`, with errors that name the offending
    source line.
:mod:`repro.corpus.cache`
    A content-addressed artifact cache (``~/.cache/repro/corpus``): parsed
    CSR arrays land in ``<sha256>.npz`` and reload via ``np.memmap`` without
    re-parsing — re-ingesting an unchanged file is an mmap, not a parse.
:mod:`repro.corpus.vendor`
    The vendored ``corpus/`` directory and its ``MANIFEST.json`` (provenance,
    license, expected shape, digest per graph).
:mod:`repro.corpus.sweep`
    ``repro corpus``: the registered algorithm zoo over the corpus through
    :class:`~repro.engine.batch.BatchRunner`, every output independently
    re-verified with :mod:`repro.verify`.

File-backed graphs enter the engine as ordinary
:class:`~repro.engine.batch.GraphSpec` cells with ``family="file"`` and a
``path`` — :func:`file_spec` builds one, :func:`load_file_graph` is the
``_build_graph`` dispatch target — so batch sweeps, sharding, the job server
and retry policy all work on corpus graphs unchanged.
"""

from __future__ import annotations

import pathlib
from typing import Any

import numpy as np

from repro.corpus.cache import cache_root, file_digest
from repro.corpus.ingest import CorpusGraph, build_graph, ingest, parse_edge_list
from repro.corpus.sweep import (
    corpus_task,
    default_zoo,
    render_summary,
    run_corpus_sweep,
    summarize,
    write_summary,
)
from repro.corpus.vendor import (
    CorpusEntry,
    CorpusError,
    corpus_root,
    corpus_specs,
    load_manifest,
)

__all__ = [
    "FILE_FAMILY",
    "CorpusEntry",
    "CorpusError",
    "CorpusGraph",
    "build_graph",
    "cache_root",
    "corpus_root",
    "corpus_specs",
    "corpus_task",
    "default_zoo",
    "file_digest",
    "file_spec",
    "graph_info",
    "ingest",
    "load_file_graph",
    "load_manifest",
    "parse_edge_list",
    "render_summary",
    "run_corpus_sweep",
    "summarize",
    "write_summary",
]

#: The :class:`~repro.engine.batch.GraphSpec` family of file-backed graphs.
FILE_FAMILY = "file"


def file_spec(path: str | pathlib.Path, cache_dir: str | pathlib.Path | None = None):
    """Ingest ``path`` and return the file-family GraphSpec describing it.

    The spec's ``n`` / ``delta`` are the *measured* values of the ingested
    graph (so spec labels, records and CLI output are truthful), ``seed`` is
    fixed at 0 — a file graph has no generator randomness.
    """
    from repro.engine.batch import GraphSpec

    corpus_graph = ingest(path, cache_dir=cache_dir)
    graph = corpus_graph.graph
    return GraphSpec(
        family=FILE_FAMILY,
        n=graph.n,
        delta=max(1, graph.max_degree),
        seed=0,
        path=str(pathlib.Path(path)),
    )


def load_file_graph(spec):
    """Build the graph of a ``family="file"`` spec (the ``_build_graph`` hook).

    Ingestion goes through the content-addressed cache, so repeated cells on
    one graph parse its file once.  The spec's declared ``n`` / ``delta`` are
    checked against the ingested graph: a mismatch means the file drifted
    under a stored spec (or a manifest lies about its graph), and silently
    solving the *wrong* graph would poison every downstream record.
    """
    from repro.congest.graph import GraphError

    if getattr(spec, "path", None) is None:
        raise GraphError("file-family GraphSpec has no path")
    corpus_graph = ingest(spec.path)
    graph = corpus_graph.graph
    delta = max(1, graph.max_degree)
    if graph.n != spec.n or delta != spec.delta:
        raise GraphError(
            f"graph file {pathlib.Path(spec.path).name} does not match its spec: "
            f"file has n={graph.n}, Delta={delta}; spec declares "
            f"n={spec.n}, Delta={spec.delta} (re-ingest with repro.corpus.file_spec)"
        )
    return graph


def graph_info(graph) -> dict[str, Any]:
    """Structural facts of a graph: n, m, Delta, degree histogram, components.

    The payload behind ``repro graph info`` — everything derives from the CSR
    arrays, so it is exact and deterministic.
    """
    degrees = np.asarray(graph.degrees)
    n = int(graph.n)
    m = int(degrees.sum()) // 2
    delta = int(degrees.max()) if n else 0
    histogram = np.bincount(degrees, minlength=delta + 1) if n else np.zeros(1, np.int64)
    return {
        "n": n,
        "m": m,
        "delta": delta,
        "min_degree": int(degrees.min()) if n else 0,
        "mean_degree": (2.0 * m / n) if n else 0.0,
        "degree_histogram": {int(d): int(c) for d, c in enumerate(histogram) if c},
        "isolated_vertices": int((degrees == 0).sum()),
        "components": _component_count(graph),
    }


def _component_count(graph) -> int:
    """Connected components by vectorized BFS over the CSR arrays."""
    n = int(graph.n)
    if n == 0:
        return 0
    indptr = np.asarray(graph.indptr)
    indices = np.asarray(graph.indices)
    seen = np.zeros(n, dtype=bool)
    components = 0
    for root in range(n):
        if seen[root]:
            continue
        components += 1
        seen[root] = True
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            counts = ends - starts
            total = int(counts.sum())
            if not total:
                break
            # gather all neighbours of the frontier in one shot
            offsets = np.repeat(starts, counts) + (
                np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            )
            neighbours = indices[offsets]
            fresh = np.unique(neighbours[~seen[neighbours]])
            seen[fresh] = True
            frontier = fresh
    return components
