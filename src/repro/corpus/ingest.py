"""Edge-list ingestion: on-disk graph files -> :class:`~repro.congest.graph.Graph`.

Real-world graph files (SNAP exports, Konect dumps, CSV edge tables) are
messy: comment lines (``#``, ``%``, ``//``), a header row naming the columns,
whitespace *or* comma separated fields, extra columns (weights, timestamps),
0- or 1-based (or entirely arbitrary, gappy) vertex ids, duplicate edges in
either orientation.  :func:`parse_edge_list` tolerates all of that and fails
*loudly* on anything genuinely malformed — a self loop, an unparseable token,
a one-column line — with a :class:`~repro.congest.graph.GraphFormatError`
naming the offending source line.

The parse result keeps per-edge line provenance (``lines[i]`` is the 1-based
source line of raw edge ``i``), so every downstream rejection can point back
into the file.  Vertex ids are relabelled to ``0..n-1`` in sorted order
(which is the identity for an already-contiguous 0-based file), and the
relabelled edges go through :meth:`Graph.from_edge_array`, the canonical
validating CSR constructor — duplicates collapse there.

:func:`ingest` wraps the parser with the content-addressed CSR cache
(:mod:`repro.corpus.cache`): the first ingest of a file parses and caches,
every later ingest of byte-identical content loads the cached ``.npz``
artifact (mmap-friendly) without touching the text at all.
"""

from __future__ import annotations

import gzip
import io
import pathlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.congest.graph import Graph, GraphFormatError

__all__ = ["ParsedEdgeList", "CorpusGraph", "parse_edge_list", "ingest"]

#: Line prefixes treated as comments (SNAP ``#``, Matrix-Market ``%``, C ``//``).
COMMENT_PREFIXES = ("#", "%", "//")

#: Field separators normalized to whitespace before splitting.
_SEPARATORS = (",", ";")


@dataclass(frozen=True)
class ParsedEdgeList:
    """The raw parse of one edge-list file, before CSR construction.

    ``edges`` are the *relabelled* ``(m_raw, 2)`` endpoint pairs (vertex ids
    ``0..n-1``, duplicates still present); ``lines[i]`` is the 1-based source
    line of ``edges[i]``; ``meta`` records what the parser saw (raw id range,
    comment/header/blank counts, dropped self loops).
    """

    n: int
    edges: np.ndarray
    lines: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CorpusGraph:
    """An ingested on-disk graph: the CSR graph plus its provenance.

    ``digest`` is the full SHA-256 of the source file's bytes — the cache key
    and the content identity :func:`repro.api.spec.spec_hash` pins for
    ``family="file"`` graph specs.  ``cached`` tells whether this load came
    from the ``.npz`` artifact (warm) or parsed the text (cold).
    """

    path: str
    digest: str
    graph: Graph
    meta: dict[str, Any]
    cached: bool


def _open_text(path: pathlib.Path) -> io.TextIOBase:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8", errors="replace")
    return open(path, "r", encoding="utf-8", errors="replace")


def _split_fields(text: str) -> list[str]:
    for sep in _SEPARATORS:
        if sep in text:
            text = text.replace(sep, " ")
    return text.split()


def _looks_like_header(fields: list[str]) -> bool:
    """A non-numeric first data row (``source,target`` / ``FromNodeId ToNodeId``)."""
    def numeric(tok: str) -> bool:
        try:
            int(tok)
        except ValueError:
            return False
        return True

    return bool(fields) and not all(numeric(tok) for tok in fields[:2])


def parse_edge_list(
    path: str | pathlib.Path,
    drop_self_loops: bool = False,
) -> ParsedEdgeList:
    """Parse an on-disk edge list into relabelled endpoint pairs.

    Parameters
    ----------
    path:
        A ``.txt`` / ``.csv`` / ``.edges`` file, optionally ``.gz``-compressed
        (by suffix).  Each data line contributes one edge: its first two
        fields are the endpoints; extra fields (weights, timestamps) are
        ignored.
    drop_self_loops:
        Real-world exports sometimes contain ``u u`` rows.  By default they
        raise a :class:`GraphFormatError` naming the line; with
        ``drop_self_loops=True`` they are dropped and counted in
        ``meta["self_loops_dropped"]``.

    Raises
    ------
    GraphFormatError
        On an unparseable token or a one-field line (always naming the
        1-based source line), or on a self loop unless ``drop_self_loops``.
    """
    path = pathlib.Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"edge-list file not found: {path}")
    pairs: list[tuple[int, int]] = []
    linenos: list[int] = []
    comments = 0
    self_loops = 0
    header_skipped = False
    first_data = True
    with _open_text(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            text = raw.strip()
            if not text:
                continue
            if text.startswith(COMMENT_PREFIXES):
                comments += 1
                continue
            fields = _split_fields(text)
            if first_data and _looks_like_header(fields):
                # Tolerate exactly one header row naming the columns.
                first_data = False
                header_skipped = True
                continue
            first_data = False
            if len(fields) < 2:
                raise GraphFormatError(
                    f"{path.name}:{lineno}: expected two endpoint fields, "
                    f"got {text!r}", line=lineno,
                )
            try:
                u, v = int(fields[0]), int(fields[1])
            except ValueError:
                raise GraphFormatError(
                    f"{path.name}:{lineno}: unparseable edge endpoints in "
                    f"{text!r}", line=lineno,
                ) from None
            if u == v:
                if drop_self_loops:
                    self_loops += 1
                    continue
                raise GraphFormatError(
                    f"{path.name}:{lineno}: self loop on vertex {u} "
                    "(pass drop_self_loops=True to skip such rows)",
                    edge=(u, v), line=lineno,
                )
            pairs.append((u, v))
            linenos.append(lineno)

    if not pairs:
        raise GraphFormatError(
            f"{path.name}: no edges found (only comments/blank lines)"
        )
    raw_edges = np.array(pairs, dtype=np.int64)
    lines = np.array(linenos, dtype=np.int64)
    ids = np.unique(raw_edges.ravel())
    relabelled = not (
        ids[0] == 0 and ids[-1] == ids.size - 1
    )  # identity mapping for contiguous 0-based ids
    edges = np.searchsorted(ids, raw_edges)
    n = int(ids.size)
    id_min, id_max = int(ids[0]), int(ids[-1])
    meta = {
        "format": "csv" if ".csv" in path.suffixes else "txt",
        "compressed": path.suffix == ".gz",
        "header_skipped": header_skipped,
        "comment_lines": comments,
        "edges_raw": int(edges.shape[0]),
        "self_loops_dropped": self_loops,
        "id_min": id_min,
        "id_max": id_max,
        "relabelled": bool(relabelled),
    }
    return ParsedEdgeList(n=n, edges=edges, lines=lines, meta=meta)


def build_graph(parsed: ParsedEdgeList) -> tuple[Graph, dict[str, Any]]:
    """CSR-construct the parsed edges; return the graph and enriched meta.

    Duplicate edges (either orientation) collapse inside
    :meth:`Graph.from_edge_array`; the number collapsed is recorded in
    ``meta["duplicate_edges"]``.  A :class:`GraphFormatError` raised by the
    constructor is re-raised with the offending *source line* attached (the
    parser's per-edge line map makes the translation exact).
    """
    try:
        graph = Graph.from_edge_array(parsed.n, parsed.edges)
    except GraphFormatError as exc:
        if exc.index is not None and exc.index < parsed.lines.size:
            line = int(parsed.lines[exc.index])
            raise GraphFormatError(
                f"line {line}: {exc}", edge=exc.edge, index=exc.index, line=line
            ) from None
        raise
    meta = dict(parsed.meta)
    meta.update(
        n=graph.n,
        m=graph.num_edges,
        delta=graph.max_degree,
        duplicate_edges=int(parsed.edges.shape[0] - graph.num_edges),
    )
    return graph, meta


def ingest(
    path: str | pathlib.Path,
    cache_dir: str | pathlib.Path | None = None,
    use_cache: bool = True,
    drop_self_loops: bool = False,
) -> CorpusGraph:
    """Load an on-disk edge list as a :class:`Graph`, through the CSR cache.

    The cache (:mod:`repro.corpus.cache`) is keyed by the SHA-256 of the
    file's bytes: a warm load memory-maps the stored ``.npz`` CSR arrays and
    never re-parses the text; editing the file changes the digest and misses
    the cache naturally.  ``use_cache=False`` forces a cold parse (and still
    refreshes the cache entry).
    """
    from repro.corpus import cache

    path = pathlib.Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"edge-list file not found: {path}")
    digest = cache.file_digest(path)
    root = cache.cache_root(cache_dir)
    if use_cache:
        hit = cache.load(digest, root)
        if hit is not None:
            graph, meta = hit
            return CorpusGraph(path=str(path), digest=digest, graph=graph,
                               meta=meta, cached=True)
    parsed = parse_edge_list(path, drop_self_loops=drop_self_loops)
    graph, meta = build_graph(parsed)
    meta["source"] = path.name
    cache.store(digest, graph, meta, root)
    return CorpusGraph(path=str(path), digest=digest, graph=graph, meta=meta,
                       cached=False)
