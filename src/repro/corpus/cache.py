"""Content-addressed CSR artifact cache for ingested edge lists.

Layout: one ``<sha256>.npz`` (uncompressed ``np.savez``: ``indptr`` +
``indices``) plus a ``<sha256>.json`` meta sidecar per distinct *file
content*, under ``~/.cache/repro/corpus`` (override with the
``REPRO_CORPUS_CACHE`` environment variable, or per call).  The key is the
SHA-256 of the source file's bytes, so

* re-ingesting byte-identical content — same path or a copy anywhere — is a
  cache hit that never re-parses the text;
* editing the file changes the digest and misses naturally — no mtime
  heuristics, no invalidation logic;
* two corpus directories (or two machines sharing a cache volume) dedupe
  storage by content.

Writes are atomic (temp file + ``os.replace``) so a crashed ingest never
leaves a torn artifact behind, and a corrupt/unreadable entry is treated as
a miss (re-parsed and rewritten), never an error.

Loading is mmap-friendly: ``np.savez`` stores members *uncompressed*, so each
embedded ``.npy`` sits at a fixed offset inside the zip and can be
``np.memmap``-ed directly — a warm load touches no array bytes until a kernel
does.  :meth:`Graph.from_csr_arrays` keeps the read-only memmaps as the
graph's backing arrays (its copy guard only copies *writable* caller
buffers).  If the offset probe fails for any reason the loader falls back to
a plain ``np.load``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import zipfile
from typing import Any

import numpy as np

from repro.congest.graph import Graph

__all__ = ["cache_root", "file_digest", "store", "load", "artifact_path"]

#: Environment variable overriding the default cache directory.
CACHE_ENV = "REPRO_CORPUS_CACHE"


def cache_root(override: str | pathlib.Path | None = None) -> pathlib.Path:
    """The cache directory: ``override`` > ``$REPRO_CORPUS_CACHE`` > default."""
    if override is not None:
        return pathlib.Path(override)
    env = os.environ.get(CACHE_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "corpus"


def file_digest(path: str | pathlib.Path) -> str:
    """Full SHA-256 hex digest of a file's bytes (the cache / identity key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def artifact_path(digest: str, root: pathlib.Path | None = None) -> pathlib.Path:
    return (cache_root() if root is None else root) / f"{digest}.npz"


def _meta_path(digest: str, root: pathlib.Path) -> pathlib.Path:
    return root / f"{digest}.json"


def store(
    digest: str, graph: Graph, meta: dict[str, Any], root: pathlib.Path | None = None
) -> pathlib.Path:
    """Write the graph's CSR arrays and meta under ``digest``; return the .npz path."""
    root = cache_root() if root is None else root
    root.mkdir(parents=True, exist_ok=True)
    target = artifact_path(digest, root)
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle,
                     indptr=np.ascontiguousarray(graph.indptr, dtype=np.int64),
                     indices=np.ascontiguousarray(graph.indices, dtype=np.int64))
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    meta_target = _meta_path(digest, root)
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True, indent=1)
        os.replace(tmp, meta_target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


def _mmap_npz(path: pathlib.Path) -> dict[str, np.ndarray] | None:
    """Memory-map the members of an *uncompressed* ``.npz`` in place.

    ``np.savez`` writes ZIP_STORED members, each a verbatim ``.npy`` at a
    knowable offset: local header + its name/extra fields, then the npy
    magic/header, then the raw array bytes.  Any surprise (compressed member,
    unexpected magic, npy format drift) returns ``None`` and the caller falls
    back to ``np.load``.
    """
    arrays: dict[str, np.ndarray] = {}
    try:
        with open(path, "rb") as handle, zipfile.ZipFile(handle) as bundle:
            for info in bundle.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                handle.seek(info.header_offset)
                local = handle.read(30)
                if local[:4] != b"PK\x03\x04":
                    return None
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                name = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
                arrays[name] = np.memmap(path, dtype=dtype, mode="r",
                                         offset=handle.tell(), shape=shape)
    except (OSError, ValueError, zipfile.BadZipFile, KeyError):
        return None
    return arrays


def load(
    digest: str, root: pathlib.Path | None = None, mmap: bool = True
) -> tuple[Graph, dict[str, Any]] | None:
    """Load the cached graph for ``digest``, or ``None`` on a miss.

    A present-but-unreadable entry (torn write from a killed process, foreign
    garbage in the cache dir) counts as a miss: ingestion re-parses the
    source and overwrites the entry.
    """
    root = cache_root() if root is None else root
    target = artifact_path(digest, root)
    meta_target = _meta_path(digest, root)
    if not target.is_file() or not meta_target.is_file():
        return None
    try:
        meta = json.loads(meta_target.read_text(encoding="utf-8"))
        arrays = _mmap_npz(target) if mmap else None
        if arrays is None:
            with np.load(target) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        graph = Graph.from_csr_arrays(arrays["indptr"], arrays["indices"])
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
        return None
    if not isinstance(meta, dict):
        return None
    return graph, meta
