"""The vendored corpus: discovery, manifest parsing, and validation.

The repository ships a small corpus of real-topology graphs under
``corpus/`` — road, social, collaboration, web and mesh samples, each a few
thousand vertices — described by ``corpus/MANIFEST.json``.  Every entry
records the file, its topology kind, provenance ("source"), license, the
expected ``n`` / ``m`` / ``delta``, and the SHA-256 of the file's bytes, so
the manifest doubles as an integrity check: :func:`load_manifest` (with
``verify=True``) refuses a corpus whose files drifted from their recorded
digests or shapes.

Discovery order for the corpus directory:

1. an explicit ``corpus_dir`` argument,
2. the ``REPRO_CORPUS_DIR`` environment variable,
3. a ``corpus/MANIFEST.json`` in the current directory or any ancestor,
4. the repository checkout this package was imported from.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any

__all__ = ["CorpusError", "CorpusEntry", "corpus_root", "load_manifest", "corpus_specs"]

#: Environment variable overriding corpus discovery.
CORPUS_ENV = "REPRO_CORPUS_DIR"

MANIFEST_NAME = "MANIFEST.json"


class CorpusError(ValueError):
    """A missing, malformed, or drifted vendored corpus."""


@dataclass(frozen=True)
class CorpusEntry:
    """One vendored graph: its file plus the manifest's recorded facts."""

    name: str
    path: pathlib.Path
    kind: str
    source: str
    license: str
    n: int
    m: int
    delta: int
    sha256: str
    description: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "file": self.path.name,
            "kind": self.kind,
            "source": self.source,
            "license": self.license,
            "n": self.n,
            "m": self.m,
            "delta": self.delta,
            "sha256": self.sha256,
            "description": self.description,
        }


def corpus_root(corpus_dir: str | pathlib.Path | None = None) -> pathlib.Path:
    """Locate the corpus directory (see the module docstring for the order)."""
    if corpus_dir is not None:
        root = pathlib.Path(corpus_dir)
        if not (root / MANIFEST_NAME).is_file():
            raise CorpusError(f"no {MANIFEST_NAME} in corpus directory {root}")
        return root
    env = os.environ.get(CORPUS_ENV)
    if env:
        return corpus_root(env)
    for base in [pathlib.Path.cwd(), *pathlib.Path.cwd().parents]:
        candidate = base / "corpus"
        if (candidate / MANIFEST_NAME).is_file():
            return candidate
    # the checkout this package lives in: src/repro/corpus/vendor.py -> repo root
    checkout = pathlib.Path(__file__).resolve().parents[3] / "corpus"
    if (checkout / MANIFEST_NAME).is_file():
        return checkout
    raise CorpusError(
        "cannot find the vendored corpus: no corpus/MANIFEST.json in the "
        "current directory, its ancestors, or the package checkout "
        f"(set ${CORPUS_ENV} or pass --corpus-dir)"
    )


def load_manifest(
    corpus_dir: str | pathlib.Path | None = None, verify: bool = False
) -> list[CorpusEntry]:
    """Parse ``MANIFEST.json``; optionally verify file digests against it.

    Entries come back in manifest order (the corpus' canonical order — the
    sweep summary lists graphs in exactly this order).
    """
    root = corpus_root(corpus_dir)
    manifest = root / MANIFEST_NAME
    try:
        document = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CorpusError(f"unreadable corpus manifest {manifest}: {exc}") from None
    if not isinstance(document, dict) or not isinstance(document.get("graphs"), list):
        raise CorpusError(f"corpus manifest {manifest} must be {{'graphs': [...]}}")
    entries = []
    for raw in document["graphs"]:
        try:
            entry = CorpusEntry(
                name=str(raw["name"]),
                path=root / str(raw["file"]),
                kind=str(raw["kind"]),
                source=str(raw["source"]),
                license=str(raw["license"]),
                n=int(raw["n"]),
                m=int(raw["m"]),
                delta=int(raw["delta"]),
                sha256=str(raw["sha256"]),
                description=str(raw.get("description", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusError(f"bad corpus manifest entry {raw!r}: {exc}") from None
        if not entry.path.is_file():
            raise CorpusError(f"corpus file missing: {entry.path} (named by {manifest})")
        entries.append(entry)
    names = [entry.name for entry in entries]
    if len(set(names)) != len(names):
        raise CorpusError(f"duplicate graph names in corpus manifest: {names}")
    if verify:
        from repro.corpus import cache

        for entry in entries:
            digest = cache.file_digest(entry.path)
            if digest != entry.sha256:
                raise CorpusError(
                    f"corpus file {entry.path.name} drifted from its manifest: "
                    f"sha256 {digest[:16]}... != recorded {entry.sha256[:16]}..."
                )
    return entries


def corpus_specs(
    entries: list[CorpusEntry] | None = None,
    corpus_dir: str | pathlib.Path | None = None,
):
    """``(entry, GraphSpec)`` pairs for the vendored corpus.

    The spec's ``n`` / ``delta`` come from the manifest (verified against the
    ingested graph at build time by
    :func:`repro.corpus.load_file_graph`), so building the sweep grid needs
    no ingestion at all — graphs load lazily, per cell, through the cache.
    """
    from repro.engine.batch import GraphSpec

    if entries is None:
        entries = load_manifest(corpus_dir)
    pairs = []
    for entry in entries:
        spec = GraphSpec(family="file", n=entry.n, delta=entry.delta, seed=0,
                         path=str(entry.path))
        pairs.append((entry, spec))
    return pairs
