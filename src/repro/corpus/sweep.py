"""The corpus sweep: the algorithm zoo over real graphs, independently verified.

``repro corpus`` runs every registered algorithm (that is runnable with its
default parameters) over every vendored corpus graph — one
:class:`~repro.engine.batch.BatchRunner` sweep whose cells are
``(file graph) x (zoo entry)``, so workers, retry policy, sharding, sinks and
parity checking are all inherited from the engine layer unchanged.

Each cell executes :func:`corpus_task`: the registered runner produces its
structure, then the cell *independently re-verifies it* with
:mod:`repro.verify` — proper coloring (or bounded defect), color count
against the guarantee's hard bounds (``Delta+1`` for the main pipeline),
independence + domination for ruling sets — and the record carries the
verification verdict.  Verification failure raises, so a corpus sweep can
never quietly report an invalid structure.

:func:`summarize` folds the records into the per-graph summary artifact
(markdown + JSON): colors used vs ``Delta+1``, rounds vs the ``log* n``
benchmark of the paper's round bounds, verification status.  Both renderings
are **deterministic** — wall-clock fields are excluded — so two sweeps of one
corpus produce byte-identical artifacts (the acceptance bar the golden smoke
test pins).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping, Sequence

from repro.analysis.bounds import log_star
from repro.analysis.tables import Table

__all__ = ["corpus_task", "default_zoo", "run_corpus_sweep", "summarize"]


def default_zoo() -> list[dict[str, Any]]:
    """The sweep's params grid: one entry per default-runnable registry algorithm.

    Every registered algorithm whose parameters all carry defaults is swept
    with exactly those defaults — a newly registered algorithm joins the
    corpus sweep automatically, and algorithms with required free parameters
    (``baseline``, ``one_round_tightness``) are left to explicit
    ``--algorithms`` selection.
    """
    from repro.api.registry import algorithm_specs

    zoo = []
    for spec in algorithm_specs():
        if any(param.required for param in spec.params):
            continue
        zoo.append({"algorithm": spec.name})
    return zoo


def _verify_cell(graph, algorithm: str, params: Mapping[str, Any],
                 record: Mapping[str, Any], artifacts: Mapping[str, Any]) -> dict[str, Any]:
    """Re-check the cell's output with :mod:`repro.verify`; return verdict fields.

    This is deliberately *independent* of the runners' own assertions: it
    goes straight from the artifacts (the actual coloring / ruling set) to
    the graph, through the verify subpackage — the validators are first-class
    artifacts of the reproduction, and the corpus sweep exercises them on
    every real-graph output.
    """
    from repro import verify
    from repro.api.registry import get_algorithm

    spec = get_algorithm(algorithm)

    def param_value(name: str, fallback):
        # explicit params win; otherwise the schema default the runner used
        if name in params:
            return params[name]
        for p in spec.params:
            if p.name == name and not p.required:
                return p.default
        return fallback

    delta = max(1, graph.max_degree)
    fields: dict[str, Any] = {}
    if spec.output == "ruling set":
        vertices = artifacts["_vertices"]
        r = int(param_value("r", 2))
        verify.assert_ruling_set(graph, vertices, r)
        fields["proper"] = True  # independence is the ruling-set analogue
    else:
        colors = artifacts["_colors"]
        d = int(param_value("d", 0)) if "max defect" in record else 0
        if "_orientation" in artifacts:
            # beta-outdegree coloring: monochromatic edges are allowed, but
            # the exported orientation must cover them with outdegree <= beta
            beta = int(param_value("beta", 1))
            oriented = set(map(tuple, artifacts["_orientation"].tolist()))
            verify.assert_outdegree_orientation(graph, colors, oriented, beta)
            fields["proper"] = bool(verify.max_defect(graph, colors) == 0)
        elif d > 0:
            verify.assert_defective_coloring(graph, colors, d)
            fields["proper"] = bool(verify.max_defect(graph, colors) == 0)
        else:
            verify.assert_proper_coloring(graph, colors)
            fields["proper"] = True
        fields["colors verified"] = int(verify.count_colors(graph, colors))
        if algorithm == "delta_plus_one":
            verify.assert_proper_coloring(graph, colors, max_colors=delta + 1)
    if "colors verified" in fields:
        fields["within delta plus one"] = fields["colors verified"] <= delta + 1
    fields["verified"] = True
    return fields


def corpus_task(workload, engine, algorithm: str = "delta_plus_one", **params):
    """One corpus cell: run a registered algorithm, then independently verify.

    A module-level importable callable, so parallel workers resolve it by
    reference and a sharded / multi-worker corpus sweep behaves exactly like
    any other BatchRunner task.  The returned record extends the algorithm's
    own measurements with the verification verdict and the ``log* n``
    benchmark the summary compares round counts against.
    """
    from repro.api.registry import get_algorithm

    spec = get_algorithm(algorithm)
    clean = spec.validate_params(dict(params))
    raw = spec.runner(workload, engine, **clean)
    record = {k: v for k, v in raw.items() if not k.startswith("_")}
    artifacts = {k: v for k, v in raw.items() if k.startswith("_")}
    verdict = _verify_cell(workload.graph, algorithm, clean, record, artifacts)
    out = dict(raw)
    out.update(verdict)
    out["log star n"] = int(log_star(max(1, workload.graph.n)))
    return out


def run_corpus_sweep(
    specs: Sequence,
    zoo: Sequence[Mapping[str, Any]] | None = None,
    backend: str = "array",
    workers: int = 1,
    parity_check: bool = False,
    retry=None,
    shard: tuple[int, int] | None = None,
    sink=None,
    progress=None,
):
    """Sweep the zoo over ``specs`` (file-family GraphSpecs) through BatchRunner."""
    from repro.engine.batch import BatchRunner

    runner = BatchRunner(backend=backend, parity_check=parity_check,
                         workers=workers, retry=retry)
    grid = [dict(entry) for entry in (zoo if zoo is not None else default_zoo())]
    return runner.run(corpus_task, list(specs), params_grid=grid, sink=sink,
                      shard=shard, progress=progress)


# --------------------------------------------------------------------------- #
# The summary artifact
# --------------------------------------------------------------------------- #

#: Record keys excluded from the deterministic summary (wall-clock noise).
_NONDETERMINISTIC = ("seconds",)

SUMMARY_SCHEMA = 1


def _clean_record(record: Mapping[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in record.items() if k not in _NONDETERMINISTIC}


def summarize(entries, result, backend: str = "array") -> dict[str, Any]:
    """Fold sweep records into the summary document (the JSON artifact).

    ``entries`` are the :class:`~repro.corpus.vendor.CorpusEntry` objects the
    sweep covered (manifest order); ``result`` the
    :class:`~repro.engine.batch.BatchResult`.  Deterministic by construction:
    record order is grid order, wall-clock fields are dropped, and the
    per-graph rollup depends only on record values.  Cells are matched to
    manifest entries by the record's ``path`` (the spec path the sweep ran)
    and annotated with the entry's short ``graph`` name for readability.
    """
    name_of = {str(entry.path): entry.name for entry in entries}
    cells = []
    for record in result.records:
        cell = _clean_record(record)
        name = name_of.get(str(cell.get("path", "")))
        if name is not None:
            cell["graph"] = name
        if "path" in cell:
            # keep the summary checkout-relocatable (golden-comparable)
            cell["path"] = pathlib.Path(cell["path"]).name
        cells.append(cell)
    graphs = []
    for entry in entries:
        mine = [c for c in cells if c.get("graph") == entry.name]
        verified = all(c.get("verified") is True for c in mine) and bool(mine)
        failed = [c for c in mine if "error" in c]
        graphs.append({
            "name": entry.name,
            "kind": entry.kind,
            "n": entry.n,
            "m": entry.m,
            "delta": entry.delta,
            "log_star_n": int(log_star(max(1, entry.n))),
            "cells": len(mine),
            "verified": verified and not failed,
            "failed_cells": len(failed),
        })
    return {
        "schema": SUMMARY_SCHEMA,
        "backend": backend,
        "graphs": graphs,
        "cells": cells,
    }


def render_summary(summary: Mapping[str, Any]) -> str:
    """The markdown rendering of :func:`summarize`'s document."""
    graph_table = Table(
        f"corpus sweep — {len(summary['graphs'])} graph(s), "
        f"{len(summary['cells'])} cell(s), backend {summary['backend']}",
        ["graph", "kind", "n", "m", "Delta", "log* n", "cells", "all verified"],
    )
    for g in summary["graphs"]:
        graph_table.add_row(g["name"], g["kind"], g["n"], g["m"], g["delta"],
                            g["log_star_n"], g["cells"],
                            "yes" if g["verified"] else "NO")
    cell_table = Table(
        "per-cell results (colors vs Delta+1, rounds vs log* n)",
        ["graph", "algorithm", "colors", "Delta+1", "<=Delta+1", "rounds",
         "log* n", "verified"],
    )
    for c in summary["cells"]:
        if "error" in c:
            err = c.get("error") or {}
            cell_table.add_row(c.get("graph", "?"), c.get("algorithm", "?"),
                               "—", "—", "—", "—", "—",
                               f"FAILED [{err.get('kind', '?')}]")
            continue
        colors = c.get("colors verified", c.get("colors used"))
        if colors is None:
            delta_plus_one, colors, within = "—", "—", "—"  # ruling sets
        else:
            delta_plus_one = int(c.get("Delta", 0)) + 1
            within = "yes" if c.get("within delta plus one") else "no"
        cell_table.add_row(
            c.get("graph", "?"), c.get("algorithm", "?"), colors, delta_plus_one,
            within, c.get("rounds", "—"), c.get("log star n", "—"),
            "yes" if c.get("verified") else "NO",
        )
    cell_table.add_note("every cell independently re-verified with repro.verify "
                        "(proper/defective coloring, ruling-set domination)")
    cell_table.add_note("'<=Delta+1' is a hard guarantee only for delta_plus_one; "
                        "for the other algorithms it situates their trade-off")
    return graph_table.render() + "\n\n" + cell_table.render()


def write_summary(
    summary: Mapping[str, Any], output_dir: str | pathlib.Path
) -> tuple[pathlib.Path, pathlib.Path]:
    """Write ``corpus_summary.{json,md}`` under ``output_dir``; return the paths."""
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / "corpus_summary.json"
    md_path = out / "corpus_summary.md"
    json_path.write_text(
        json.dumps(summary, sort_keys=True, indent=1, default=_jsonable) + "\n",
        encoding="utf-8",
    )
    md_path.write_text(render_summary(summary) + "\n", encoding="utf-8")
    return json_path, md_path


def _jsonable(value: Any) -> Any:
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"value {value!r} is not JSON-serializable")
