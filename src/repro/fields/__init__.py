"""Algebraic substrate: primes, polynomials over finite fields, set families.

The mother algorithm's color sequences are built from polynomials over a prime
field ``F_q`` (Section 2 of the paper).  The key algebraic fact is Lemma 2.1:
two distinct polynomials of degree at most ``f`` agree on at most ``f`` points,
which bounds the number of conflicting trials between any two neighbors.
"""

from repro.fields.primes import is_prime, next_prime, prime_in_range, bertrand_prime
from repro.fields.polynomials import (
    PolynomialFq,
    enumerate_polynomials,
    polynomial_from_index,
    intersection_count,
)
from repro.fields.set_families import (
    polynomial_set_family,
    greedy_low_intersecting_family,
    max_pairwise_intersection,
)

__all__ = [
    "is_prime",
    "next_prime",
    "prime_in_range",
    "bertrand_prime",
    "PolynomialFq",
    "enumerate_polynomials",
    "polynomial_from_index",
    "intersection_count",
    "polynomial_set_family",
    "greedy_low_intersecting_family",
    "max_pairwise_intersection",
]
