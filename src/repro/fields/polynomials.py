"""Polynomials over prime fields ``F_q``.

Every input color ``i`` of the mother algorithm is mapped to a distinct
polynomial ``p_i`` of degree at most ``f`` over ``F_q``, obtained by writing
``i`` in base ``q`` (the lexicographic enumeration described in Section 2).
The crucial property is Lemma 2.1: two distinct polynomials of degree at most
``f`` agree on at most ``max(f1, f2) <= f`` points of ``F_q``, which bounds
how often two neighbors can try the same color.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fields.primes import is_prime

__all__ = [
    "PolynomialFq",
    "polynomial_from_index",
    "enumerate_polynomials",
    "intersection_count",
    "coefficients_from_index",
]


def coefficients_from_index(index: int, degree_bound: int, q: int) -> tuple[int, ...]:
    """Coefficients ``(a_0, ..., a_f)`` of the ``index``-th polynomial in ``P^f_q``.

    The enumeration writes ``index`` in base ``q``: ``a_j`` is the ``j``-th
    base-``q`` digit.  This is a bijection between ``[q^(f+1)]`` and the
    coefficient tuples, so distinct indices give distinct polynomials, exactly
    what the algorithm needs ("assign the polynomial corresponding to the i-th
    tuple to input color i").
    """
    if index < 0:
        raise ValueError("polynomial index must be non-negative")
    if index >= q ** (degree_bound + 1):
        raise ValueError(
            f"index {index} out of range: only {q ** (degree_bound + 1)} polynomials "
            f"of degree <= {degree_bound} over F_{q}"
        )
    coeffs = []
    rest = int(index)
    for _ in range(degree_bound + 1):
        coeffs.append(rest % q)
        rest //= q
    return tuple(coeffs)


@dataclass(frozen=True)
class PolynomialFq:
    """A polynomial ``p(x) = a_0 + a_1 x + ... + a_f x^f`` over ``F_q``.

    Attributes
    ----------
    coefficients:
        Tuple ``(a_0, ..., a_f)`` with entries in ``[q]``.
    q:
        The (prime) field size.
    """

    coefficients: tuple[int, ...]
    q: int

    def __post_init__(self):
        if not is_prime(self.q):
            raise ValueError(f"field size q={self.q} must be prime")
        if not self.coefficients:
            raise ValueError("a polynomial needs at least one coefficient")
        if any(not (0 <= c < self.q) for c in self.coefficients):
            raise ValueError(f"coefficients must lie in [0, {self.q})")

    @property
    def degree_bound(self) -> int:
        """``f`` such that the polynomial lives in ``P^f_q`` (len(coefficients) - 1)."""
        return len(self.coefficients) - 1

    @property
    def degree(self) -> int:
        """The actual degree (index of the highest non-zero coefficient; 0 for the zero polynomial)."""
        for j in range(len(self.coefficients) - 1, -1, -1):
            if self.coefficients[j] != 0:
                return j
        return 0

    def __call__(self, x: int) -> int:
        """Evaluate at a single point via Horner's rule."""
        acc = 0
        for a in reversed(self.coefficients):
            acc = (acc * x + a) % self.q
        return acc

    def evaluate_all(self) -> np.ndarray:
        """Evaluate at every point of ``F_q``; returns an array of length ``q``.

        Vectorized Horner evaluation — this is the hot path of the sequence
        construction, so it avoids Python-level loops over the field.
        """
        xs = np.arange(self.q, dtype=np.int64)
        acc = np.zeros(self.q, dtype=np.int64)
        for a in reversed(self.coefficients):
            acc = (acc * xs + a) % self.q
        return acc

    def evaluate_many(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate at the given points (taken modulo ``q``)."""
        xs = np.asarray(xs, dtype=np.int64) % self.q
        acc = np.zeros(xs.shape, dtype=np.int64)
        for a in reversed(self.coefficients):
            acc = (acc * xs + a) % self.q
        return acc


def polynomial_from_index(index: int, degree_bound: int, q: int) -> PolynomialFq:
    """The ``index``-th polynomial of ``P^f_q`` in the lexicographic enumeration."""
    return PolynomialFq(coefficients_from_index(index, degree_bound, q), q)


def enumerate_polynomials(count: int, degree_bound: int, q: int) -> list[PolynomialFq]:
    """The first ``count`` polynomials of ``P^f_q``; one per input color."""
    if count > q ** (degree_bound + 1):
        raise ValueError(
            f"cannot enumerate {count} distinct polynomials of degree <= {degree_bound} "
            f"over F_{q} (only {q ** (degree_bound + 1)} exist)"
        )
    return [polynomial_from_index(i, degree_bound, q) for i in range(count)]


def intersection_count(p1: PolynomialFq, p2: PolynomialFq) -> int:
    """Number of points ``x`` in ``F_q`` with ``p1(x) == p2(x)``.

    By Lemma 2.1 this is at most ``max(deg p1, deg p2)`` for distinct
    polynomials — the property the whole conflict analysis rests on.
    """
    if p1.q != p2.q:
        raise ValueError("polynomials live over different fields")
    return int(np.count_nonzero(p1.evaluate_all() == p2.evaluate_all()))
