"""Primality testing and prime selection in intervals.

The mother algorithm needs a prime ``q`` with ``2 f Z < q < 4 f Z``
(Equation (1) of the paper); such a prime exists by Bertrand's postulate.
The numbers involved are tiny (polynomial in ``Delta`` and ``log m``), so a
deterministic Miller-Rabin test over the known-good witness set for 64-bit
integers is more than sufficient.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "prime_in_range", "bertrand_prime", "primes_up_to"]

# Deterministic Miller-Rabin witnesses valid for all n < 3,317,044,064,679,887,385,961,981.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_prime(n: int) -> bool:
    """Deterministic primality test (Miller-Rabin with fixed witnesses)."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(2, int(n) + 1)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def prime_in_range(low: int, high: int) -> int:
    """Smallest prime ``p`` with ``low < p < high``.

    Raises
    ------
    ValueError
        If no prime lies strictly between ``low`` and ``high``.
    """
    p = next_prime(int(low))
    if p >= high:
        raise ValueError(f"no prime strictly between {low} and {high}")
    return p


def bertrand_prime(x: int) -> int:
    """A prime in ``(x, 2x)`` for ``x >= 1`` (exists by Bertrand's postulate)."""
    x = int(x)
    if x < 1:
        raise ValueError("bertrand_prime requires x >= 1")
    if x == 1:
        return 2
    return prime_in_range(x, 2 * x)


def primes_up_to(n: int) -> list[int]:
    """All primes ``<= n`` (simple sieve; used in tests)."""
    n = int(n)
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    p = 2
    while p * p <= n:
        if sieve[p]:
            sieve[p * p:: p] = bytearray(len(sieve[p * p:: p]))
        p += 1
    return [i for i in range(2, n + 1) if sieve[i]]
