"""Low-intersecting set families.

Linial's one-round color reduction rests on a family ``S_1, ..., S_m`` of
subsets of a small ground set such that every pairwise intersection is small:
a node with input color ``i`` tries all colors in ``S_i`` simultaneously, and
because ``|S_i ∩ S_j|`` is small at least one element of ``S_i`` is untouched
by the node's at most ``Delta`` neighbors.

The paper uses the polynomial construction (sets
``S_i = {(x, p_i(x)) : x ∈ F_q}``, pairwise intersections at most ``f`` by
Lemma 2.1) and remarks that the sequences can also be built greedily as in
[MT20].  Both constructions are provided here; the greedy one is used in tests
as an alternative certificate that the polynomial route is not load-bearing.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.fields.polynomials import enumerate_polynomials

__all__ = [
    "polynomial_set_family",
    "greedy_low_intersecting_family",
    "max_pairwise_intersection",
]


def polynomial_set_family(m: int, degree_bound: int, q: int) -> list[set[tuple[int, int]]]:
    """The polynomial-based family: ``S_i = {(x, p_i(x)) : x in F_q}`` for ``i in [m]``.

    Each set has exactly ``q`` elements from the ground set ``[q] x [q]`` and
    any two distinct sets intersect in at most ``degree_bound`` elements.
    """
    polys = enumerate_polynomials(m, degree_bound, q)
    family = []
    for p in polys:
        values = p.evaluate_all()
        family.append({(int(x), int(values[x])) for x in range(q)})
    return family


def greedy_low_intersecting_family(
    m: int,
    set_size: int,
    ground_size: int,
    max_intersection: int,
    seed: int = 0,
    max_attempts: int = 5000,
) -> list[set[int]]:
    """Greedily build ``m`` subsets of ``[ground_size]`` of size ``set_size``
    with pairwise intersections at most ``max_intersection``.

    This mirrors the greedy construction mentioned in the paper's Remark after
    Theorem 1.1 (and used in the arXiv version of [MT20]).  Sets are sampled
    randomly and kept when they respect the intersection bound against all
    previously kept sets; a :class:`RuntimeError` is raised when the parameters
    are infeasible for the sampling budget.
    """
    if set_size > ground_size:
        raise ValueError("set_size cannot exceed ground_size")
    rng = np.random.default_rng(seed)
    family: list[set[int]] = []
    attempts = 0
    while len(family) < m:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not build a low-intersecting family with m={m}, "
                f"set_size={set_size}, ground_size={ground_size}, "
                f"max_intersection={max_intersection} within {max_attempts} samples"
            )
        candidate = set(rng.choice(ground_size, size=set_size, replace=False).tolist())
        if all(len(candidate & other) <= max_intersection for other in family):
            family.append(candidate)
    return family


def max_pairwise_intersection(family: list[set]) -> int:
    """Largest pairwise intersection size over all distinct pairs (0 for < 2 sets)."""
    best = 0
    for a, b in combinations(family, 2):
        best = max(best, len(a & b))
    return best
