"""Conflict-free job scheduling via beta-outdegree (arbdefective) colorings.

A cluster runs jobs that pairwise conflict (shared files, licenses, GPUs);
conflicting jobs must not run in the same slot.  A proper coloring of the
conflict graph is a schedule, but computing a tight (Delta+1)-slot schedule
takes Theta(Delta) coordination rounds.  Corollary 1.2(4) offers a middle
ground used by all modern sublinear coloring algorithms: a *beta-outdegree*
coloring with only O(Delta/beta) classes, computed in O(Delta/beta) rounds,
where inside a class every job conflicts with at most ``beta`` jobs it is
"responsible for" (its out-neighbors).  The classes are then refined into an
exact schedule class by class — each refinement only has to resolve the small
out-degree, not the full degree.

Run with::

    python examples/scheduling_outdegree.py

(This example deliberately stays on the expert-level ``repro.core`` API: the
refinement step consumes the *orientation object* of Theorem 1.1 (1), which is
richer than the tidy record surface of ``repro.api.solve``.  See
``examples/quickstart.py`` / ``frequency_assignment.py`` /
``ruling_set_clustering.py`` for the declarative front door.)
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.congest import generators
from repro.congest.ids import distinct_input_coloring
from repro.core.corollaries import outdegree_coloring
from repro.verify.coloring import assert_proper_coloring, color_classes
from repro.verify.orientation import orientation_outdegrees


def refine_class_into_schedule(graph, vertices, orientation, slot_of: dict[int, int]) -> None:
    """Refine one outdegree-class against the partial schedule built so far.

    Jobs of the class are processed in decreasing "responsibility" (outdegree)
    and placed in the first slot free of conflicts with already-scheduled
    neighbors — the centralized stand-in for the per-class list-coloring step
    of the sublinear schedulers.  Because slots are shared across classes the
    final schedule never needs more than ``Delta + 1`` slots.
    """
    out = orientation_outdegrees(graph, orientation)
    order = sorted((int(v) for v in vertices), key=lambda v: -int(out[v]))
    for v in order:
        taken = {slot_of[u] for u in graph.neighbors(v) if int(u) in slot_of}
        s = 0
        while s in taken:
            s += 1
        slot_of[v] = s


def main() -> None:
    graph = generators.power_law_cluster(500, 6, seed=11)
    delta = graph.max_degree
    print(f"workload: {graph.n} jobs, {graph.num_edges} conflicts, Delta = {delta}")

    beta = max(1, int(round(delta ** 0.5)))
    m = max(delta ** 4, graph.n)
    ids = distinct_input_coloring(graph, m, seed=11)

    coarse = outdegree_coloring(graph, ids, m, beta=beta)
    out = orientation_outdegrees(graph, coarse.orientation)
    print(
        f"coarse schedule: {coarse.num_colors} classes in {coarse.rounds} rounds "
        f"(beta = {beta}, max responsibility = {int(out.max())})"
    )

    # Refine the coarse classes one at a time into an exact shared schedule
    # (the class order is the "schedule" of Section 3.1 of the paper).
    slot_of: dict[int, int] = {}
    for _, vertices in sorted(color_classes(graph, coarse.colors).items()):
        refine_class_into_schedule(graph, vertices, coarse.orientation, slot_of)
    final_slot = np.array([slot_of[v] for v in range(graph.n)], dtype=np.int64)

    assert_proper_coloring(graph, final_slot)
    num_slots = len(set(final_slot.tolist()))
    busiest = int(np.bincount(final_slot).max())
    print(f"final schedule : {num_slots} conflict-free slots "
          f"(a sequential greedy schedule would use at most {delta + 1})")
    print(f"largest slot runs {busiest} jobs in parallel")


if __name__ == "__main__":
    main()
