"""Cluster-head election in a sensor network via (2, r)-ruling sets.

A sensor network wants a small set of cluster heads such that (a) no two heads
are adjacent (they would interfere) and (b) every sensor has a head within r
hops (bounded reporting latency).  That is exactly a (2, r)-ruling set.

The script compares Theorem 1.5's construction (coloring with few colors, then
the Lemma 3.2 ruling-set subroutine) against the classical SEW13-style baseline
(Lemma 3.2 on an O(Delta^2)-coloring) on a random geometric-ish network, for
r = 2 and r = 3.

Run with::

    python examples/ruling_set_clustering.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import Problem, Run, solve
from repro.congest import generators
from repro.verify.ruling import domination_radius


def main() -> None:
    from repro.congest.graph import Graph

    grid = generators.torus(20, 25)  # a 4-regular sensor grid with wraparound
    extra = generators.gnp(grid.n, 0.004, seed=3)  # a few long-range links
    network = Graph(grid.n, list(grid.edges()) + list(extra.edges()))
    delta = network.max_degree
    print(f"sensor network: {network.n} nodes, {network.num_edges} links, Delta = {delta}")

    # One declarative problem (the live network), two Run variants per r —
    # the registered "ruling_set" algorithm verifies independence and
    # domination on every run (and was already given the sensors' IDs via the
    # standing Delta^4 input-coloring convention, seeded below).
    problem = Problem(graph=network)

    for r in (2, 3):
        ours = solve(problem, Run(algorithm="ruling_set", params={"r": r},
                                  backend="array", seed=3))
        base = solve(problem, Run(algorithm="ruling_set",
                                  params={"r": r, "baseline": True},
                                  backend="array", seed=3))
        # the registered runner already verified independence and domination
        # of both sets (report.verified is the receipt); the domination radii
        # printed below are recomputed from the returned vertices.
        assert ours.verified and base.verified

        print(f"\n--- latency bound r = {r} ---")
        for name, res in (("Theorem 1.5", ours), ("SEW13 baseline", base)):
            radius = domination_radius(network, res.vertices)
            rec = res.record
            print(
                f"{name:>15}: {rec['set size']:4d} cluster heads, "
                f"worst report distance {radius}, "
                f"{rec['rounds']:4d} total rounds "
                f"({rec['ruling rounds only']} in the ruling-set phase)"
            )

    print(
        "\nFewer colors entering the Lemma 3.2 subroutine (Theorem 1.5) means a smaller "
        "digit base and fewer ruling-phase rounds for the same latency bound r."
    )


if __name__ == "__main__":
    main()
