"""Frequency assignment in a radio network: the O(k*Delta) colors vs O(Delta/k) rounds dial.

Base stations that are close to each other interfere and must transmit on
different frequencies — a graph coloring problem on the interference graph.
The number of colors is spectrum (expensive, fixed by the regulator), the
number of rounds is how long the network needs to (re)configure itself after
a change (expensive when stations reboot frequently).

Corollary 1.2(2) gives a single dial ``k`` between the two: ``O(k * Delta)``
frequencies after ``O(Delta / k)`` communication rounds.  This script sweeps
``k`` on a synthetic deployment and prints the achievable operating points.

Run with::

    python examples/frequency_assignment.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import Problem, Run, solve
from repro.congest.graph import Graph
from repro.verify.coloring import assert_proper_coloring


def interference_graph(num_stations: int, area: float, radius: float, seed: int) -> Graph:
    """Random geometric interference graph: stations closer than ``radius`` interfere."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, area, size=(num_stations, 2))
    edges = []
    for i in range(num_stations):
        diffs = points[i + 1:] - points[i]
        close = np.nonzero((diffs ** 2).sum(axis=1) <= radius ** 2)[0]
        for j in close:
            edges.append((i, i + 1 + int(j)))
    return Graph(num_stations, edges)


def main() -> None:
    graph = interference_graph(num_stations=400, area=10.0, radius=0.9, seed=7)
    delta = graph.max_degree
    print(f"deployment: {graph.n} stations, {graph.num_edges} interference pairs, Delta = {delta}")

    # The interference graph is a live (measured, not generated) Graph — the
    # declarative API takes it as-is; the stations' distinct input colors
    # (their "serial numbers") come from the standing Delta^4 convention.
    problem = Problem(graph=graph)

    print(f"{'k':>5} {'frequencies used':>18} {'frequency budget':>18} {'config rounds':>14}")
    k = 1
    while k <= 16 * max(delta, 1):
        plan = solve(problem, Run(algorithm="kdelta", params={"k": k},
                                  backend="array", seed=7))
        assert_proper_coloring(graph, plan.colors)
        rec = plan.record
        print(f"{k:>5} {rec['colors used']:>18} {rec['color space']:>18} {rec['rounds']:>14}")
        if plan.rounds <= 1:
            break
        k *= 2

    print(
        "\nsmall k: few frequencies but slow reconfiguration; large k: one-round "
        "reconfiguration at the price of a quadratic frequency budget (Linial's regime)."
    )


if __name__ == "__main__":
    main()
