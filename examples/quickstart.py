"""Quickstart: color a network with Delta + 1 colors in O(Delta) + log* n rounds.

Run with::

    python examples/quickstart.py

The script describes the problem declaratively (the unified solver API of
``repro.api``): a :class:`Problem` names the graph, a :class:`Run` names the
registered algorithm, and ``solve()`` returns a structured report — colors,
rounds, the paper's guarantee, and full provenance.  ``repro list-algorithms``
shows everything else that can go in ``Run(algorithm=...)``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import GraphSpec, Problem, Run, solve
from repro.verify.coloring import assert_proper_coloring


def main() -> None:
    problem = Problem(graph=GraphSpec("random_regular", n=500, delta=8, seed=42))
    report = solve(problem, Run(algorithm="delta_plus_one", backend="array"))

    record = report.record
    print(f"network: {record['n']} nodes, max degree {record['Delta']}")
    print(f"colors used           : {report.num_colors}  (budget Delta+1 = {record['Delta'] + 1})")
    print(f"total rounds          : {report.rounds}")
    print(f"  Linial (log* n)     : {record['linial rounds']}")
    print(f"  mother algorithm    : {record['mother rounds']}  (k = 1, O(Delta) colors)")
    print(f"  color-class removal : {record['reduce rounds']}")
    print(f"guarantee             : {report.guarantee}")

    # The report carries the actual coloring; double-check it ourselves.
    from repro.congest import generators

    graph = generators.random_regular(n=500, degree=8, seed=42)
    assert_proper_coloring(graph, report.colors, max_colors=graph.max_degree + 1)
    print("the coloring is proper and fits the Delta+1 budget — done.")

    # The same request round-trips through JSON — save it and replay it with
    # `python -m repro run --spec quickstart.json`:
    spec = report.provenance["spec"]
    print(f"replayable spec hash  : {report.provenance['spec_hash']} "
          f"(algorithm {spec['run']['algorithm']!r})")


if __name__ == "__main__":
    main()
