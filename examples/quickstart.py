"""Quickstart: color a network with Delta + 1 colors in O(Delta) + log* n rounds.

Run with::

    python examples/quickstart.py

The script builds a random 8-regular network, runs the full pipeline from the
paper (unique IDs -> Linial's O(Delta^2)-coloring -> the mother algorithm with
k = 1 -> color-class removal) and verifies the result.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.congest import generators
from repro.core import pipelines
from repro.verify.coloring import assert_proper_coloring


def main() -> None:
    graph = generators.random_regular(n=500, degree=8, seed=42)
    print(f"network: {graph.n} nodes, {graph.num_edges} links, max degree {graph.max_degree}")

    result = pipelines.delta_plus_one_coloring(graph, seed=42, backend="array")
    assert_proper_coloring(graph, result.colors, max_colors=graph.max_degree + 1)

    meta = result.metadata
    print(f"colors used           : {result.num_colors}  (budget Delta+1 = {graph.max_degree + 1})")
    print(f"total rounds          : {result.rounds}")
    print(f"  Linial (log* n)     : {meta['linial_rounds']}")
    print(f"  mother algorithm    : {meta['mother_rounds']}  (k = 1, O(Delta) colors)")
    print(f"  color-class removal : {meta['reduction_rounds']}")
    print("the coloring is proper and fits the Delta+1 budget — done.")


if __name__ == "__main__":
    main()
