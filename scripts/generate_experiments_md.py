"""Regenerate EXPERIMENTS.md from the tables recorded by the benchmark harness.

Usage::

    python -m pytest benchmarks/ --benchmark-only -q   # writes benchmarks/results/*.md
    python scripts/generate_experiments_md.py          # stitches EXPERIMENTS.md

The per-experiment commentary below states what the paper claims, what we
measure, and whether the shape holds; the numbers are pasted verbatim from
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

PREAMBLE = """\
# EXPERIMENTS — paper claims vs measured behaviour

The paper ("Distributed Graph Coloring Made Easy", Maus, SPAA 2021) is a theory
paper with no empirical tables or figures; its evaluation is the set of
theorems.  Every experiment below therefore reproduces one theorem / corollary
item: we run the algorithm on the round-synchronous CONGEST simulator, measure
rounds / colors / structural guarantees, and put the paper's bound next to the
measurement.  Tables are produced by `pytest benchmarks/ --benchmark-only`
(which writes `benchmarks/results/*.md`) and stitched together by
`python scripts/generate_experiments_md.py`; the small-instance versions of the
same tables are asserted in the test suite (`tests/test_analysis.py`).

Reading guide:

* **Hard invariants** (proper coloring, defect <= d, outdegree <= beta,
  partition degree <= d, ruling-set independence and domination) are checked by
  `repro.verify` on every run — a violation fails the test/benchmark, so every
  number below comes from a verified structure.
* **Round bounds** are worst-case bounds; on random input colorings the
  algorithm typically colors almost everyone in the first round or two, so the
  measured rounds are far below the bound.  The *shape* (rounds fall like
  Delta/k, defective/outdegree variants finish in one or O(Delta/d) rounds,
  etc.) is what the experiments confirm.
* One documented substitution: the Theorem 3.1 black box ([Bar16, BEG18]:
  O(Delta) colors in O(sqrt(Delta)) rounds) is replaced by the paper's own
  k = 1 algorithm (O(Delta) colors in O(Delta) rounds).  This affects measured
  rounds of E7/E8 (noted there) and nothing else.  See DESIGN.md.

### Multi-worker sweeps

Every experiment accepts a worker count and shards its grid sweeps across a
process pool; every table is *identical* to the serial run (deterministic cell
ordering, cross-process-deterministic generators — see "Parallel execution &
sinks" in ARCHITECTURE.md):

```
python -m repro experiment E6 --workers 4                 # CLI
run_experiment("E6", workers=4)                           # Python
python -m repro batch --task delta_plus_one \\
    --family random_regular gnp -n 300 --delta 8 16 --seeds 5 \\
    --workers 4 --parity-check --output sweep.jsonl       # raw grid sweep
```

`--output sweep.jsonl` streams each record to disk as it completes and
`--resume` restarts an interrupted sweep where it left off, skipping the
cells already recorded (the file's manifest is checked, so resuming a
different sweep into the file is rejected).  The data-dependent, cell-by-cell
parts of E2/E5/E8/E9/E10 stay serial by construction; the grid sweeps of
E1/E3/E6/E7 and all `repro batch` runs shard.  B2 below records the measured
serial-vs-parallel wall-clock.

### Fault-tolerant sweeps

Long sweeps survive infrastructure failures instead of discarding hours of
completed cells (see "Fault tolerance & degradation" in ARCHITECTURE.md):

```
python -m repro batch --task delta_plus_one \\
    --family random_regular gnp -n 300 --delta 8 16 --seeds 5 \\
    --workers 4 --retries 2 --cell-timeout 600 --on-error record \\
    --output sweep.jsonl
```

`--retries N` re-runs a failing cell up to N extra times (with deterministic,
seed-pinned backoff when configured); `--cell-timeout S` kills and retries a
worker stuck past the deadline; `--on-error record` writes a structured
CellError record (error kind, exception type, traceback digest, attempt
count) in the failed cell's grid slot and keeps sweeping — the CLI then
prints a failure summary and exits non-zero.  Worker crashes are always
re-dispatched once even without flags, a failing `jit` cell gets one attempt
on the bit-identical `array` backend before giving up (the downgrade is
recorded in the events journal), and `--resume` re-runs exactly the failed
cells.  The chaos suite (`tests/test_faults.py`, CI job `chaos-smoke`)
asserts sweeps interrupted by injected worker kills, hangs and sink failures
converge to records byte-identical to an uninterrupted run.

### Saved specs (`specs/`)

Every experiment's sweep is also saved as a declarative spec (the unified
solver API of `repro.api` — see "Unified solver API" in ARCHITECTURE.md):

```
python -m repro run --spec specs/E6.json --workers 2 --parity-check \
    --output e6.jsonl
```

replays the E6 workload and emits records byte-identical to the in-process
sweep; the sink manifest embeds the exact spec hash, so a results file pins
the document that produced it.  The files are regenerated by
`python scripts/generate_experiment_specs.py` from
`repro.analysis.experiments.experiment_specs()`; data-dependent axes (E2's
doubling `k` axis, E4/E5's degree-derived `beta`/`d`, E9's tight `(k, m)`
pairs) are frozen into the documents at generation time, and E5/E9 split into
one spec per algorithm variant / Delta (a spec names exactly one algorithm
over a pure cells x params grid).  `specs/INDEX.json` lists every spec with
its hash; the spec round-trips and the golden-record replay are asserted in
`tests/test_api_spec.py` / `tests/test_api_solve.py`.
"""

COMMENTARY = {
    "E1_linial_one_round": (
        "E1 — Corollary 1.2(1): Linial's color reduction",
        "Claim: a Delta^4-input coloring is reduced to at most 256*Delta^2 colors in one round.\n"
        "Measured: every row finishes in exactly 1 round and the output color space is well below\n"
        "256*Delta^2; the colors actually used are far fewer on random graphs (the bound is a\n"
        "worst-case guarantee over all graphs and input colorings).",
    ),
    "E2_rounds_vs_k": (
        "E2 — Corollary 1.2(2): O(k*Delta) colors in O(Delta/k) rounds",
        "Claim: batch size k trades rounds for colors, with at most 16*Delta*k colors in\n"
        "ceil(16*Delta/k) rounds.  Measured: rounds are monotonically non-increasing in k and reach 1\n"
        "round within a few doublings; the color budget grows linearly in k as predicted.  On random\n"
        "inputs conflicts are rare, so the measured rounds sit far below the worst-case bound.",
    ),
    "E3_delta_squared": (
        "E3 — Corollary 1.2(3): Delta^2 colors in O(1) rounds",
        "Claim: with k = ceil(Delta/16) the algorithm needs only O(1) rounds (at most 256 by the\n"
        "proof's constants).  Measured: 2-3 rounds across Delta = 8..32.  (For Delta < 16 the\n"
        "corollary's Delta^2 color constant is not meaningful because k = 1; the color space is then\n"
        "bounded by 16*Delta instead.)",
    ),
    "E4_outdegree": (
        "E4 — Corollary 1.2(4): beta-outdegree colorings",
        "Claim: k = 1, d = beta yields an O(Delta/beta)-coloring whose monochromatic edges can be\n"
        "oriented with outdegree at most beta, in O(Delta/beta) rounds.  Measured: the orientation\n"
        "outdegree never exceeds beta (hard invariant, checked on every run), colors and rounds are\n"
        "within the X = 4*f*Delta/(beta+1) bound.",
    ),
    "E5_defective": (
        "E5 — Corollary 1.2(5)/(6): d-defective colorings",
        "Claim: defect parameter d gives an O((Delta/d)^2)-coloring, in one round (variant 5, one\n"
        "batch) or O(Delta/d) rounds (variant 6, k = 1, color = (color, part) pair).  Measured: the\n"
        "maximum defect never exceeds d (hard invariant); variant 5 always takes exactly 1 round.",
    ),
    "E6_delta_plus_one": (
        "E6 — the (Delta+1)-coloring pipeline (Section 3.1)",
        "Claim: unique IDs -> Linial -> k=1 mother algorithm -> color-class removal gives a proper\n"
        "(Delta+1)-coloring in O(Delta) + log* n rounds.  Measured: colors used <= Delta+1 always;\n"
        "total rounds are dominated by the two O(Delta) stages and grow only mildly with n (through\n"
        "log* n and through how many of the O(Delta) color values actually occur).",
    ),
    "E7_theorem13": (
        "E7 — Theorem 1.3: O(Delta^{1+eps}) colors",
        "Claim: O(Delta^{1+eps}) colors in O(Delta^{1/2-eps/2}) + log* n rounds.  Our build follows\n"
        "the proof exactly (d-defective coloring, then per-class coloring with disjoint color\n"
        "spaces) but substitutes the Theorem 3.1 black box with the k = 1 algorithm, so the\n"
        "measured rounds follow the substituted bound O(Delta^eps + Delta^{1-eps}) rather than the\n"
        "paper's; the color count follows the paper's bound (with the implementation's constants).",
    ),
    "E8_ruling_sets": (
        "E8 — Theorem 1.5: (2, r)-ruling sets",
        "Claim: O(Delta^{2/(r+2)}) + log* n rounds, improving on the O(Delta^{2/r}) of [SEW13].\n"
        "Measured: the Lemma 3.2 ruling-phase rounds are always smaller for Theorem 1.5's coloring\n"
        "than for the Delta^2 baseline (the mechanism of the improvement), and the end-to-end round\n"
        "counts also come out ahead on these instances; the asymptotic end-to-end advantage depends\n"
        "on the substituted Theorem 3.1 component (see E7).  Independence and r-domination of every\n"
        "returned set are verified.",
    ),
    "E9_one_round": (
        "E9 — Theorem 1.6: one-round color reduction",
        "Claim: with m = k(Delta-k+3) input colors exactly k colors can be removed in one round\n"
        "(Lemma 4.1), and with one fewer input color no one-round algorithm can achieve m-k-1\n"
        "output colors (Lemma 4.3).  Measured: the Lemma 4.1 algorithm always outputs a proper\n"
        "coloring with exactly m-k colors in 1 round; the impossibility side is verified exhaustively\n"
        "for Delta = 2, 3, 4 by the conflict-graph checker in the test suite\n"
        "(tests/test_core_one_round.py::TestLemma43Impossibility).",
    ),
    "B1_batch_backends": (
        "B1 — engine layer: array backend vs the reference scheduler",
        "Not a paper claim but an implementation guarantee: the vectorized array backend of the\n"
        "execution-engine layer (see ARCHITECTURE.md) produces identical rounds and colors per cell\n"
        "while running the 20-cell BatchRunner sweep several times faster than the per-node\n"
        "reference simulator.  The parity is asserted inside the benchmark and property-tested in\n"
        "tests/test_engine_parity.py.",
    ),
    "B3_kernels": (
        "B3 — frontier-compacted kernels: pre-compaction vs compacted array backend",
        "An implementation guarantee (see ARCHITECTURE.md, \"Kernel compaction\"): the array\n"
        "kernels gather only the CSR entries incident to still-active vertices, count conflicts\n"
        "with a single 2-D scatter-add over the compacted edges, evaluate polynomial sequences\n"
        "lazily, and bucket removal classes with one argsort — so every hot round costs\n"
        "O(active degree) instead of O(|E|).  The benchmark keeps the pre-compaction kernels\n"
        "verbatim and asserts bit-identical colors and round counts per cell; the machine-readable\n"
        "record (cells/sec, speedup, cores) lands in benchmarks/results/BENCH_B3.json.",
    ),
    "B4_scale": (
        "B4 — million-vertex scale: array-native construction and the shared graph plane",
        "An implementation guarantee (see ARCHITECTURE.md, \"Shared-memory graph plane &\n"
        "workspaces\"): every generator emits an (m, 2) edge array consumed by the vectorized\n"
        "CSR constructor (integer-key sorts; no Python edge loop), so n = 10^6 graphs build in\n"
        "fractions of a second — the benchmark keeps the pre-change tuple-list path verbatim and\n"
        "asserts a >= 5x speedup with bit-identical CSR arrays.  Parallel sweeps publish each\n"
        "graph once through multiprocessing.shared_memory; workers attach zero-copy read-only\n"
        "views, so records stay byte-identical to the serial run while per-worker graph memory\n"
        "is eliminated (asserted via segment sharing, plus a no-leak check on /dev/shm).  The\n"
        "machine-readable record lands in benchmarks/results/BENCH_B4.json.",
    ),
    "B5_jit": (
        "B5 — compiled jit backend: array vs numba/C kernels",
        "An implementation guarantee (see ARCHITECTURE.md, \"JIT backend\"): backend=\"jit\"\n"
        "compiles the three engine primitives into fused per-vertex loops over the raw CSR\n"
        "triplet — numba @njit(parallel=True) when numba is installed, an OpenMP C extension\n"
        "otherwise — and never materialises the (active_edges x trials) intermediates.  The\n"
        "benchmark asserts bit-identical colors and round counts per kernel and per cell, a\n"
        ">= 3x end-to-end speedup over the array backend on the B3 sweep (warm, compile time\n"
        "excluded and reported separately), and records the proportional drop on B4's n = 10^6\n"
        "per-cell wall-clock.  With no compiled tier the engine degrades to the array path with\n"
        "a single warning and the benchmark records fallback: true instead of asserting the\n"
        "bar.  The machine-readable record lands in benchmarks/results/BENCH_B5.json.",
    ),
    "B6_serve": (
        "B6 — job server: concurrent clients over HTTP",
        "The service layer (see ARCHITECTURE.md, \"Job server\"): repro serve accepts JobSpec\n"
        "JSON over POST /jobs, validates it against the registry, executes on a bounded worker\n"
        "pool through the same run_spec machinery as the CLI, and content-addresses every job by\n"
        "its canonical spec hash — a resubmission of a finished spec is a cache hit answered\n"
        "from the store without re-execution (attempts unchanged).  The benchmark drives an\n"
        "in-process server with concurrent clients and records submit->done latency (p50/p99),\n"
        "sustained jobs/sec, and cache-hit latency against deliberately conservative single-core\n"
        "bars (p99 < 30 s, > 0.2 jobs/s, cache hit < 2 s).  The machine-readable record lands in\n"
        "benchmarks/results/BENCH_B6.json; CI's serve-smoke job re-checks the bars from it.",
    ),
    "B2_parallel": (
        "B2 — parallel sharding: serial vs a 4-worker process pool",
        "Also an implementation guarantee: sharding a parity-checked 24-cell sweep across 4 worker\n"
        "processes yields records identical to the serial sweep modulo the wall-clock field\n"
        "(asserted in the benchmark and in tests/test_golden_records.py) and beats the serial\n"
        "wall-clock whenever more than one CPU core is available.  On a single-core recording\n"
        "environment the table demonstrates bounded sharding overhead rather than the multi-core\n"
        "speedup; CI re-runs the sweep on multi-core runners.",
    ),
    "B7_fleet": (
        "B7 — fleet-scale sweeps: deterministic shards + merge",
        "The fleet plane (see ARCHITECTURE.md, \"Fleet-scale sweeps\"): repro batch --shard i/k\n"
        "partitions the cell grid by a stable hash of cell identity — worker count, machine, and\n"
        "launch order never move a cell between shards — and repro merge validates the k shard\n"
        "files (same spec/grid hash, disjoint and complete coverage) before joining them into a\n"
        "file byte-identical to the unsharded run modulo the wall-clock field (asserted).  The\n"
        "benchmark runs the shards back-to-back on one box, so the honest bar is bounded overhead\n"
        "(<= 2.5x including the merge) rather than a speedup; a real fleet runs shards\n"
        "concurrently on separate machines.  The machine-readable record lands in\n"
        "benchmarks/results/BENCH_B7.json; CI's fleet-smoke job re-checks the bars from it.",
    ),
    "B7_serve": (
        "B7 — job server execution planes: thread vs process",
        "repro serve --execution process dispatches each job's cells through the crash-containing\n"
        "process pool of the engine layer (per-job worker budget = cores split across job slots,\n"
        "floored at 2) while keeping the durable-sink, progress, and SSE semantics of the thread\n"
        "plane; --execution auto picks process on multi-core machines and /healthz reports the\n"
        "resolved mode.  The benchmark measures jobs/sec over multi-cell jobs on both planes:\n"
        "on one core only conservative absolute bars apply (the pool is pure overhead), on\n"
        "multi-core machines the process plane must not lose to the thread plane.",
    ),
    "B8_corpus": (
        "B8 — corpus ingestion: cold parse vs warm content-addressed cache",
        "The corpus plane (see ARCHITECTURE.md, \"Corpus & ingestion\"): repro corpus sweeps the\n"
        "default-runnable algorithm zoo over real edge-list graphs, re-verifying every output\n"
        "with repro.verify.  Ingestion caches each file's CSR arrays in an uncompressed .npz\n"
        "keyed by the SHA-256 of the file's bytes, so a warm ingest memory-maps the arrays and\n"
        "never re-parses the text — the benchmark asserts the warm path is >= 10x faster than\n"
        "the cold parse on a ~200k-row SNAP-style export (comments, 1-based ids, both-direction\n"
        "duplicates).  The second measurement sweeps the whole vendored corpus/ through a\n"
        "two-algorithm zoo with verification on, in cells/sec.  The machine-readable record\n"
        "lands in benchmarks/results/BENCH_B8.json; CI's corpus-smoke job re-runs the vendored\n"
        "sweep and checks the summary against the committed golden.",
    ),
    "E10_baselines": (
        "E10 — baselines",
        "The mother algorithm at k = 1 matches the locally-iterative (BEG18) regime; adding\n"
        "color-class removal gives Delta+1 colors in O(Delta) total rounds, against\n"
        "O(Delta log Delta) for the classical Kuhn-Wattenhofer halving from Delta^2 colors, O(log n)\n"
        "rounds for the randomized Luby-style baseline (not deterministic), and n rounds for the\n"
        "sequential greedy.  Who-wins matches the paper's narrative: the simple deterministic\n"
        "trade-off subsumes the older deterministic baselines.",
    ),
}

ORDER = [
    "E1_linial_one_round", "E2_rounds_vs_k", "E3_delta_squared", "E4_outdegree",
    "E5_defective", "E6_delta_plus_one", "E7_theorem13", "E8_ruling_sets",
    "E9_one_round", "E10_baselines", "B1_batch_backends", "B2_parallel",
    "B3_kernels", "B4_scale", "B5_jit", "B6_serve", "B7_fleet", "B7_serve",
    "B8_corpus",
]


def main() -> None:
    if not RESULTS.exists():
        sys.exit("benchmarks/results/ not found — run `pytest benchmarks/ --benchmark-only` first")
    parts = [PREAMBLE]
    for name in ORDER:
        path = RESULTS / f"{name}.md"
        title, commentary = COMMENTARY[name]
        parts.append(f"\n## {title}\n")
        parts.append(commentary + "\n")
        if path.exists():
            table = path.read_text(encoding="utf-8")
            # drop the table's own "### ..." heading, the section heading above replaces it
            lines = [ln for ln in table.splitlines() if not ln.startswith("### ")]
            parts.append("\n".join(lines).strip() + "\n")
        else:
            parts.append(f"_missing: {path.name} (benchmark not run)_\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
