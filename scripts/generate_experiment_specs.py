#!/usr/bin/env python
"""Regenerate ``specs/`` — the experiment suite E1-E10 as saved declarative specs.

Usage::

    PYTHONPATH=src python scripts/generate_experiment_specs.py

Each file is a ``repro run --spec``-able JSON document produced by
:func:`repro.analysis.experiments.experiment_specs` (see its docstring for how
data-dependent axes are frozen).  Replaying one yields exactly the records the
corresponding experiment sweeps::

    python -m repro run --spec specs/E6.json --workers 2 --parity-check

The files are committed, so ``specs/`` doubles as living documentation of the
experiment workloads; CI replays one on every push and checks that the sink
manifest embeds the exact spec hash.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.experiments import experiment_specs  # noqa: E402
from repro.api.spec import spec_hash  # noqa: E402


def main() -> None:
    out_dir = ROOT / "specs"
    out_dir.mkdir(exist_ok=True)
    index = {}
    for name, job in experiment_specs().items():
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(job.to_dict(), indent=2, sort_keys=False) + "\n",
                        encoding="utf-8")
        index[name] = {"file": path.name, "algorithm": job.run.algorithm,
                       "cells": len(job.cells()) * len(job.effective_grid() or [{}]),
                       "spec_hash": spec_hash(job)}
        print(f"wrote {path} (hash {index[name]['spec_hash']})")
    (out_dir / "INDEX.json").write_text(json.dumps(index, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_dir / 'INDEX.json'} ({len(index)} specs)")


if __name__ == "__main__":
    main()
