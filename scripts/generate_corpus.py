#!/usr/bin/env python
"""Generate the vendored corpus under ``corpus/`` — deterministically.

The repository cannot vendor third-party graph datasets (license/size), so the
corpus ships *synthetic samples with real-graph topology*, each produced here
from a fixed seed and written in a different real-world edge-list dialect so
the ingestion path is exercised end to end:

====================  =========================================  ======================
graph                 topology model                             file dialect
====================  =========================================  ======================
``road-sample``       2d lattice with dropped segments and a     0-indexed, ``#``
                      few shortcut diagonals (road network)      comments, spaces
``social-sample``     preferential attachment (Barabasi-Albert   gzipped, 1-indexed,
                      style heavy-tail social graph), written    tab-separated, both
                      SNAP-style                                 edge directions listed
``collab-sample``     overlapping author cliques (one clique     ``.csv`` with a
                      per "paper", Zipf-ish author popularity)   ``source,target`` header
``web-sample``        Zipf in-degree link graph (hub pages)      1-indexed, ``%``
                                                                 comments, spaces
``mesh-sample``       triangulated 2d grid (planar mesh)         plain 0-indexed
====================  =========================================  ======================

Re-running the script reproduces every file byte for byte and rewrites
``corpus/MANIFEST.json`` with each file's measured n / m / Delta and SHA-256,
which is exactly what ``repro.corpus.vendor.load_manifest(verify=True)``
checks — the manifest is the corpus' integrity statement, and this script is
its single source of truth.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import pathlib
import sys

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.corpus.ingest import build_graph, parse_edge_list  # noqa: E402

LICENSE = "MIT (generated file, this repository's license)"


def _dedupe(edges) -> list[tuple[int, int]]:
    seen = sorted({(min(u, v), max(u, v)) for u, v in edges if u != v})
    return seen


def road_sample(rng: np.random.Generator, k: int = 45):
    """k x k street grid; ~7% of segments closed, a few diagonal shortcuts."""
    def node(r, c):
        return r * k + c

    edges = []
    for r in range(k):
        for c in range(k):
            if c + 1 < k:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < k:
                edges.append((node(r, c), node(r + 1, c)))
    edges = np.array(edges, dtype=np.int64)
    keep = rng.random(len(edges)) >= 0.07
    kept = [tuple(e) for e in edges[keep].tolist()]
    for _ in range(k):  # shortcut diagonals
        r = int(rng.integers(0, k - 1))
        c = int(rng.integers(0, k - 1))
        kept.append((node(r, c), node(r + 1, c + 1)))
    return _dedupe(kept)


def social_sample(rng: np.random.Generator, n: int = 1500, m: int = 3):
    """Preferential attachment: each new vertex attaches to m degree-biased targets."""
    edges = []
    stubs = [0, 1, 1, 0]  # seed: an edge 0-1, each endpoint twice
    edges.append((0, 1))
    for v in range(2, n):
        targets = set()
        while len(targets) < min(m, v):
            pick = stubs[int(rng.integers(0, len(stubs)))]
            targets.add(pick)
        for t in targets:
            edges.append((v, t))
            stubs.extend((v, t))
    return _dedupe(edges)


def collab_sample(rng: np.random.Generator, authors: int = 1200, papers: int = 420):
    """One clique per paper; author participation is Zipf-distributed."""
    weights = 1.0 / np.arange(1, authors + 1)
    weights /= weights.sum()
    edges = []
    for _ in range(papers):
        size = int(rng.integers(2, 7))
        team = rng.choice(authors, size=size, replace=False, p=weights)
        for i in range(size):
            for j in range(i + 1, size):
                edges.append((int(team[i]), int(team[j])))
    return _dedupe(edges)


def web_sample(rng: np.random.Generator, n: int = 1800):
    """Each page links to a few targets whose popularity is Zipf (hub pages)."""
    weights = 1.0 / np.arange(1, n + 1) ** 1.1
    weights /= weights.sum()
    edges = []
    for page in range(n):
        fanout = 1 + int(rng.poisson(1.6))
        targets = rng.choice(n, size=fanout, replace=False, p=weights)
        for t in targets:
            if int(t) != page:
                edges.append((page, int(t)))
    return _dedupe(edges)


def mesh_sample(rng: np.random.Generator, k: int = 32):
    """Triangulated k x k grid: lattice edges plus one diagonal per cell."""
    def node(r, c):
        return r * k + c

    edges = []
    for r in range(k):
        for c in range(k):
            if c + 1 < k:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < k:
                edges.append((node(r, c), node(r + 1, c)))
            if c + 1 < k and r + 1 < k:
                if rng.random() < 0.5:
                    edges.append((node(r, c), node(r + 1, c + 1)))
                else:
                    edges.append((node(r, c + 1), node(r + 1, c)))
    return _dedupe(edges)


def write_road(path, edges):
    lines = ["# road-sample: synthetic street grid (see scripts/generate_corpus.py)",
             "# 0-indexed, space separated"]
    lines += [f"{u} {v}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def write_social(path, edges):
    # SNAP dialect: gzipped, tab separated, 1-indexed, both directions listed
    lines = ["# Directed graph (each unordered pair of nodes is saved once)",
             "# social-sample: synthetic preferential-attachment graph",
             "# FromNodeId\tToNodeId"]
    both = sorted([(u + 1, v + 1) for u, v in edges] + [(v + 1, u + 1) for u, v in edges])
    lines += [f"{u}\t{v}" for u, v in both]
    with gzip.GzipFile(filename="", mode="wb", fileobj=path.open("wb"), mtime=0) as fh:
        fh.write(("\n".join(lines) + "\n").encode("utf-8"))


def write_collab(path, edges):
    lines = ["source,target"]
    lines += [f"{u},{v}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def write_web(path, edges):
    lines = ["% web-sample: synthetic Zipf link graph, 1-indexed"]
    lines += [f"{u + 1} {v + 1}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def write_mesh(path, edges):
    lines = [f"{u} {v}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


GRAPHS = [
    # (name, file, kind, builder, writer, seed, description)
    ("road-sample", "road-sample.txt", "road", road_sample, write_road, 101,
     "45x45 street grid with ~7% closed segments and shortcut diagonals"),
    ("social-sample", "social-sample.txt.gz", "social", social_sample, write_social, 202,
     "preferential-attachment graph (m=3), SNAP dialect: gzip, tabs, 1-indexed, both directions"),
    ("collab-sample", "collab-sample.csv", "collaboration", collab_sample, write_collab, 303,
     "overlapping author cliques, one per paper, Zipf author popularity; csv with header"),
    ("web-sample", "web-sample.txt", "web", web_sample, write_web, 404,
     "Zipf in-degree link graph with hub pages; %-comments, 1-indexed"),
    ("mesh-sample", "mesh-sample.txt", "mesh", mesh_sample, write_mesh, 505,
     "triangulated 32x32 planar mesh"),
]


def main() -> None:
    corpus_dir = ROOT / "corpus"
    corpus_dir.mkdir(exist_ok=True)
    manifest = {"generator": "scripts/generate_corpus.py", "graphs": []}
    for name, filename, kind, builder, writer, seed, description in GRAPHS:
        rng = np.random.default_rng(seed)
        edges = builder(rng)
        path = corpus_dir / filename
        writer(path, edges)
        # measure through the real ingestion path: the manifest must record
        # the shape repro.corpus will actually load (relabelled, deduped)
        graph, _meta = build_graph(parse_edge_list(path))
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        manifest["graphs"].append({
            "name": name,
            "file": filename,
            "kind": kind,
            "source": f"synthetic sample generated by scripts/generate_corpus.py "
                      f"(seed {seed}), modeled on {kind} topology",
            "license": LICENSE,
            "n": graph.n,
            "m": int(np.asarray(graph.degrees).sum()) // 2,
            "delta": int(graph.max_degree),
            "sha256": digest,
            "description": description,
        })
        size = path.stat().st_size
        print(f"{name:15s} n={graph.n:5d} m={manifest['graphs'][-1]['m']:6d} "
              f"Delta={graph.max_degree:3d} {size / 1024:7.1f} KiB -> {filename}")
    (corpus_dir / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {corpus_dir / 'MANIFEST.json'} ({len(manifest['graphs'])} graphs)")


if __name__ == "__main__":
    main()
