#!/usr/bin/env python
"""Regenerate the corpus golden snapshots under ``tests/golden/``.

Two artifacts, both deterministic by construction:

``corpus_records.json``
    The tidy records of the full default zoo over **one** corpus graph
    (``mesh-sample``), volatile fields stripped and the machine-specific
    ``path`` reduced to its basename.  ``tests/test_corpus_sweep.py`` asserts
    the array *and* jit backends still produce exactly these records.

``corpus_summary.json``
    The ``repro corpus`` summary document for the two-graph smoke subset
    (``road-sample`` + ``mesh-sample``) the CI corpus-smoke job re-runs with
    ``--workers 2`` and compares byte for byte.

Regenerate only when an algorithm change is *supposed* to alter results (or
the corpus itself was regenerated), and say so in the commit message:

    PYTHONPATH=src python scripts/generate_corpus_golden.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import corpus  # noqa: E402

#: Record fields excluded from the snapshot (run-dependent by design).
VOLATILE_FIELDS = ("seconds", "backend")

GOLDEN_GRAPH = "mesh-sample"
SMOKE_GRAPHS = ("road-sample", "mesh-sample")


def _portable(record: dict) -> dict:
    out = {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
    if "path" in out:
        out["path"] = pathlib.Path(out["path"]).name
    return out


def main() -> None:
    entries = corpus.load_manifest(ROOT / "corpus", verify=True)
    golden_dir = ROOT / "tests" / "golden"
    golden_dir.mkdir(parents=True, exist_ok=True)

    one = [e for e in entries if e.name == GOLDEN_GRAPH]
    pairs = corpus.corpus_specs(one)
    result = corpus.run_corpus_sweep([spec for _, spec in pairs])
    payload = {
        "graph": GOLDEN_GRAPH,
        "volatile_fields": list(VOLATILE_FIELDS),
        "records": [_portable(rec) for rec in result.records],
    }
    records_path = golden_dir / "corpus_records.json"
    records_path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {records_path} ({len(payload['records'])} records)")

    smoke = [e for e in entries if e.name in SMOKE_GRAPHS]
    pairs = corpus.corpus_specs(smoke)
    result = corpus.run_corpus_sweep([spec for _, spec in pairs])
    summary = corpus.summarize(smoke, result)
    summary_path = golden_dir / "corpus_summary.json"
    corpus.write_summary(summary, golden_dir)
    (golden_dir / "corpus_summary.md").unlink()  # only the JSON is golden
    print(f"wrote {summary_path} ({len(summary['cells'])} cells, "
          f"{len(summary['graphs'])} graphs)")


if __name__ == "__main__":
    main()
