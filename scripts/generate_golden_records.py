#!/usr/bin/env python
"""Regenerate ``tests/golden/batch_records.json`` — the golden record snapshot.

The golden file freezes the *tidy record schema and values* of a small
(graph x seed) grid for every named BatchRunner task, as produced by the
serial array backend.  ``tests/test_golden_records.py`` asserts that

* the serial array backend,
* the serial reference backend, and
* the parallel array backend (``workers=2``)

all still produce exactly these records (modulo the wall-clock ``seconds``
and the ``backend`` name).  Regenerate only when an algorithm change is
*supposed* to alter results, and say so in the commit message:

    PYTHONPATH=src python scripts/generate_golden_records.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api.registry import algorithm_names  # noqa: E402
from repro.engine.batch import BatchRunner  # noqa: E402

#: The grid: one random-regular and one G(n, p) cell, both tiny but nontrivial.
CELLS = [("random_regular", 40, 4, 0), ("gnp", 40, 4, 1)]

#: Params per named task (tasks not listed run with their defaults).
TASK_PARAMS: dict[str, dict] = {
    "linial_reduction": {},
    "kdelta": {"k": 2},
    "delta_squared": {},
    "outdegree": {"beta": 1},
    "defective_one_round": {"d": 1},
    "defective": {"d": 1},
    "linial": {},
    "delta_plus_one": {},
    "theorem13": {"epsilon": 0.5},
    "corollary14": {"k": 2},
    "ruling_set": {"r": 2},
    # Theorem 1.6 needs the tight (k, m) pair for the cells' Delta = 4.
    "one_round_tightness": {"k": 3, "m": 12},
    "baseline": {"algorithm": "mother", "k": 2},
}

#: Record fields excluded from the snapshot (run-dependent by design).
VOLATILE_FIELDS = ("seconds", "backend")


def snapshot_records() -> dict[str, list[dict]]:
    from repro.engine import GraphSpec

    missing = set(algorithm_names()) - set(TASK_PARAMS)
    if missing:
        raise SystemExit(
            f"registered algorithm(s) {sorted(missing)} have no TASK_PARAMS entry; "
            "add one so the golden suite covers them"
        )
    runner = BatchRunner(backend="array")
    cells = [GraphSpec(*cell) for cell in CELLS]
    golden: dict[str, list[dict]] = {}
    for task, params in TASK_PARAMS.items():
        result = runner.run(task, cells, params_grid=[params] if params else None)
        golden[task] = [
            {k: v for k, v in rec.items() if k not in VOLATILE_FIELDS} for rec in result
        ]
    return golden


def main() -> None:
    payload = {
        "cells": [list(cell) for cell in CELLS],
        "task_params": TASK_PARAMS,
        "volatile_fields": list(VOLATILE_FIELDS),
        "records": snapshot_records(),
    }
    out = ROOT / "tests" / "golden" / "batch_records.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    total = sum(len(v) for v in payload["records"].values())
    print(f"wrote {out} ({len(payload['records'])} tasks, {total} records)")


if __name__ == "__main__":
    main()
