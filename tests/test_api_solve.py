"""Tests for solve()/run_spec(): one front door, byte-identical to the engine layer."""

import json
import pathlib

import numpy as np
import pytest

from repro.api import GraphSpec, Problem, Run, solve
from repro.api.registry import get_algorithm
from repro.api.solve import run_spec
from repro.api.spec import JobSpec, SpecError, spec_hash
from repro.congest import generators
from repro.engine import BatchRunner
from repro.engine.sink import JsonlSink

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "batch_records.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
CELLS = [GraphSpec(*cell) for cell in GOLDEN["cells"]]
VOLATILE = set(GOLDEN["volatile_fields"])


def strip(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


class TestSolve:
    @pytest.mark.parametrize("algorithm", sorted(GOLDEN["task_params"]))
    def test_solve_matches_batch_runner_record(self, algorithm):
        params = GOLDEN["task_params"][algorithm]
        cell = CELLS[0]
        report = solve(Problem(graph=cell), Run(algorithm=algorithm, params=params))
        expected = BatchRunner(backend="array").run_cell(algorithm, cell, params=params)
        assert strip(report.record) == strip(expected)

    @pytest.mark.parametrize("algorithm", sorted(GOLDEN["task_params"]))
    def test_solve_matches_golden(self, algorithm):
        params = GOLDEN["task_params"][algorithm]
        report = solve(Problem(graph=CELLS[0]), Run(algorithm=algorithm, params=params))
        assert strip(report.record) == GOLDEN["records"][algorithm][0]

    def test_report_structure(self):
        report = solve(Problem(graph=CELLS[0]), Run(algorithm="delta_plus_one"))
        spec = get_algorithm("delta_plus_one")
        assert report.guarantee == spec.guarantee
        assert report.verified is True
        assert report.colors is not None and report.colors.shape == (40,)
        assert report.num_colors == report.record["colors used"]
        assert report.rounds == report.record["rounds"]
        assert report.seconds >= 0.0
        assert report.provenance["engine"] == "array"
        assert report.provenance["backend_tier"] == "array"  # which tier ran
        assert report.provenance["spec_hash"] == spec_hash(
            JobSpec.single(Problem(graph=CELLS[0]), Run(algorithm="delta_plus_one"))
        )
        payload = json.dumps(report.to_dict())  # JSON-safe without arrays
        assert "delta_plus_one" in payload

    def test_ruling_set_report_carries_vertices(self):
        report = solve(Problem(graph=CELLS[0]), Run(algorithm="ruling_set", params={"r": 2}))
        assert report.output == "ruling set"
        assert report.vertices is not None and report.vertices.ndim == 1
        assert report.colors is None

    def test_live_graph_problem(self):
        graph = generators.by_name("random_regular", 40, 4, seed=0)
        report = solve(Problem(graph=graph), Run(algorithm="kdelta", params={"k": 2}))
        # identical algorithmic record as the generated cell with the same seed
        assert strip(report.record) == {
            **GOLDEN["records"]["kdelta"][0], "family": "<adhoc>",
        }
        assert "spec_hash" not in report.provenance  # not serializable -> no spec

    def test_seed_override(self):
        base = solve(Problem(graph=GraphSpec("gnp", 40, 4, 1)),
                     Run(algorithm="linial_reduction"))
        overridden = solve(Problem(graph=GraphSpec("gnp", 40, 4, 0)),
                           Run(algorithm="linial_reduction", seed=1))
        assert strip(base.record) == strip(overridden.record)

    def test_parity_check_runs(self):
        report = solve(Problem(graph=CELLS[0]),
                       Run(algorithm="linial_reduction", parity_check=True))
        assert report.parity_checked is True

    def test_reference_backend(self):
        report = solve(Problem(graph=CELLS[0]),
                       Run(algorithm="kdelta", params={"k": 2}, backend="reference"))
        assert report.backend == "reference"
        assert strip(report.record) == GOLDEN["records"]["kdelta"][0]

    def test_unknown_algorithm_and_params_rejected(self):
        from repro.api.registry import UnknownAlgorithmError, UnknownParameterError

        with pytest.raises(UnknownAlgorithmError):
            solve(Problem(graph=CELLS[0]), Run(algorithm="nope"))
        with pytest.raises(UnknownParameterError):
            solve(Problem(graph=CELLS[0]), Run(algorithm="kdelta", params={"q": 1}))


class TestRunSpecReplay:
    @pytest.mark.parametrize("backend", ["array", "reference"])
    def test_saved_spec_replays_golden_records_byte_identically(self, backend):
        # the acceptance bar: every golden task, replayed from a JSON spec,
        # byte-identical records on both backends.
        for algorithm, params in GOLDEN["task_params"].items():
            job = JobSpec.from_json(json.dumps({
                "schema": 1,
                "problems": [
                    {"graph": {"family": f, "n": n, "delta": d, "seed": s}}
                    for f, n, d, s in GOLDEN["cells"]
                ],
                "run": {"algorithm": algorithm, "params": params, "backend": backend},
            }))
            result, digest = run_spec(job)
            assert [strip(rec) for rec in result] == GOLDEN["records"][algorithm], \
                (algorithm, backend)
            assert digest == spec_hash(job)

    def test_workers_override_produces_identical_records(self):
        job = JobSpec(
            run=Run(algorithm="kdelta", params={"k": 2}),
            problems=tuple(Problem(graph=c) for c in CELLS),
        )
        serial, h1 = run_spec(job)
        parallel, h2 = run_spec(job, workers=2)
        assert h1 == h2  # execution overrides never change the spec hash
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]

    def test_sink_manifest_embeds_spec_hash(self, tmp_path):
        job = JobSpec.single(Problem(graph=CELLS[0]), Run(algorithm="kdelta", params={"k": 1}))
        sink = JsonlSink(tmp_path / "out.jsonl")
        with sink:
            _, digest = run_spec(job, sink=sink)
        manifest = json.loads((tmp_path / "out.jsonl").read_text().splitlines()[0])["manifest"]
        assert manifest["spec_hash"] == digest == spec_hash(job)

    def test_rejects_non_spec_input(self):
        with pytest.raises(SpecError):
            run_spec(["not", "a", "spec"])

    def test_experiment_spec_replay_matches_direct_sweep(self):
        from repro.analysis.experiments import experiment_specs

        job = experiment_specs()["E1"]
        replayed, _ = run_spec(job)
        direct = BatchRunner(backend="array").run("linial_reduction", job.cells())
        assert [strip(r) for r in replayed] == [strip(r) for r in direct]
