"""CLI tests for fleet-scale sweeps: --shard, `repro merge`, --fleet.

The fleet coordinator itself is exercised both through real shard
subprocesses (`repro batch --fleet 2`) and — for the retry path — through
`run_fleet` driving scripted subprocesses that fail on their first launch.
"""

import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.engine.fleet import ShardOutcome, run_fleet
from repro.engine.retry import RetryPolicy

BATCH = ["batch", "--task", "kdelta", "--family", "random_regular",
         "-n", "30", "40", "--delta", "4", "--seeds", "2", "--param", "k=1"]


def normalized(path):
    out = []
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        if "record" in obj:
            obj["record"].pop("seconds", None)
        out.append(obj)
    return out


class TestShardFlag:
    def test_bad_shard_syntax_exits(self, tmp_path):
        for bad in ("2", "a/b", "2/2", "-1/2"):
            with pytest.raises(SystemExit):
                main(BATCH + ["--shard", bad,
                              "--output", str(tmp_path / "s.jsonl")])

    def test_shard_requires_output(self):
        with pytest.raises(SystemExit, match="--shard requires --output"):
            main(BATCH + ["--shard", "0/2"])

    def test_shard_and_merge_round_trip(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        assert main(BATCH + ["--output", str(full)]) == 0
        shards = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            assert main(BATCH + ["--shard", f"{index}/2",
                                 "--output", str(path)]) == 0
            shards.append(path)
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", *map(str, shards), "--output", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard(s)" in out
        assert normalized(merged) == normalized(full)

    def test_merge_failure_reports_error(self, tmp_path, capsys):
        path = tmp_path / "s0.jsonl"
        assert main(BATCH + ["--shard", "0/2", "--output", str(path)]) == 0
        code = main(["merge", str(path), "--output", str(tmp_path / "m.jsonl")])
        assert code == 1
        assert "ERROR" in capsys.readouterr().err


class TestFleet:
    def test_fleet_requires_output(self):
        with pytest.raises(SystemExit, match="--fleet requires --output"):
            main(BATCH + ["--fleet", "2"])

    def test_fleet_excludes_shard(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(BATCH + ["--fleet", "2", "--shard", "0/2",
                          "--output", str(tmp_path / "out.jsonl")])

    def test_fleet_runs_and_merges(self, tmp_path, capsys):
        out = tmp_path / "fleet.jsonl"
        full = tmp_path / "full.jsonl"
        assert main(BATCH + ["--output", str(full)]) == 0
        assert main(BATCH + ["--fleet", "2", "--output", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "[shard 0/2]" in stdout and "[shard 1/2]" in stdout
        assert normalized(out) == normalized(full)
        # the intermediate shard files are kept next to the merged output
        assert (tmp_path / "fleet.shard0of2.jsonl").exists()
        assert (tmp_path / "fleet.shard1of2.jsonl").exists()


class TestRunFleet:
    def spawn_script(self, script):
        return subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)

    def test_crashed_shard_is_relaunched(self, tmp_path):
        # First launch of each shard dies; the relaunch (crash floor: one
        # free retry even under the fail-fast default policy) succeeds.
        marker = tmp_path / "attempt"

        def spawn(index, attempt):
            script = (f"import pathlib, sys\n"
                      f"marker = pathlib.Path({str(marker)!r} + str({index}))\n"
                      f"if not marker.exists():\n"
                      f"    marker.write_text('x')\n"
                      f"    print('dying'); sys.exit(3)\n"
                      f"print('shard ok')\n")
            return self.spawn_script(script)

        lines = []
        outcomes = run_fleet(spawn, 2, retry=RetryPolicy(), echo=lines.append)
        assert all(o.ok and o.attempts == 2 for o in outcomes)
        assert any("relaunching" in line for line in lines)
        assert sum("shard ok" in line for line in lines) == 2

    def test_exhausted_shard_reports_failure(self):
        def spawn(index, attempt):
            return self.spawn_script("import sys; sys.exit(7)")

        outcomes = run_fleet(spawn, 1, retry=RetryPolicy(), echo=lambda _: None)
        assert outcomes == [ShardOutcome(index=0, attempts=2, returncode=7)]
        assert not outcomes[0].ok

    def test_output_is_prefixed_per_shard(self):
        def spawn(index, attempt):
            return self.spawn_script(f"print('hello from', {index})")

        lines = []
        run_fleet(spawn, 2, echo=lines.append)
        assert any(line.startswith("[shard 0/2] hello") for line in lines)
        assert any(line.startswith("[shard 1/2] hello") for line in lines)
