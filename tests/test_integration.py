"""Integration and cross-module property tests.

These tests run whole pipelines across the graph zoo and assert the structural
guarantees of Theorem 1.1 / Corollary 1.2 end to end, plus hypothesis-driven
invariant checks on random graphs and parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.congest.graph import Graph
from repro.core import corollaries, pipelines
from repro.core.algorithm1 import run_mother_algorithm
from repro.core.one_round import max_reducible_colors, one_round_color_reduction, required_input_colors
from repro.core.params import MotherParameters
from repro.verify.coloring import (
    assert_defective_coloring,
    assert_proper_coloring,
)
from repro.verify.orientation import assert_outdegree_orientation
from repro.verify.partition import assert_partition_degree_bound


class TestZooPipelines:
    def test_delta_plus_one_on_zoo(self, small_graph_zoo):
        for graph in small_graph_zoo:
            if graph.max_degree == 0:
                continue
            res = pipelines.delta_plus_one_coloring(graph, seed=1)
            assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)

    def test_mother_algorithm_on_zoo(self, small_graph_zoo):
        for graph in small_graph_zoo:
            if graph.max_degree == 0:
                continue
            colors, m = make_input_coloring(graph, seed=2)
            for k in (1, 3):
                res = run_mother_algorithm(graph, colors, m, d=0, k=k)
                assert_proper_coloring(graph, res.colors)

    def test_full_theorem11_contract_on_zoo(self, small_graph_zoo):
        for graph in small_graph_zoo:
            if graph.max_degree < 3:
                continue
            d = max(1, graph.max_degree // 4)
            colors, m = make_input_coloring(graph, seed=3)
            res = run_mother_algorithm(graph, colors, m, d=d, k=2)
            params = MotherParameters.derive(m=m, delta=graph.max_degree, d=d, k=2)
            # all three guarantees of Theorem 1.1 at once
            assert res.rounds <= params.round_bound
            assert res.colors.max() < params.color_space_size
            assert_outdegree_orientation(graph, res.colors, res.orientation, d)
            assert_partition_degree_bound(graph, res.colors, res.parts, d,
                                          max_parts=res.rounds)


class TestChainedAlgorithms:
    def test_linial_output_feeds_corollaries(self):
        from repro.core.linial import linial_coloring

        graph = generators.random_regular(120, 8, seed=4)
        lin = linial_coloring(graph, seed=4)
        # use Linial's output coloring as the input coloring of the corollaries
        res = corollaries.kdelta_coloring(graph, lin.colors, lin.color_space_size, k=2)
        assert_proper_coloring(graph, res.colors)

        defective = corollaries.defective_coloring_one_round(
            graph, lin.colors, lin.color_space_size, d=2
        )
        assert_defective_coloring(graph, defective.colors, d=2)

    def test_theorem13_feeds_ruling_set(self):
        from repro.core.ruling_sets import ruling_set_from_coloring
        from repro.verify.ruling import assert_ruling_set

        graph = generators.random_regular(100, 8, seed=5)
        colors, m = make_input_coloring(graph, seed=5)
        col = pipelines.theorem13_coloring(graph, colors, m, epsilon=0.5, backend="array")
        rs = ruling_set_from_coloring(graph, col.colors, col.color_space_size, base=4)
        assert_ruling_set(graph, rs.vertices, r=rs.r)

    def test_one_round_then_mother(self):
        # chain Theorem 1.6's reduction with the mother algorithm
        delta = 8
        k = min(delta - 1, (delta + 3) // 2)
        m = required_input_colors(delta, k)
        graph = generators.random_regular(80, delta, seed=6)
        from repro.congest.ids import random_proper_coloring

        colors, m = random_proper_coloring(graph, num_colors=m, seed=6)
        reduced = one_round_color_reduction(graph, colors, m, k=k, delta=delta)
        res = run_mother_algorithm(graph, reduced.colors, reduced.color_space_size, d=0, k=1)
        assert_proper_coloring(graph, res.colors)


class TestHypothesisInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=50),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=5000),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_proper_coloring_invariant(self, n, p, seed, k):
        graph = generators.gnp(n, p, seed=seed)
        if graph.max_degree < 1:
            return
        colors, m = make_input_coloring(graph, seed=seed)
        res = run_mother_algorithm(graph, colors, m, d=0, k=k)
        assert_proper_coloring(graph, res.colors)
        params = MotherParameters.derive(m=m, delta=graph.max_degree, d=0, k=k)
        assert res.rounds <= params.num_batches

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=40),
        p=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=5000),
        d_frac=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_defective_and_orientation_invariants(self, n, p, seed, d_frac):
        graph = generators.gnp(n, p, seed=seed)
        if graph.max_degree < 2:
            return
        d = max(1, int(d_frac * (graph.max_degree - 1)))
        colors, m = make_input_coloring(graph, seed=seed)

        one_round = corollaries.defective_coloring_one_round(graph, colors, m, d=d)
        assert_defective_coloring(graph, one_round.colors, d=d)

        multi = corollaries.defective_coloring(graph, colors, m, d=d)
        assert_defective_coloring(graph, multi.colors, d=d)

        out = corollaries.outdegree_coloring(graph, colors, m, beta=d)
        assert_outdegree_orientation(graph, out.colors, out.orientation, d)

    @settings(max_examples=15, deadline=None)
    @given(
        delta=st.integers(min_value=3, max_value=9),
        seed=st.integers(min_value=0, max_value=2000),
    )
    def test_one_round_reduction_invariant(self, delta, seed):
        from repro.congest.ids import random_proper_coloring

        n = 30 + (30 * delta) % 2
        graph = generators.random_regular(n, delta, seed=seed)
        k = max_reducible_colors(required_input_colors(delta, 2), delta)
        m = required_input_colors(delta, k)
        colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
        res = one_round_color_reduction(graph, colors, m, k=k, delta=delta)
        assert res.rounds == 1
        assert_proper_coloring(graph, res.colors, max_colors=m - k)
