"""Tests of Algorithm 1 / Theorem 1.1 on the message-passing simulator."""

import numpy as np
import pytest

from helpers import make_input_coloring
from repro.congest import generators
from repro.congest.graph import Graph
from repro.core.algorithm1 import derive_orientation, run_mother_algorithm
from repro.core.params import MotherParameters
from repro.verify.coloring import assert_proper_coloring, assert_defective_coloring
from repro.verify.orientation import assert_outdegree_orientation
from repro.verify.partition import assert_partition_degree_bound


def run_on(graph, d=0, k=1, seed=0, **kwargs):
    colors, m = make_input_coloring(graph, seed=seed)
    return run_mother_algorithm(graph, colors, m, d=d, k=k, **kwargs), colors, m


class TestProperColoring:
    @pytest.mark.parametrize("k", [1, 2, 5, 50])
    def test_proper_coloring_on_petersen(self, petersen, k):
        result, _, _ = run_on(petersen, d=0, k=k)
        assert_proper_coloring(petersen, result.colors, max_colors=result.color_space_size)

    def test_ring(self, ring12):
        result, _, _ = run_on(ring12, d=0, k=2)
        assert_proper_coloring(ring12, result.colors)

    def test_complete_graph(self):
        g = generators.complete_graph(9)
        result, _, _ = run_on(g, d=0, k=1)
        assert_proper_coloring(g, result.colors)
        # a clique needs at least n distinct colors
        assert result.num_colors == 9

    def test_random_regular(self, random_regular8):
        result, _, _ = run_on(random_regular8, d=0, k=4)
        assert_proper_coloring(random_regular8, result.colors)

    def test_empty_graph(self):
        g = generators.empty_graph(0)
        colors, m = np.empty(0, dtype=np.int64), 16
        result = run_mother_algorithm(g, colors, m, d=0, k=1)
        assert result.colors.size == 0
        assert result.rounds == 0

    def test_edgeless_graph(self):
        g = generators.empty_graph(5)
        colors = np.arange(5)
        result = run_mother_algorithm(g, colors, m=16, d=0, k=1)
        assert result.rounds <= 1
        assert result.colors.size == 5


class TestTheorem11Guarantees:
    def test_round_bound(self, random_regular8):
        for k in (1, 3, 9):
            result, _, m = run_on(random_regular8, d=0, k=k)
            params = MotherParameters.derive(m=m, delta=random_regular8.max_degree, d=0, k=k)
            assert result.rounds <= params.num_batches <= params.round_bound

    def test_color_space_bound(self, random_regular8):
        result, _, m = run_on(random_regular8, d=0, k=7)
        assert result.colors.max() < result.color_space_size

    def test_parts_within_round_count(self, random_regular8):
        result, _, _ = run_on(random_regular8, d=2, k=2)
        assert result.parts.min() >= 1
        assert result.parts.max() == result.rounds

    def test_orientation_outdegree_at_most_d(self, random_regular8):
        for d in (1, 3, 5):
            result, _, _ = run_on(random_regular8, d=d, k=1)
            assert_outdegree_orientation(random_regular8, result.colors, result.orientation, d)

    def test_partition_degree_at_most_d(self, random_regular8):
        for d in (1, 3):
            result, _, _ = run_on(random_regular8, d=d, k=2)
            assert_partition_degree_bound(
                random_regular8, result.colors, result.parts, d, max_parts=result.rounds
            )

    def test_single_batch_is_one_round_and_defective(self):
        g = generators.random_regular(40, 6, seed=1)
        colors, m = make_input_coloring(g, seed=1)
        params = MotherParameters.derive(m=m, delta=6, d=2, k=1)
        big_k = MotherParameters(m=params.m, delta=params.delta, d=params.d, k=params.q,
                                 f=params.f, q=params.q)
        result = run_mother_algorithm(g, colors, m, d=2, k=big_k.k, params=big_k)
        assert result.rounds == 1
        # one part only => the partition bound is a plain defect bound
        assert_defective_coloring(g, result.colors, d=2)

    def test_d_zero_ignores_orientation(self, petersen):
        result, _, _ = run_on(petersen, d=0, k=1)
        assert result.orientation == set()


class TestCongestBehaviour:
    def test_messages_fit_congest_budget(self, random_regular8):
        colors, m = make_input_coloring(random_regular8, seed=2)
        result = run_mother_algorithm(random_regular8, colors, m, d=0, k=2)
        # TRY carries the input color (< m = Delta^4), COLORED carries an output
        # color (< 256 Delta^2): both are O(log Delta) = O(log n)-bit messages.
        assert result.metadata["max_message_bits"] <= 8 * 8 + int(np.log2(m)) + 8

    def test_simulator_rounds_at_most_one_extra(self, random_regular8):
        result, _, _ = run_on(random_regular8, d=0, k=2)
        assert result.rounds <= result.metadata["simulator_rounds"] <= result.rounds + 1

    def test_local_model_also_works(self, petersen):
        colors, m = make_input_coloring(petersen, seed=3)
        result = run_mother_algorithm(petersen, colors, m, d=0, k=1, model="LOCAL")
        assert_proper_coloring(petersen, result.colors)


class TestInputValidation:
    def test_rejects_improper_input_coloring(self, ring12):
        bad = np.zeros(ring12.n, dtype=np.int64)
        with pytest.raises(Exception):
            run_mother_algorithm(ring12, bad, m=16, d=0, k=1)

    def test_rejects_out_of_range_input_colors(self, ring12):
        colors = np.arange(ring12.n)
        with pytest.raises(Exception):
            run_mother_algorithm(ring12, colors, m=4, d=0, k=1)

    def test_validate_can_be_disabled(self, ring12):
        colors = np.arange(ring12.n) % 3
        # alternating 0,1,2 on a ring of length 12 is proper; skipping
        # validation must still produce a proper output
        result = run_mother_algorithm(ring12, colors, m=16, d=0, k=1, validate_input=False)
        assert_proper_coloring(ring12, result.colors)


class TestOrientationDerivation:
    def test_orientation_edges_follow_parts_and_input_colors(self):
        g = generators.path(3)
        colors = np.array([7, 7, 9])
        parts = np.array([2, 1, 1])
        input_colors = np.array([0, 1, 2])
        orientation = derive_orientation(g, colors, parts, input_colors)
        assert orientation == {(0, 1)}

    def test_same_part_ties_broken_by_input_color(self):
        g = generators.path(2)
        orientation = derive_orientation(
            g, np.array([5, 5]), np.array([1, 1]), np.array([3, 8])
        )
        assert orientation == {(0, 1)}

    def test_non_monochromatic_edges_not_oriented(self):
        g = generators.path(2)
        orientation = derive_orientation(
            g, np.array([5, 6]), np.array([1, 1]), np.array([3, 8])
        )
        assert orientation == set()
