"""Tests for orientation and partition verification (Theorem 1.1 points (1) and (2))."""

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.graph import Graph
from repro.verify.coloring import VerificationError
from repro.verify.orientation import (
    assert_outdegree_orientation,
    monochromatic_edges,
    orientation_outdegrees,
)
from repro.verify.partition import assert_partition_degree_bound, partition_classes


class TestMonochromaticEdges:
    def test_none_for_proper_coloring(self):
        g = generators.ring(6)
        assert monochromatic_edges(g, np.array([0, 1, 0, 1, 0, 1])).size == 0

    def test_detects_monochromatic(self):
        g = generators.path(3)
        edges = monochromatic_edges(g, np.array([5, 5, 1]))
        assert edges.tolist() == [[0, 1]]


class TestOrientation:
    def test_outdegrees(self):
        g = generators.path(3)
        out = orientation_outdegrees(g, {(0, 1), (2, 1)})
        assert out.tolist() == [1, 0, 1]

    def test_non_edge_rejected(self):
        g = generators.path(3)
        with pytest.raises(VerificationError, match="non-edge"):
            orientation_outdegrees(g, {(0, 2)})

    def test_valid_orientation_accepted(self):
        g = generators.path(3)
        colors = np.array([4, 4, 4])
        assert_outdegree_orientation(g, colors, {(0, 1), (1, 2)}, beta=1)

    def test_outdegree_bound_violation(self):
        g = generators.path(3)
        colors = np.array([4, 4, 4])
        with pytest.raises(VerificationError, match="outdegree"):
            assert_outdegree_orientation(g, colors, {(1, 0), (1, 2)}, beta=1)

    def test_missing_monochromatic_edge(self):
        g = generators.path(3)
        colors = np.array([4, 4, 4])
        with pytest.raises(VerificationError, match="not oriented"):
            assert_outdegree_orientation(g, colors, {(0, 1)}, beta=2)

    def test_doubly_oriented_edge(self):
        g = generators.path(2)
        colors = np.array([1, 1])
        with pytest.raises(VerificationError, match="twice"):
            assert_outdegree_orientation(g, colors, {(0, 1), (1, 0)}, beta=2)

    def test_non_monochromatic_edge_in_orientation(self):
        g = generators.path(2)
        colors = np.array([1, 2])
        with pytest.raises(VerificationError, match="different colors"):
            assert_outdegree_orientation(g, colors, {(0, 1)}, beta=2)


class TestPartition:
    def test_partition_classes(self):
        parts = np.array([1, 1, 2, 3])
        classes = partition_classes(parts)
        assert classes[1].tolist() == [0, 1]
        assert classes[3].tolist() == [3]

    def test_partition_degree_bound_ok(self):
        g = generators.complete_graph(4)
        colors = np.zeros(4)
        parts = np.array([1, 2, 3, 4])
        assert_partition_degree_bound(g, colors, parts, d=0)

    def test_partition_degree_bound_violated(self):
        g = generators.complete_graph(4)
        colors = np.zeros(4)
        parts = np.ones(4)
        with pytest.raises(VerificationError, match="same-color same-part"):
            assert_partition_degree_bound(g, colors, parts, d=2)

    def test_partition_max_parts(self):
        g = generators.path(4)
        colors = np.arange(4)
        parts = np.array([1, 2, 3, 4])
        with pytest.raises(VerificationError, match="parts"):
            assert_partition_degree_bound(g, colors, parts, d=0, max_parts=3)

    def test_partition_wrong_shape(self):
        g = generators.path(4)
        with pytest.raises(VerificationError):
            assert_partition_degree_bound(g, np.arange(4), np.array([1, 2]), d=0)

    def test_different_color_same_part_is_fine(self):
        g = generators.complete_graph(5)
        colors = np.arange(5)
        parts = np.ones(5)
        assert_partition_degree_bound(g, colors, parts, d=0)
