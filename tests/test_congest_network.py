"""Tests of the synchronous round scheduler: synchrony, locality, bandwidth accounting."""

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.messages import Broadcast
from repro.congest.network import CongestViolation, SynchronousNetwork
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.runner import run_algorithm


class EchoDegree(NodeAlgorithm):
    """Each node broadcasts a token, counts received tokens, halts."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.count = None

    def start(self):
        return Broadcast(("PING", 1))

    def receive(self, inbox):
        self.count = len(inbox)
        self.halt()
        return None

    def output(self):
        return self.count


class FloodMinId(NodeAlgorithm):
    """Flood the minimum id seen so far; halt after a fixed number of rounds."""

    def __init__(self, ctx, rounds):
        super().__init__(ctx)
        self.best = ctx.node
        self.remaining = rounds

    def start(self):
        return Broadcast(self.best)

    def receive(self, inbox):
        for value in inbox.values():
            self.best = min(self.best, value)
        self.remaining -= 1
        if self.remaining <= 0:
            self.halt()
            return None
        return Broadcast(self.best)

    def output(self):
        return self.best


class BigTalker(NodeAlgorithm):
    """Sends a message far larger than the CONGEST budget."""

    def start(self):
        return Broadcast(tuple(range(4096)))

    def receive(self, inbox):
        self.halt()
        return None

    def output(self):
        return None


class NonNeighborSender(NodeAlgorithm):
    def start(self):
        return {self.ctx.node: 1} if self.ctx.degree == 0 else {(self.ctx.node + 2) % self.ctx.globl("n"): 1}

    def receive(self, inbox):
        self.halt()
        return None

    def output(self):
        return None


class TestScheduler:
    def test_degree_counting(self, petersen):
        result = run_algorithm(petersen, EchoDegree)
        assert result.outputs == [3] * 10
        assert result.rounds == 1

    def test_flooding_reaches_min_within_diameter(self):
        g = generators.path(8)
        result = run_algorithm(g, lambda ctx: FloodMinId(ctx, rounds=7))
        assert result.outputs == [0] * 8
        assert result.rounds == 7

    def test_flooding_too_few_rounds_misses_min(self):
        g = generators.path(8)
        result = run_algorithm(g, lambda ctx: FloodMinId(ctx, rounds=3))
        assert result.outputs[-1] != 0

    def test_synchrony_messages_from_round_start(self):
        # In one round of flooding, information travels exactly one hop: after
        # a single round node 2 cannot know node 0's id yet.
        g = generators.path(5)
        result = run_algorithm(g, lambda ctx: FloodMinId(ctx, rounds=1))
        assert result.outputs == [0, 0, 1, 2, 3]

    def test_isolated_nodes_halt(self):
        g = Graph(3, [])
        result = run_algorithm(g, EchoDegree)
        assert result.outputs == [0, 0, 0]

    def test_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def receive(self, inbox):
                return Broadcast(1)

            def output(self):
                return None

        with pytest.raises(RuntimeError, match="did not terminate"):
            run_algorithm(generators.ring(4), Forever, max_rounds=10)

    def test_sending_to_non_neighbor_rejected(self):
        g = generators.ring(6)
        with pytest.raises(ValueError, match="non-neighbor"):
            run_algorithm(g, NonNeighborSender)

    def test_invalid_outbox_type_rejected(self):
        class BadOutbox(NodeAlgorithm):
            def start(self):
                return 42

            def receive(self, inbox):
                self.halt()
                return None

            def output(self):
                return None

        with pytest.raises(TypeError, match="invalid outbox"):
            run_algorithm(generators.ring(4), BadOutbox)

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            SynchronousNetwork(generators.ring(4), EchoDegree, model="PRAM")

    def test_globals_injected(self):
        seen = {}

        class Reader(NodeAlgorithm):
            def start(self):
                seen[self.ctx.node] = (self.ctx.globl("n"), self.ctx.globl("delta"), self.ctx.globl("custom"))
                return None

            def receive(self, inbox):
                self.halt()
                return None

            def output(self):
                return None

        run_algorithm(generators.star(5), Reader, globals={"custom": 17})
        assert seen[0] == (5, 4, 17)


class TestBandwidthAccounting:
    def test_metrics_recorded(self, petersen):
        result = run_algorithm(petersen, EchoDegree)
        assert result.total_messages == 30
        assert result.max_message_bits > 0
        assert len(result.round_metrics) == result.rounds

    def test_congest_violation_strict(self):
        g = generators.ring(4)
        with pytest.raises(CongestViolation):
            run_algorithm(g, BigTalker, strict_bandwidth=True, bandwidth_factor=1.0)

    def test_congest_violation_counted_when_lenient(self):
        g = generators.ring(4)
        net = SynchronousNetwork(g, BigTalker, bandwidth_factor=1.0)
        net.run()
        assert net.bandwidth_violations > 0

    def test_local_model_ignores_budget(self):
        g = generators.ring(4)
        result = run_algorithm(g, BigTalker, model="LOCAL", strict_bandwidth=True, bandwidth_factor=1.0)
        assert result.rounds >= 1

    def test_step_returns_false_when_all_halted(self):
        g = generators.ring(4)
        net = SynchronousNetwork(g, EchoDegree)
        net.run()
        assert net.step() is False
