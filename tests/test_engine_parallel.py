"""Tests for process-pool sharding: determinism, resume, parallel-safe parity."""

import json

import pytest

from helpers import register_broken_engine, scaled_n_task
from repro.engine import (
    BatchRunner,
    EngineError,
    GraphSpec,
    JsonlSink,
    ParityError,
    get_engine,
)

CELLS = BatchRunner.grid(("random_regular", "gnp"), 40, 4, seeds=(0, 1, 2))
PARAMS = [{"k": 1}]


def stripped(result):
    """Records minus the wall-clock field — the byte-identity comparison set."""
    return [{k: v for k, v in rec.items() if k != "seconds"} for rec in result]


class TestParallelDeterminism:
    def test_parallel_records_identical_to_serial(self):
        serial = BatchRunner(backend="array").run("kdelta", CELLS, params_grid=PARAMS)
        parallel = BatchRunner(backend="array", workers=3).run(
            "kdelta", CELLS, params_grid=PARAMS
        )
        assert stripped(parallel) == stripped(serial)

    def test_parallel_on_reference_backend(self):
        cells = CELLS[:3]
        serial = BatchRunner(backend="reference").run("kdelta", cells, params_grid=PARAMS)
        parallel = BatchRunner(backend="reference", workers=2).run(
            "kdelta", cells, params_grid=PARAMS
        )
        assert stripped(parallel) == stripped(serial)

    def test_parallel_parity_checked_sweep_passes(self):
        result = BatchRunner(backend="array", parity_check=True, workers=2).run(
            "delta_plus_one", CELLS[:4]
        )
        assert len(result) == 4

    def test_parallel_custom_importable_task(self):
        result = BatchRunner(backend="array", workers=2).run(
            scaled_n_task, CELLS[:3], params_grid=[{"scale": 3}]
        )
        assert [rec["value"] for rec in result] == [rec["n"] * 3 for rec in result]

    def test_workers_one_is_plain_serial(self):
        runner = BatchRunner(backend="array", workers=1)
        result = runner.run("kdelta", CELLS[:2], params_grid=PARAMS)
        # serial path populates the parent-process caches; the pool path never does
        assert len(runner._workloads) == 2
        assert len(result) == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(EngineError):
            BatchRunner(backend="array", workers=0)


class TestParallelValidation:
    def test_engine_instance_backend_rejected_in_parallel(self):
        runner = BatchRunner(backend=get_engine("array"), workers=2)
        with pytest.raises(EngineError, match="registered names"):
            runner.run("kdelta", CELLS[:4], params_grid=PARAMS)

    def test_unimportable_task_rejected_in_parallel(self):
        def local_task(workload, engine):
            return {"value": 1}

        runner = BatchRunner(backend="array", workers=2)
        with pytest.raises(EngineError, match="importable"):
            runner.run(local_task, CELLS[:4])

    def test_unknown_task_fails_fast(self):
        runner = BatchRunner(backend="array", workers=2)
        with pytest.raises(KeyError):
            runner.run("no_such_task", CELLS[:4])


class TestSinkIntegration:
    def test_parallel_sink_file_matches_serial_file(self, tmp_path):
        paths = {}
        for label, workers in (("serial", 1), ("parallel", 3)):
            path = tmp_path / f"{label}.jsonl"
            with JsonlSink(path) as sink:
                BatchRunner(backend="array", workers=workers).run(
                    "kdelta", CELLS, params_grid=PARAMS, sink=sink
                )
            paths[label] = path

        def parsed(path):
            lines = [json.loads(line) for line in path.read_text().splitlines()]
            head, rest = lines[0], lines[1:]
            # `workers` is provenance (how the file was produced), not
            # identity — it is the one manifest field allowed to differ.
            head["manifest"].pop("workers")
            return head, [
                (obj["cell"], {k: v for k, v in obj["record"].items() if k != "seconds"})
                for obj in rest
            ]

        assert parsed(paths["serial"]) == parsed(paths["parallel"])

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "run.jsonl"
        # First run covers only a prefix of the grid (an "interrupted" sweep).
        with JsonlSink(path) as sink:
            BatchRunner(backend="array").run("kdelta", CELLS[:2], params_grid=PARAMS,
                                            sink=sink)
        # Trick: rewrite the manifest to the full grid's manifest so the resume
        # check accepts the file (a real kill leaves the full manifest behind).
        full_manifest = BatchRunner(backend="array").manifest(
            "kdelta", CELLS, params_grid=PARAMS
        )
        lines = path.read_text().splitlines()
        lines[0] = json.dumps({"manifest": full_manifest.to_dict()})
        path.write_text("\n".join(lines) + "\n")

        with JsonlSink(path, resume=True) as sink:
            result = BatchRunner(backend="array", workers=2).run(
                "kdelta", CELLS, params_grid=PARAMS, sink=sink
            )
        assert sink.written == len(CELLS) - 2  # only the missing cells ran
        assert len(result) == len(CELLS)
        serial = BatchRunner(backend="array").run("kdelta", CELLS, params_grid=PARAMS)
        assert stripped(result) == stripped(serial)

    def test_resume_with_nothing_done_runs_everything(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        with JsonlSink(path, resume=True) as sink:
            result = BatchRunner(backend="array", workers=2).run(
                "kdelta", CELLS, params_grid=PARAMS, sink=sink
            )
        assert sink.written == len(result) == len(CELLS)

    def test_fully_resumed_sweep_runs_no_cells(self, tmp_path):
        path = tmp_path / "done.jsonl"
        with JsonlSink(path) as sink:
            BatchRunner(backend="array").run("kdelta", CELLS, params_grid=PARAMS, sink=sink)
        with JsonlSink(path, resume=True) as sink:
            result = BatchRunner(backend="array", workers=2).run(
                "kdelta", CELLS, params_grid=PARAMS, sink=sink
            )
        assert sink.written == 0
        assert len(result) == len(CELLS)


class TestParityUnderParallelism:
    """Satellite: a deliberately broken backend must trip the parity oracle
    under both serial and parallel execution (the 'parallel-safe oracle')."""

    def test_broken_engine_trips_parity_serially(self):
        register_broken_engine()
        runner = BatchRunner(backend="broken-array", parity_check=True)
        with pytest.raises(ParityError, match="parity mismatch"):
            runner.run("kdelta", CELLS[:2], params_grid=PARAMS)

    def test_broken_engine_trips_parity_in_parallel(self):
        register_broken_engine()
        runner = BatchRunner(
            backend="broken-array",
            parity_check=True,
            workers=2,
            worker_init=register_broken_engine,  # workers must know the backend too
        )
        with pytest.raises(ParityError, match="parity mismatch"):
            runner.run("kdelta", CELLS[:4], params_grid=PARAMS)

    def test_broken_engine_passes_without_parity_check(self):
        register_broken_engine()
        runner = BatchRunner(backend="broken-array", parity_check=False, workers=2,
                             worker_init=register_broken_engine)
        result = runner.run("kdelta", CELLS[:2], params_grid=PARAMS)
        assert len(result) == 2  # wrong but proper colors sail through unchecked

    def test_sink_keeps_records_completed_before_parity_failure(self, tmp_path):
        register_broken_engine()
        path = tmp_path / "run.jsonl"
        runner = BatchRunner(backend="broken-array", parity_check=True)
        with JsonlSink(path) as sink:
            with pytest.raises(ParityError):
                runner.run("kdelta", CELLS, params_grid=PARAMS, sink=sink)
        # the manifest line survives; no torn record lines
        lines = path.read_text().splitlines()
        assert "manifest" in json.loads(lines[0])
