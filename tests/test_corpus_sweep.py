"""Corpus sweeps through the engine: manifest, hashing, sharding, serve, goldens."""

import json
import pathlib
import urllib.request

import numpy as np
import pytest

from repro.api.spec import JobSpec, Problem, SpecError, spec_hash
from repro.corpus import cache
from repro.corpus.vendor import CorpusError
from repro.engine.batch import BatchRunner, GraphSpec
from repro.engine.merge import merge_shards
from repro.engine.sink import cell_key, open_sink, shard_of

from repro import corpus

REPO_CORPUS = pathlib.Path(__file__).resolve().parent.parent / "corpus"
GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_ENV, str(tmp_path / "corpus-cache"))


@pytest.fixture
def toy(tmp_path):
    """A small deterministic file graph (5-cycle plus a chord)."""
    path = tmp_path / "toy.txt"
    path.write_text("0 1\n1 2\n2 3\n3 4\n4 0\n0 2\n")
    return path


# --------------------------------------------------------------------------- #
# The vendored manifest
# --------------------------------------------------------------------------- #


class TestManifest:
    def test_vendored_corpus_loads_and_verifies(self):
        entries = corpus.load_manifest(REPO_CORPUS, verify=True)
        assert len(entries) >= 5
        kinds = {entry.kind for entry in entries}
        assert {"road", "social", "collaboration", "web", "mesh"} <= kinds
        for entry in entries:
            assert entry.source  # provenance is mandatory
            assert entry.license
            assert entry.path.stat().st_size < 3 * 1024 * 1024  # a few MB max

    def test_manifest_shapes_match_ingestion(self):
        for entry in corpus.load_manifest(REPO_CORPUS):
            graph = corpus.ingest(entry.path).graph
            assert (graph.n, graph.max_degree) == (entry.n, entry.delta), entry.name

    def test_digest_drift_detected(self, tmp_path):
        entries = corpus.load_manifest(REPO_CORPUS)
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        manifest = {"graphs": [dict(entries[0].to_dict())]}
        (corpus_dir / entries[0].path.name).write_text("0 1\n")  # drifted content
        (corpus_dir / "MANIFEST.json").write_text(json.dumps(manifest))
        assert corpus.load_manifest(corpus_dir, verify=False)  # lazy: loads
        with pytest.raises(CorpusError, match="drifted"):
            corpus.load_manifest(corpus_dir, verify=True)

    def test_missing_file_rejected(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        (corpus_dir / "MANIFEST.json").write_text(json.dumps({"graphs": [
            {"name": "ghost", "file": "ghost.txt", "kind": "road", "source": "s",
             "license": "l", "n": 1, "m": 1, "delta": 1, "sha256": "0" * 64},
        ]}))
        with pytest.raises(CorpusError, match="missing"):
            corpus.load_manifest(corpus_dir)

    def test_duplicate_names_rejected(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        (corpus_dir / "g.txt").write_text("0 1\n")
        entry = {"name": "g", "file": "g.txt", "kind": "road", "source": "s",
                 "license": "l", "n": 2, "m": 1, "delta": 1, "sha256": "0" * 64}
        (corpus_dir / "MANIFEST.json").write_text(json.dumps({"graphs": [entry, entry]}))
        with pytest.raises(CorpusError, match="duplicate"):
            corpus.load_manifest(corpus_dir)

    def test_generator_script_is_the_source_of_truth(self):
        manifest = json.loads((REPO_CORPUS / "MANIFEST.json").read_text())
        assert manifest["generator"] == "scripts/generate_corpus.py"


# --------------------------------------------------------------------------- #
# Spec identity: hashes, cell keys, sharding
# --------------------------------------------------------------------------- #


class TestSpecIdentity:
    def test_spec_hash_is_path_independent(self, tmp_path, toy):
        copy = tmp_path / "elsewhere" / "renamed.txt"
        copy.parent.mkdir()
        copy.write_bytes(toy.read_bytes())
        h1 = spec_hash(Problem(graph=corpus.file_spec(toy)))
        h2 = spec_hash(Problem(graph=corpus.file_spec(copy)))
        assert h1 == h2  # same content, different path: same identity

    def test_spec_hash_follows_content(self, tmp_path, toy):
        h1 = spec_hash(Problem(graph=corpus.file_spec(toy)))
        toy.write_text("0 1\n1 2\n2 0\n")
        h2 = spec_hash(Problem(graph=corpus.file_spec(toy)))
        assert h1 != h2

    def test_spec_hash_of_missing_file_is_a_spec_error(self, tmp_path):
        spec = GraphSpec("file", 5, 2, 0, path=str(tmp_path / "gone.txt"))
        with pytest.raises(SpecError, match="cannot hash"):
            spec_hash(Problem(graph=spec))

    def test_generator_cell_keys_unchanged_by_path_field(self):
        # the corpus feature must not move any pre-existing cell identity
        spec = GraphSpec("random_regular", 40, 4, 0)
        key = cell_key("delta_plus_one", spec, {})
        assert "path" not in key
        assert json.loads(key)["family"] == "random_regular"

    def test_file_cells_with_same_shape_do_not_collide(self, tmp_path):
        a = GraphSpec("file", 5, 2, 0, path=str(tmp_path / "a.txt"))
        b = GraphSpec("file", 5, 2, 0, path=str(tmp_path / "b.txt"))
        assert cell_key("linial", a, {}) != cell_key("linial", b, {})

    def test_file_round_trips_through_jobspec_json(self, toy):
        spec = corpus.file_spec(toy)
        document = {
            "problems": [{"graph": {"family": "file", "n": spec.n,
                                    "delta": spec.delta, "seed": 0,
                                    "path": str(toy)}}],
            "run": {"algorithm": "linial", "backend": "array"},
        }
        job = JobSpec.from_dict(document)
        graph_spec = job.problems[0].graph
        assert graph_spec.family == "file" and graph_spec.path == str(toy)
        assert JobSpec.from_dict(job.to_dict()).to_dict() == job.to_dict()

    def test_path_on_generator_family_rejected(self):
        from repro.api.spec import Problem as P

        with pytest.raises(SpecError):
            JobSpec.from_dict({
                "problems": [{"graph": {"family": "ring", "n": 10, "delta": 2,
                                        "seed": 0, "path": "/tmp/x.txt"}}],
                "run": {"algorithm": "linial", "backend": "array"},
            })


# --------------------------------------------------------------------------- #
# Sweeps: batch machinery inheritance (workers, shards, merge)
# --------------------------------------------------------------------------- #


ZOO2 = [{"algorithm": "linial"}, {"algorithm": "delta_plus_one"}]


def _stable(records):
    return [{k: v for k, v in r.items() if k != "seconds"} for r in records]


class TestSweep:
    def test_serial_equals_parallel(self, toy):
        spec = corpus.file_spec(toy)
        serial = corpus.run_corpus_sweep([spec], zoo=ZOO2)
        parallel = corpus.run_corpus_sweep([spec], zoo=ZOO2, workers=2)
        assert _stable(serial.records) == _stable(parallel.records)

    def test_sweep_through_batch_cli_shards_and_merges(self, tmp_path, toy):
        """File cells flow through `repro batch --shard`-style runs + merge."""
        spec = corpus.file_spec(toy)
        shard_paths = []
        for index in range(2):
            path = tmp_path / f"shard{index}.jsonl"
            sink = open_sink(path)
            try:
                corpus.run_corpus_sweep([spec], zoo=ZOO2, sink=sink,
                                        shard=(index, 2))
            finally:
                sink.close()
            shard_paths.append(path)
        merged_path = tmp_path / "merged.jsonl"
        merge_shards(shard_paths, merged_path)
        merged = [entry["record"] for entry in
                  (json.loads(line) for line in merged_path.read_text().splitlines())
                  if "record" in entry]
        full = corpus.run_corpus_sweep([spec], zoo=ZOO2)
        assert _stable(merged) == _stable(full.records)

    def test_shard_assignment_is_stable(self, toy):
        spec = corpus.file_spec(toy)
        keys = [cell_key(corpus.corpus_task, spec, entry) for entry in ZOO2]
        assert [shard_of(k, 2) for k in keys] == [shard_of(k, 2) for k in keys]

    def test_verification_failure_aborts_loudly(self, toy, monkeypatch):
        """A sweep can never quietly report an invalid structure."""
        from repro.engine.retry import RetryPolicy
        from repro.verify.coloring import VerificationError

        spec = corpus.file_spec(toy)

        def sabotage(graph, colors, max_colors=None):
            raise VerificationError("injected")

        monkeypatch.setattr("repro.verify.assert_proper_coloring", sabotage)
        # default policy: a deterministic failure aborts the sweep
        with pytest.raises(VerificationError, match="injected"):
            corpus.run_corpus_sweep([spec], zoo=[{"algorithm": "linial"}])
        # opt-in record policy: the failure lands as a structured CellError
        result = corpus.run_corpus_sweep(
            [spec], zoo=[{"algorithm": "linial"}],
            retry=RetryPolicy(on_error="record"))
        assert len(result.failures) == 1
        assert "injected" in json.dumps(result.failures[0]["error"])

    def test_runs_on_jit_backend(self, toy):
        spec = corpus.file_spec(toy)
        result = corpus.run_corpus_sweep([spec], zoo=ZOO2, backend="jit")
        assert len(result.failures) == 0


# --------------------------------------------------------------------------- #
# Golden records: one corpus graph, both backends
# --------------------------------------------------------------------------- #


GOLDEN = json.loads((GOLDEN_DIR / "corpus_records.json").read_text())


def _portable(record):
    out = {k: v for k, v in record.items() if k not in GOLDEN["volatile_fields"]}
    if "path" in out:
        out["path"] = pathlib.Path(out["path"]).name
    return out


@pytest.mark.parametrize("backend", ["array", "jit"])
def test_golden_corpus_records(backend):
    entries = [e for e in corpus.load_manifest(REPO_CORPUS)
               if e.name == GOLDEN["graph"]]
    pairs = corpus.corpus_specs(entries)
    result = corpus.run_corpus_sweep([s for _, s in pairs], backend=backend)
    assert [_portable(r) for r in result.records] == GOLDEN["records"]


def test_golden_summary_matches_cli_document(tmp_path):
    """The committed smoke summary is exactly what a fresh sweep produces."""
    golden = json.loads((GOLDEN_DIR / "corpus_summary.json").read_text())
    names = [g["name"] for g in golden["graphs"]]
    entries = [e for e in corpus.load_manifest(REPO_CORPUS) if e.name in names]
    result = corpus.run_corpus_sweep([s for _, s in corpus.corpus_specs(entries)],
                                     workers=2)
    summary = corpus.summarize(entries, result)
    json_path, _ = corpus.write_summary(summary, tmp_path)
    assert json.loads(json_path.read_text()) == golden


# --------------------------------------------------------------------------- #
# The job server accepts file-family specs
# --------------------------------------------------------------------------- #


class TestServe:
    def _post(self, url, document):
        body = json.dumps(document).encode()
        request = urllib.request.Request(
            url, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)

    def test_file_job_runs_and_missing_file_422s(self, tmp_path, toy):
        from repro.server.app import JobServer

        server = JobServer(tmp_path / "state", port=0, workers=1).start_background()
        try:
            url = f"http://127.0.0.1:{server.port}"
            spec = corpus.file_spec(toy)
            document = {
                "problems": [{"graph": {"family": "file", "n": spec.n,
                                        "delta": spec.delta, "seed": 0,
                                        "path": str(toy)}}],
                "run": {"algorithm": "linial", "backend": "array"},
            }
            status, payload = self._post(f"{url}/jobs", document)
            assert status in (200, 201, 202)
            job_id = payload["id"]
            import time
            deadline = time.time() + 60
            while time.time() < deadline:
                with urllib.request.urlopen(f"{url}/jobs/{job_id}", timeout=30) as r:
                    state = json.load(r)
                if state["state"] in ("done", "failed"):
                    break
                time.sleep(0.1)
            assert state["state"] == "done", state

            bad = {
                "problems": [{"graph": {"family": "file", "n": 4, "delta": 2,
                                        "seed": 0,
                                        "path": str(tmp_path / "ghost.txt")}}],
                "run": {"algorithm": "linial", "backend": "array"},
            }
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(f"{url}/jobs", bad)
            assert excinfo.value.code == 422
        finally:
            server.stop()
