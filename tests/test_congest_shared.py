"""Tests for the zero-copy shared-memory graph plane.

Covers the satellite checklist of the scale work: attach/detach parity
(serial == shm-parallel records on both backends), cleanup on worker
exception, no leaked ``/dev/shm`` segments after a sweep, and both ``spawn``
and ``fork`` start methods.
"""

import gc
import os
import pickle

import numpy as np
import pytest

from helpers import failing_task, shared_graph_probe_task
from repro.congest import generators, shared
from repro.congest.graph import Graph
from repro.engine import BatchRunner, GraphSpec

SHM_DIR = "/dev/shm"


def repro_segments() -> set[str]:
    """The repro-owned segments currently present in ``/dev/shm``."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir(SHM_DIR) if name.startswith("repro-g-")}


def stripped(result):
    return [{k: v for k, v in rec.items() if k != "seconds"} for rec in result]


class TestRoundtrip:
    def test_attach_is_zero_copy_and_identical(self):
        g = generators.gnp(300, 0.05, seed=3)
        with g.to_shared() as handle:
            a = Graph.from_shared(handle)
            assert a == g
            assert np.array_equal(a.degrees, g.degrees)
            assert np.array_equal(a.src_index, g.src_index)
            # zero-copy: the views live inside the shared buffer, not in
            # freshly allocated arrays
            assert a.indices.base is not None
            assert not a.indices.flags.owndata
            assert a.shared_name == handle.name
            assert g.shared_name is None  # the publisher keeps its private arrays

    def test_views_are_read_only(self):
        g = generators.ring(16)
        with g.to_shared() as handle:
            a = Graph.from_shared(handle)
            for arr in (a.indptr, a.indices, a.src_index, a.degrees):
                with pytest.raises(ValueError):
                    arr[0] = 99

    def test_empty_and_edgeless_graphs_roundtrip(self):
        for g in (Graph(0), generators.empty_graph(5)):
            with g.to_shared() as handle:
                a = Graph.from_shared(handle)
                assert a == g
                assert a.num_edges == 0

    def test_handle_is_picklable_and_small(self):
        g = generators.ring(64)
        with g.to_shared() as handle:
            blob = pickle.dumps(handle)
            assert len(blob) < 256  # a descriptor, not the graph
            clone = pickle.loads(blob)
            assert (clone.name, clone.n, clone.num_entries) == (
                handle.name, handle.n, handle.num_entries
            )
            a = Graph.from_shared(clone)
            assert a == g

    def test_algorithms_run_on_attached_graph(self):
        from repro.core import pipelines

        g = generators.random_regular(60, 4, seed=2)
        with g.to_shared() as handle:
            a = Graph.from_shared(handle)
            mine = pipelines.delta_plus_one_coloring(a, seed=2, backend="array")
            orig = pipelines.delta_plus_one_coloring(g, seed=2, backend="array")
            assert np.array_equal(mine.colors, orig.colors)
            assert mine.rounds == orig.rounds


class TestLifecycle:
    def test_unlink_waits_for_last_reference(self):
        g = generators.ring(32)
        handle = g.to_shared()
        name = handle.name
        assert name in repro_segments()
        a = Graph.from_shared(handle)
        b = Graph.from_shared(handle)
        handle.close()
        # attachments still hold references: mapped and readable
        assert a.has_edge(0, 1) and b.has_edge(0, 1)
        del a
        gc.collect()
        assert b.has_edge(0, 1)
        del b
        gc.collect()
        assert name not in repro_segments()
        assert name not in shared.open_segments()

    def test_handle_close_is_idempotent(self):
        handle = generators.ring(8).to_shared()
        handle.close()
        handle.close()
        assert handle.name not in repro_segments()

    def test_context_manager_unlinks(self):
        with generators.ring(8).to_shared() as handle:
            name = handle.name
            assert name in repro_segments()
        assert name not in repro_segments()

    def test_reshare_from_attached_graph(self):
        g = generators.ring(12)
        h1 = g.to_shared()
        a = Graph.from_shared(h1)
        h2 = a.to_shared()  # republish = same segment, new reference
        assert h2.name == h1.name
        assert (h2.n, h2.num_entries) == (a.n, a.indices.size)
        h1.close()
        h2.close()
        assert h1.name in repro_segments()  # `a` still holds a reference
        del a
        gc.collect()
        assert h1.name not in repro_segments()

    def test_unpickled_handle_owns_no_reference(self):
        g = generators.ring(12)
        handle = g.to_shared()
        clone = pickle.loads(pickle.dumps(handle))
        clone.close()  # a no-op: the clone never held a local reference
        assert handle.name in repro_segments()
        handle.close()
        assert handle.name not in repro_segments()

    def test_cleanup_all_reclaims_everything(self):
        handles = [generators.ring(8 + i).to_shared() for i in range(3)]
        assert all(h.name in repro_segments() for h in handles)
        shared.cleanup_all()
        assert not any(h.name in repro_segments() for h in handles)
        for h in handles:
            h.close()  # releasing after cleanup must not raise


class TestParallelSweeps:
    CELLS = BatchRunner.grid(("random_regular", "gnp"), 50, 4, seeds=(0, 1))

    @pytest.mark.parametrize("backend", ["array", "reference"])
    def test_serial_matches_shm_parallel_on_backend(self, backend):
        serial = BatchRunner(backend=backend).run("kdelta", self.CELLS)
        parallel = BatchRunner(backend=backend, workers=2).run("kdelta", self.CELLS)
        assert stripped(parallel) == stripped(serial)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_attach_the_parents_segment(self, start_method):
        result = BatchRunner(
            backend="array", workers=2, start_method=start_method
        ).run(shared_graph_probe_task, self.CELLS)
        segments = [rec["segment"] for rec in result]
        # every worker ran on a shared segment, never on a private copy ...
        assert all(seg.startswith("repro-g-") for seg in segments)
        # ... and all workers of one spec used the SAME segment (one physical
        # graph per spec, not W copies)
        by_spec = {}
        for spec, rec in zip(self.CELLS, result):
            by_spec.setdefault(spec, set()).add(rec["segment"])
        assert all(len(names) == 1 for names in by_spec.values())
        # distinct specs got distinct segments
        assert len({min(v) for v in by_spec.values()}) == len(by_spec)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_no_leaked_segments_after_sweep(self, start_method):
        before = repro_segments()
        BatchRunner(backend="array", workers=2, start_method=start_method).run(
            "kdelta", self.CELLS
        )
        gc.collect()
        assert repro_segments() == before
        assert shared.open_segments() == []

    def test_cleanup_on_worker_exception(self):
        before = repro_segments()
        runner = BatchRunner(backend="array", workers=2)
        with pytest.raises(RuntimeError, match="deliberate failure"):
            runner.run(failing_task, self.CELLS)
        gc.collect()
        assert repro_segments() == before
        assert shared.open_segments() == []

    def test_parent_does_not_cache_private_copies(self):
        runner = BatchRunner(backend="array", workers=2)
        runner.run("kdelta", self.CELLS)
        # the parent published and released; it holds no graphs or workloads
        assert runner._graphs == {}
        assert runner._workloads == {}

    def test_serial_sweep_unaffected(self):
        before = repro_segments()
        runner = BatchRunner(backend="array")
        result = runner.run("kdelta", self.CELLS)
        assert len(result) == len(self.CELLS)
        assert repro_segments() == before
