"""Chaos suite: the fault-tolerant execution plane under injected failures.

Every test here *causes* a failure on purpose — a worker SIGKILLed mid-cell,
a kernel hanging past its deadline, a sink write blowing up, a poisoned jit
tier — through the one production seam (:mod:`repro.testing.faults`) and then
asserts the sweep converges to results byte-identical to an uninterrupted
run (modulo the wall-clock ``seconds`` field), or to a structured CellError
record when the policy says record-and-continue.
"""

import json

import pytest

from repro.api.spec import JobSpec, SpecError, spec_hash
from repro.engine.base import EngineError
from repro.engine.batch import BatchRunner, GraphSpec
from repro.engine.retry import (
    CellTimeoutError,
    RetryPolicy,
    call_with_deadline,
    cell_error_record,
    classify_error,
    describe_error,
)
from repro.engine.sink import JsonlSink
from repro.testing import faults
from repro.testing.faults import Fault, FaultPlan, InjectedFault

TASK = "delta_squared"
CELLS = [GraphSpec("gnp", 40, 6, seed=seed) for seed in range(4)]


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """No plan leaks into or out of any test (env or programmatic)."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


def strip_seconds(records):
    return [{k: v for k, v in r.items() if k != "seconds"} for r in records]


def clean_run(backend="array"):
    return BatchRunner(backend=backend).run(TASK, CELLS)


def event_kinds(result):
    return [(e["event"], e.get("kind")) for e in result.events]


# --------------------------------------------------------------------------- #
# RetryPolicy: the state machine
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_default_policy_is_default(self):
        assert RetryPolicy().is_default
        assert not RetryPolicy(max_attempts=2).is_default
        assert not RetryPolicy(cell_timeout=5.0).is_default

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": 1.5},
        {"cell_timeout": 0.0},
        {"cell_timeout": -1.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"on_error": "explode"},
    ])
    def test_validation_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_crashes_get_a_retry_floor_of_two(self):
        policy = RetryPolicy()  # max_attempts=1
        assert policy.attempts_for("crash") == 2
        assert policy.attempts_for("error") == 1
        assert policy.next_action("crash", 1) == "retry"
        assert policy.next_action("crash", 2) == "record"

    def test_ladder_retry_then_raise_or_record(self):
        raise_policy = RetryPolicy(max_attempts=3)
        assert raise_policy.next_action("error", 1) == "retry"
        assert raise_policy.next_action("error", 2) == "retry"
        assert raise_policy.next_action("error", 3) == "raise"  # default on_error
        record_policy = RetryPolicy(max_attempts=3, on_error="record")
        assert record_policy.next_action("error", 3) == "record"
        # timeouts always record on exhaustion, regardless of on_error
        assert raise_policy.next_action("timeout", 3) == "record"

    def test_jit_gets_one_downgrade_attempt(self):
        policy = RetryPolicy()
        assert policy.next_action("error", 1, backend="jit") == "downgrade"
        assert policy.next_action("error", 1, backend="jit", downgraded=True) == "raise"
        assert policy.next_action("error", 1, backend="array") == "raise"

    def test_fatal_kinds_always_raise(self):
        policy = RetryPolicy(max_attempts=10, on_error="record")
        assert policy.next_action("parity", 1, backend="jit") == "raise"
        assert policy.next_action("interrupt", 1, backend="jit") == "raise"

    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineError, match="unknown error kind"):
            RetryPolicy().next_action("gremlin", 1)

    def test_backoff_is_exponential_and_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5, jitter=0.25)
        assert RetryPolicy().delay("cell", 1) == 0.0  # base 0 disables backoff
        first, second = policy.delay("cellA", 1), policy.delay("cellA", 2)
        assert 0.5 <= first <= 0.5 * 1.25
        assert 1.0 <= second <= 1.0 * 1.25
        assert policy.delay("cellA", 1) == first  # seed-pinned, no live RNG
        assert policy.delay("cellB", 1) != first  # ...but keyed by the cell

    def test_round_trip_and_schema_guards(self):
        policy = RetryPolicy(max_attempts=3, cell_timeout=2.5, backoff_base=0.1,
                             jitter=0.5, on_error="record")
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert policy.to_dict()["schema"] == 1
        with pytest.raises(ValueError, match="unknown retry policy field"):
            RetryPolicy.from_dict({"max_attempts": 2, "lives": 9})
        with pytest.raises(ValueError, match="schema"):
            RetryPolicy.from_dict({"schema": 99})


# --------------------------------------------------------------------------- #
# The fault-injection harness itself
# --------------------------------------------------------------------------- #


class TestFaultHarness:
    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            faults=(
                Fault(site="cell", op="kill", match={"seed": 2}, once="k1"),
                Fault(site="sink-write", nth=3),
                Fault(site="jit", op="hang", seconds=1.5),
                Fault(site="server-cell", exception="SystemExit", message="boom"),
            ),
            marker_dir=str(tmp_path),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert faults.ENV_VAR in plan.env()

    def test_bad_triggers_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault(site="warp-core")
        with pytest.raises(ValueError, match="unknown fault op"):
            Fault(site="cell", op="implode")
        with pytest.raises(ValueError, match="unknown fault exception"):
            Fault(site="cell", exception="Cataclysm")
        with pytest.raises(ValueError, match="marker_dir"):
            FaultPlan((Fault(site="cell", once="needs-markers"),))

    def test_nth_counts_per_site(self):
        faults.install(FaultPlan((Fault(site="cell", nth=2),)))
        faults.fire("cell")  # first hit: no fault
        with pytest.raises(InjectedFault):
            faults.fire("cell")
        faults.fire("cell")  # third hit: past the trigger

    def test_match_selects_by_context(self):
        faults.install(FaultPlan((Fault(site="cell", match={"seed": 1}),)))
        faults.fire("cell", seed=0)
        faults.fire("cell")  # missing key: no match
        with pytest.raises(InjectedFault):
            faults.fire("cell", seed=1)

    def test_once_marker_fires_a_single_time(self, tmp_path):
        plan = FaultPlan((Fault(site="cell", once="only-one"),),
                         marker_dir=str(tmp_path))
        faults.install(plan)
        with pytest.raises(InjectedFault):
            faults.fire("cell")
        faults.fire("cell")  # the marker file absorbs every later hit
        assert faults.fired_names() == ("only-one",)
        assert list(tmp_path.glob("repro-fault-*.marker"))

    def test_env_plan_activates_without_install(self, monkeypatch):
        plan = FaultPlan((Fault(site="cell", message="from env"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        assert faults.active_plan() == plan
        with pytest.raises(InjectedFault, match="from env"):
            faults.fire("cell")

    def test_hang_op_sleeps_then_returns(self):
        faults.install(FaultPlan((Fault(site="cell", op="hang", seconds=0.01),)))
        faults.fire("cell")  # returns (after the nap) instead of raising


# --------------------------------------------------------------------------- #
# Error classification and records
# --------------------------------------------------------------------------- #


class TestErrorRecords:
    def test_classification(self):
        assert classify_error(ValueError("x")) == "error"
        assert classify_error(CellTimeoutError("t")) == "timeout"
        assert classify_error(KeyboardInterrupt()) == "interrupt"

    def test_describe_error_shape(self):
        try:
            raise InjectedFault("chaos")
        except InjectedFault as exc:
            err = describe_error(exc, attempts=2, tier="array")
        assert err["kind"] == "error" and err["type"] == "InjectedFault"
        assert err["message"] == "chaos" and err["attempts"] == 2
        assert err["tier"] == "array" and len(err["traceback_digest"]) == 16

    def test_cell_error_record_mirrors_identity_prefix(self):
        record = cell_error_record(CELLS[0], {"k": 4}, "array",
                                   {"kind": "error", "type": "X", "message": "m"})
        assert record["family"] == "gnp" and record["n"] == 40
        assert record["Delta"] == 6 and record["seed"] == 0 and record["k"] == 4
        assert record["backend"] == "array" and "error" in record

    def test_call_with_deadline_raises_and_passes_through(self):
        assert call_with_deadline(lambda: 42, 5.0, "cell") == 42
        with pytest.raises(CellTimeoutError, match="deadline"):
            call_with_deadline(lambda: __import__("time").sleep(2.0), 0.1, "cell")
        with pytest.raises(ValueError, match="inner"):
            call_with_deadline(lambda: (_ for _ in ()).throw(ValueError("inner")), 5.0, "c")


# --------------------------------------------------------------------------- #
# Serial sweeps under faults
# --------------------------------------------------------------------------- #


class TestSerialFaults:
    def test_transient_error_retried_to_identical_results(self):
        faults.install(FaultPlan((Fault(site="cell", match={"seed": 1, "attempt": 1}),)))
        result = BatchRunner(retry=RetryPolicy(max_attempts=2)).run(TASK, CELLS)
        faults.clear()
        assert strip_seconds(result.records) == strip_seconds(clean_run().records)
        assert event_kinds(result) == [("retry", "error")]
        assert result.failures == []

    def test_persistent_error_records_cell_error_and_continues(self):
        faults.install(FaultPlan((Fault(site="cell", match={"seed": 2}),)))
        policy = RetryPolicy(max_attempts=2, on_error="record")
        result = BatchRunner(retry=policy).run(TASK, CELLS)
        assert len(result.records) == 4 and len(result.failures) == 1
        failed = result.failures[0]
        assert failed["seed"] == 2 and failed["error"]["kind"] == "error"
        assert failed["error"]["attempts"] == 2
        assert ("cell-error", None) in event_kinds(result)
        faults.clear()
        # the other cells are untouched by the failing one
        good = [r for r in result.records if "error" not in r]
        expected = [r for r in clean_run().records if r["seed"] != 2]
        assert strip_seconds(good) == strip_seconds(expected)

    def test_persistent_error_default_policy_raises(self):
        faults.install(FaultPlan((Fault(site="cell", match={"seed": 0}),)))
        with pytest.raises(InjectedFault):
            BatchRunner().run(TASK, CELLS)

    def test_timed_out_cell_yields_structured_record(self):
        faults.install(FaultPlan((Fault(site="cell", op="hang", seconds=1.5,
                                        match={"seed": 1}),)))
        policy = RetryPolicy(cell_timeout=0.25, on_error="record")
        result = BatchRunner(retry=policy).run(TASK, CELLS)
        assert len(result.failures) == 1
        assert result.failures[0]["error"]["kind"] == "timeout"
        assert result.failures[0]["error"]["type"] == "CellTimeoutError"
        good = [r for r in result.records if "error" not in r]
        assert len(good) == 3  # the sweep kept going

    def test_events_and_error_records_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        faults.install(FaultPlan((Fault(site="cell", match={"seed": 2}),)))
        policy = RetryPolicy(max_attempts=2, on_error="record")
        with JsonlSink(path) as sink:
            BatchRunner(retry=policy).run(TASK, CELLS, sink=sink)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any("event" in obj and "record" not in obj for obj in lines)
        faults.clear()
        # resume: event lines are skipped, the CellError cell is re-run clean
        with JsonlSink(path, resume=True) as sink:
            result = BatchRunner().run(TASK, CELLS, sink=sink)
        assert result.failures == []
        assert strip_seconds(result.records) == strip_seconds(clean_run().records)


# --------------------------------------------------------------------------- #
# Parallel sweeps: crash containment (the pool under fire)
# --------------------------------------------------------------------------- #


class TestParallelFaults:
    @pytest.mark.parametrize("backend", ["array", "jit"])
    def test_worker_kill_recovers_byte_identical(self, tmp_path, monkeypatch, backend):
        plan = FaultPlan((Fault(site="cell", op="kill", match={"seed": 2},
                                once=f"kill-{backend}"),),
                         marker_dir=str(tmp_path))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        result = BatchRunner(backend=backend, workers=2).run(TASK, CELLS)
        monkeypatch.delenv(faults.ENV_VAR)
        clean = clean_run(backend)
        assert strip_seconds(result.records) == strip_seconds(clean.records)
        assert ("retry", "crash") in event_kinds(result)
        assert result.failures == []

    def test_hung_worker_is_killed_and_cell_retried(self, tmp_path, monkeypatch):
        plan = FaultPlan((Fault(site="cell", op="hang", seconds=30.0,
                                match={"seed": 1}, once="hang-1"),),
                         marker_dir=str(tmp_path))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        policy = RetryPolicy(max_attempts=2, cell_timeout=1.0)
        result = BatchRunner(workers=2, retry=policy).run(TASK, CELLS)
        monkeypatch.delenv(faults.ENV_VAR)
        assert strip_seconds(result.records) == strip_seconds(clean_run().records)
        assert ("retry", "timeout") in event_kinds(result)

    def test_persistent_error_records_and_finishes_other_cells(self, monkeypatch):
        plan = FaultPlan((Fault(site="cell", match={"seed": 3}),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        policy = RetryPolicy(max_attempts=2, on_error="record")
        result = BatchRunner(workers=2, retry=policy).run(TASK, CELLS)
        assert len(result.failures) == 1
        failed = result.failures[0]
        assert failed["seed"] == 3 and failed["error"]["attempts"] == 2
        assert failed["error"]["type"] == "InjectedFault"
        good = [r for r in result.records if "error" not in r]
        assert len(good) == 3

    def test_persistent_error_default_policy_raises_natively(self, monkeypatch):
        plan = FaultPlan((Fault(site="cell", match={"seed": 0}, message="boom"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        with pytest.raises(InjectedFault, match="boom"):
            BatchRunner(workers=2).run(TASK, CELLS)


# --------------------------------------------------------------------------- #
# Graceful degradation: poisoned jit tier lands on array
# --------------------------------------------------------------------------- #


class TestJitDegradation:
    def test_serial_poisoned_jit_downgrades_with_array_parity(self):
        faults.install(FaultPlan((Fault(site="jit"),)))
        result = BatchRunner(backend="jit").run(TASK, CELLS)
        faults.clear()
        degrades = [e for e in result.events if e["event"] == "degrade"]
        assert len(degrades) == len(CELLS)
        assert all(e["from"] == "jit" and e["to"] == "array" for e in degrades)
        assert all(r["backend"] == "array" for r in result.records)
        assert strip_seconds(result.records) == strip_seconds(clean_run("array").records)

    def test_parallel_poisoned_jit_downgrades_with_array_parity(self, monkeypatch):
        plan = FaultPlan((Fault(site="jit"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        result = BatchRunner(backend="jit", workers=2).run(TASK, CELLS)
        monkeypatch.delenv(faults.ENV_VAR)
        degrades = [e for e in result.events if e["event"] == "degrade"]
        assert len(degrades) == len(CELLS)
        assert all(r["backend"] == "array" for r in result.records)
        assert strip_seconds(result.records) == strip_seconds(clean_run("array").records)


# --------------------------------------------------------------------------- #
# Sink-write failures: the parent side of the plane
# --------------------------------------------------------------------------- #


class TestSinkWriteFaults:
    @pytest.mark.parametrize("backend", ["array", "jit"])
    def test_failed_write_resumes_byte_identical(self, tmp_path, backend):
        path = tmp_path / f"out-{backend}.jsonl"
        faults.install(FaultPlan((Fault(site="sink-write", nth=3),)))
        sink = JsonlSink(path)
        with pytest.raises(InjectedFault):
            try:
                BatchRunner(backend=backend).run(TASK, CELLS, sink=sink)
            finally:
                sink.close()
        faults.clear()
        persisted = [json.loads(line) for line in path.read_text().splitlines()
                     if "record" in json.loads(line)]
        assert len(persisted) == 2  # the third write died before the append
        with JsonlSink(path, resume=True) as sink:
            result = BatchRunner(backend=backend).run(TASK, CELLS, sink=sink)
        assert sink.written == 2  # exactly the lost cells were re-run
        assert strip_seconds(result.records) == strip_seconds(clean_run(backend).records)


# --------------------------------------------------------------------------- #
# The spec layer: RetryPolicy on Run, hashed only when non-default
# --------------------------------------------------------------------------- #


SPEC_DOC = {
    "problems": [{"graph": {"family": "gnp", "n": 40, "delta": 6}}],
    "run": {"algorithm": "delta_plus_one", "backend": "array"},
}


class TestSpecIntegration:
    def test_default_policy_keeps_every_existing_spec_hash(self):
        bare = spec_hash(JobSpec.from_dict(SPEC_DOC))
        explicit = {**SPEC_DOC,
                    "run": {**SPEC_DOC["run"], "retry": RetryPolicy().to_dict()}}
        assert spec_hash(JobSpec.from_dict(explicit)) == bare
        assert "retry" not in JobSpec.from_dict(explicit).to_dict()["run"]

    def test_non_default_policy_round_trips_and_changes_the_hash(self):
        policy = RetryPolicy(max_attempts=3, cell_timeout=5.0, on_error="record")
        doc = {**SPEC_DOC, "run": {**SPEC_DOC["run"], "retry": policy.to_dict()}}
        job = JobSpec.from_dict(doc)
        assert job.run.retry == policy
        assert job.to_dict()["run"]["retry"] == policy.to_dict()
        assert spec_hash(job) != spec_hash(JobSpec.from_dict(SPEC_DOC))
        assert JobSpec.from_dict(job.to_dict()).run.retry == policy

    def test_bad_retry_policy_is_a_spec_error(self):
        doc = {**SPEC_DOC,
               "run": {**SPEC_DOC["run"], "retry": {"max_attempts": 0}}}
        with pytest.raises(SpecError):
            JobSpec.from_dict(doc)


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #


def test_cli_batch_on_error_record_exits_nonzero(monkeypatch, capsys):
    from repro.cli import main

    plan = FaultPlan((Fault(site="cell", match={"seed": 1}),))
    monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
    code = main(["batch", "--task", TASK, "--family", "gnp", "-n", "40",
                 "--delta", "6", "--seeds", "2", "--retries", "1",
                 "--on-error", "record"])
    assert code == 1
    captured = capsys.readouterr()
    assert "FAILED CELLS" in captured.err
    assert "retried 1 failing attempt" in captured.out


def test_cli_rejects_bad_retry_flags():
    from repro.cli import main

    with pytest.raises(SystemExit, match="bad retry options"):
        main(["batch", "--task", TASK, "--retries", "-2"])
