"""Tests for low-intersecting set families (Linial's combinatorial core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.set_families import (
    greedy_low_intersecting_family,
    max_pairwise_intersection,
    polynomial_set_family,
)


class TestPolynomialFamily:
    def test_sets_have_size_q(self):
        family = polynomial_set_family(m=20, degree_bound=2, q=7)
        assert len(family) == 20
        assert all(len(s) == 7 for s in family)

    def test_pairwise_intersection_at_most_f(self):
        family = polynomial_set_family(m=30, degree_bound=3, q=11)
        assert max_pairwise_intersection(family) <= 3

    def test_ground_set_is_grid(self):
        family = polynomial_set_family(m=5, degree_bound=1, q=5)
        for s in family:
            for x, y in s:
                assert 0 <= x < 5 and 0 <= y < 5

    def test_linial_style_size(self):
        # For m <= q^(f+1) the family always exists; this is the low-intersecting
        # family behind Corollary 1.2(1).
        q, f = 13, 2
        family = polynomial_set_family(m=q ** (f + 1), degree_bound=f, q=q)
        assert len(family) == q ** 3

    @settings(max_examples=25, deadline=None)
    @given(f=st.integers(min_value=1, max_value=3), m=st.integers(min_value=2, max_value=60))
    def test_property_intersection_bound(self, f, m):
        q = 11
        if m > q ** (f + 1):
            m = q ** (f + 1)
        family = polynomial_set_family(m=m, degree_bound=f, q=q)
        assert max_pairwise_intersection(family) <= f


class TestGreedyFamily:
    def test_respects_intersection_bound(self):
        family = greedy_low_intersecting_family(
            m=12, set_size=5, ground_size=60, max_intersection=2, seed=1
        )
        assert len(family) == 12
        assert max_pairwise_intersection(family) <= 2

    def test_reproducible(self):
        a = greedy_low_intersecting_family(8, 4, 40, 2, seed=3)
        b = greedy_low_intersecting_family(8, 4, 40, 2, seed=3)
        assert a == b

    def test_infeasible_parameters_raise(self):
        with pytest.raises(RuntimeError):
            greedy_low_intersecting_family(
                m=50, set_size=9, ground_size=10, max_intersection=0, seed=0, max_attempts=50
            )

    def test_set_size_larger_than_ground_rejected(self):
        with pytest.raises(ValueError):
            greedy_low_intersecting_family(3, 11, 10, 2)


class TestMaxPairwiseIntersection:
    def test_trivial_cases(self):
        assert max_pairwise_intersection([]) == 0
        assert max_pairwise_intersection([{1, 2}]) == 0

    def test_simple(self):
        assert max_pairwise_intersection([{1, 2, 3}, {2, 3, 4}, {5}]) == 2
