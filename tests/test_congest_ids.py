"""Tests for ID assignment and input-coloring helpers."""

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.ids import (
    InputColoringError,
    assign_unique_ids,
    distinct_input_coloring,
    greedy_coloring,
    ids_as_coloring,
    random_proper_coloring,
    validate_proper_coloring,
)
from repro.verify.coloring import is_proper_coloring


class TestUniqueIds:
    def test_identity_ids(self):
        g = generators.ring(8)
        ids = assign_unique_ids(g)
        assert ids.tolist() == list(range(8))

    def test_random_ids_unique_and_in_space(self):
        g = generators.ring(10)
        ids = assign_unique_ids(g, id_space=1000, seed=3)
        assert np.unique(ids).size == 10
        assert ids.max() < 1000

    def test_random_ids_reproducible(self):
        g = generators.ring(10)
        assert np.array_equal(assign_unique_ids(g, seed=1), assign_unique_ids(g, seed=1))

    def test_id_space_too_small(self):
        g = generators.ring(10)
        with pytest.raises(InputColoringError):
            assign_unique_ids(g, id_space=5)
        with pytest.raises(InputColoringError):
            assign_unique_ids(g, id_space=5, seed=1)

    def test_ids_as_coloring(self):
        ids = np.array([4, 0, 9])
        colors, m = ids_as_coloring(ids)
        assert m == 10
        assert colors.tolist() == [4, 0, 9]

    def test_ids_as_coloring_out_of_range(self):
        with pytest.raises(InputColoringError):
            ids_as_coloring(np.array([4, 0, 9]), id_space=5)


class TestGreedyColoring:
    def test_greedy_is_proper_and_small(self):
        g = generators.random_regular(40, 6, seed=2)
        colors = greedy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert colors.max() <= g.max_degree

    def test_greedy_custom_order(self):
        g = generators.ring(6)
        colors = greedy_coloring(g, order=np.array([5, 4, 3, 2, 1, 0]))
        assert is_proper_coloring(g, colors)

    def test_greedy_invalid_order(self):
        g = generators.ring(4)
        with pytest.raises(InputColoringError):
            greedy_coloring(g, order=np.array([0, 1, 2, 2]))


class TestManufacturedColorings:
    def test_random_proper_coloring(self):
        g = generators.gnp(60, 0.1, seed=4)
        colors, m = random_proper_coloring(g, num_colors=500, seed=4)
        assert is_proper_coloring(g, colors)
        assert colors.max() < m == 500

    def test_random_proper_coloring_defaults_to_greedy_count(self):
        g = generators.ring(9)
        colors, m = random_proper_coloring(g, seed=1)
        assert m <= g.max_degree + 1

    def test_random_proper_coloring_too_few_colors(self):
        g = generators.complete_graph(5)
        with pytest.raises(InputColoringError):
            random_proper_coloring(g, num_colors=3, seed=0)

    def test_distinct_input_coloring(self):
        g = generators.random_regular(30, 4, seed=1)
        colors = distinct_input_coloring(g, 200, seed=1)
        assert np.unique(colors).size == 30
        assert colors.max() < 200
        assert is_proper_coloring(g, colors)

    def test_distinct_input_coloring_space_too_small(self):
        g = generators.ring(10)
        with pytest.raises(InputColoringError):
            distinct_input_coloring(g, 9)


class TestValidation:
    def test_validate_accepts_proper(self):
        g = generators.ring(6)
        validate_proper_coloring(g, np.array([0, 1, 0, 1, 0, 1]), m=2)

    def test_validate_rejects_monochromatic_edge(self):
        g = generators.path(3)
        with pytest.raises(InputColoringError, match="monochromatic"):
            validate_proper_coloring(g, np.array([0, 0, 1]))

    def test_validate_rejects_wrong_shape(self):
        g = generators.path(3)
        with pytest.raises(InputColoringError):
            validate_proper_coloring(g, np.array([0, 1]))

    def test_validate_rejects_out_of_range(self):
        g = generators.path(3)
        with pytest.raises(InputColoringError):
            validate_proper_coloring(g, np.array([0, 1, 5]), m=3)
        with pytest.raises(InputColoringError):
            validate_proper_coloring(g, np.array([0, -1, 1]))
