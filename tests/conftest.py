"""Shared fixtures and an import-path fallback for the offline environment."""

from __future__ import annotations

import pathlib
import sys

# Fallback so the suite also runs from a fresh checkout without an editable
# install (the execution environment has no network, see setup.py).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.ids import distinct_input_coloring, random_proper_coloring


@pytest.fixture
def ring12() -> Graph:
    return generators.ring(12)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph (3-regular, girth 5) — a useful non-trivial fixture."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes)


@pytest.fixture
def random_regular8() -> Graph:
    return generators.random_regular(64, 8, seed=7)


@pytest.fixture
def gnp_graph() -> Graph:
    return generators.gnp(80, 0.08, seed=3)


@pytest.fixture
def small_graph_zoo(ring12, petersen, random_regular8, gnp_graph) -> list[Graph]:
    """A small zoo of structurally different graphs for invariant tests."""
    return [
        ring12,
        petersen,
        random_regular8,
        gnp_graph,
        generators.star(9),
        generators.complete_graph(6),
        generators.grid(5, 6),
        generators.random_tree(40, seed=5),
        generators.empty_graph(5),
        generators.path(2),
    ]


def make_input_coloring(graph: Graph, m: int | None = None, seed: int = 0):
    """A proper m-coloring for tests: distinct colors when the space allows it."""
    delta = max(1, graph.max_degree)
    if m is None:
        m = max(delta + 1, delta ** 4, graph.n)
    if m >= graph.n:
        return distinct_input_coloring(graph, m, seed=seed), m
    colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return colors, m


@pytest.fixture
def input_coloring_factory():
    return make_input_coloring


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running exhaustive checks")
