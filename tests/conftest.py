"""Shared fixtures and an import-path fallback for the offline environment."""

from __future__ import annotations

import pathlib
import sys

# Fallback so the suite also runs from a fresh checkout without an editable
# install (the execution environment has no network, see setup.py).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

import pytest

from repro.congest import generators
from repro.congest.graph import Graph

from helpers import make_input_coloring  # noqa: E402 - needs the sys.path fallback above


@pytest.fixture
def ring12() -> Graph:
    return generators.ring(12)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph (3-regular, girth 5) — a useful non-trivial fixture."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes)


@pytest.fixture
def random_regular8() -> Graph:
    return generators.random_regular(64, 8, seed=7)


@pytest.fixture
def gnp_graph() -> Graph:
    return generators.gnp(80, 0.08, seed=3)


@pytest.fixture
def small_graph_zoo(ring12, petersen, random_regular8, gnp_graph) -> list[Graph]:
    """A small zoo of structurally different graphs for invariant tests."""
    return [
        ring12,
        petersen,
        random_regular8,
        gnp_graph,
        generators.star(9),
        generators.complete_graph(6),
        generators.grid(5, 6),
        generators.random_tree(40, seed=5),
        generators.empty_graph(5),
        generators.path(2),
    ]


@pytest.fixture
def input_coloring_factory():
    return make_input_coloring


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running exhaustive checks")
