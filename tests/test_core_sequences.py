"""Tests for the color sequences of Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import MotherParameters
from repro.core.sequences import batch_positions, build_sequence


@pytest.fixture
def params():
    return MotherParameters.derive(m=8 ** 4, delta=8, d=0, k=3)


class TestBatches:
    def test_batches_cover_field_without_overlap(self, params):
        seen = []
        for j in range(params.num_batches):
            seen.extend(batch_positions(params, j).tolist())
        assert seen == list(range(params.q))

    def test_batch_sizes(self, params):
        sizes = [batch_positions(params, j).size for j in range(params.num_batches)]
        assert all(s == params.k for s in sizes[:-1])
        assert 1 <= sizes[-1] <= params.k

    def test_batch_beyond_end_is_empty(self, params):
        assert batch_positions(params, params.num_batches).size == 0

    def test_first_coordinates_distinct_within_batch(self, params):
        # Within one batch all first coordinates are distinct — the key fact
        # that lets two neighbors conflict only at the same position.
        for j in range(params.num_batches):
            xs = batch_positions(params, j)
            firsts = (xs % params.k).tolist()
            assert len(set(firsts)) == len(firsts)


class TestSequence:
    def test_values_match_polynomial(self, params):
        seq = build_sequence(17, params)
        poly = seq.polynomial
        assert all(seq.values[x] == poly(x) for x in range(params.q))

    def test_tuple_and_encoding_consistent(self, params):
        seq = build_sequence(5, params)
        for x in (0, 1, params.q - 1):
            first, value = seq.tuple_at(x)
            assert first == x % params.k
            assert seq.encoded_at(x) == params.encode_color(x, value)

    def test_encoded_sequence_vectorized(self, params):
        seq = build_sequence(123, params)
        encoded = seq.encoded_sequence()
        assert encoded.shape == (params.q,)
        assert all(encoded[x] == seq.encoded_at(x) for x in range(0, params.q, 7))

    def test_same_color_same_sequence(self, params):
        assert np.array_equal(build_sequence(9, params).values, build_sequence(9, params).values)

    def test_out_of_range_color_rejected(self, params):
        with pytest.raises(ValueError):
            build_sequence(params.m, params)
        with pytest.raises(ValueError):
            build_sequence(-1, params)

    def test_batch_listing(self, params):
        seq = build_sequence(2, params)
        batch = seq.batch(0)
        assert len(batch) == params.k
        for x, first, value in batch:
            assert first == x % params.k
            assert value == seq.values[x]


class TestConflictStructure:
    @settings(max_examples=40, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=4095),
        j=st.integers(min_value=0, max_value=4095),
    )
    def test_two_sequences_share_few_positions(self, i, j):
        # Distinct sequences collide (same tuple at the same position) at most f
        # times over the whole sequence — the essence of the conflict analysis.
        params = MotherParameters.derive(m=8 ** 4, delta=8, d=0, k=4)
        si = build_sequence(i, params)
        sj = build_sequence(j, params)
        collisions = int(np.count_nonzero(si.values == sj.values))
        if i == j:
            assert collisions == params.q
        else:
            assert collisions <= params.f

    def test_fixed_color_blocked_at_most_f_times(self):
        # A fixed adopted color (x0, y0) can collide with another node's later
        # trials at most f times (p(x) = y0 has at most f solutions).
        params = MotherParameters.derive(m=8 ** 4, delta=8, d=0, k=4)
        seq = build_sequence(4095, params)
        for y0 in (0, 1, 5):
            hits = int(np.count_nonzero(seq.values == y0))
            assert hits <= max(params.f, 1) or seq.polynomial.degree == 0
