"""Tests for the Workspace scratch-buffer arena and its use by the kernels."""

import numpy as np

from repro.congest import generators
from repro.congest.ids import delta4_input_coloring
from repro.core.vectorized import run_mother_algorithm_vectorized
from repro.core.workspace import Workspace


class TestWorkspace:
    def test_take_reuses_storage(self):
        ws = Workspace()
        a = ws.take("buf", 10)
        a[:] = 7
        b = ws.take("buf", 6)
        assert b.base is a.base or b.base is not None
        assert np.array_equal(b, np.full(6, 7))  # same storage, stale contents

    def test_grow_only_doubling(self):
        ws = Workspace()
        ws.take("buf", 4)
        small_nbytes = ws.nbytes()
        ws.take("buf", 5)  # must grow (to at least 2x the old capacity)
        assert ws.nbytes() >= 2 * small_nbytes
        grown = ws.nbytes()
        ws.take("buf", 3)  # shrinking requests never reallocate
        assert ws.nbytes() == grown

    def test_dtype_switch_reallocates(self):
        ws = Workspace()
        a = ws.take("buf", 8, np.int64)
        b = ws.take("buf", 8, bool)
        assert b.dtype == np.bool_
        assert a.dtype == np.int64

    def test_zeros_and_full(self):
        ws = Workspace()
        ws.take("z", 5)[:] = 9
        assert np.array_equal(ws.zeros("z", 5), np.zeros(5, dtype=np.int64))
        assert np.array_equal(ws.full("z", 4, -1), np.full(4, -1, dtype=np.int64))

    def test_gather(self):
        ws = Workspace()
        src = np.array([10, 20, 30, 40])
        idx = np.array([3, 0, 3])
        assert np.array_equal(ws.gather("g", src, idx), np.array([40, 10, 40]))
        # reuse with a shorter index: same buffer, right length
        assert np.array_equal(ws.gather("g", src, idx[:1]), np.array([40]))


class TestCrossCallReuse:
    """The documented ``workspace=`` reuse mode must be bit-identical."""

    def test_shared_workspace_across_calls_is_bit_identical(self):
        ws = Workspace()
        for seed in (0, 1, 2):
            graph = generators.random_regular(80, 6, seed=seed)
            colors, m = delta4_input_coloring(graph, seed=seed)
            fresh = run_mother_algorithm_vectorized(graph, colors, m)
            reused = run_mother_algorithm_vectorized(graph, colors, m, workspace=ws)
            assert np.array_equal(reused.colors, fresh.colors)
            assert np.array_equal(reused.parts, fresh.parts)
            assert reused.rounds == fresh.rounds

    def test_shared_workspace_across_differing_graph_sizes(self):
        ws = Workspace()
        results = []
        for n in (120, 30, 90):  # shrink then grow: exercises stale contents
            graph = generators.gnp(n, 0.1, seed=n)
            colors, m = delta4_input_coloring(graph, seed=1)
            reused = run_mother_algorithm_vectorized(graph, colors, m, workspace=ws)
            fresh = run_mother_algorithm_vectorized(graph, colors, m)
            assert np.array_equal(reused.colors, fresh.colors)
            results.append(reused)
        assert all(r.colors.size for r in results)
