"""Tests for Linial's iterated color reduction from unique IDs."""

import numpy as np
import pytest

from repro.congest import generators
from repro.core.linial import iterated_color_reduction, linial_coloring
from repro.verify.coloring import assert_proper_coloring


class TestLinialColoring:
    def test_reaches_delta_squared_regime(self):
        g = generators.random_regular(200, 6, seed=3)
        res = linial_coloring(g, seed=3, id_space=10 ** 9)
        assert_proper_coloring(g, res.colors)
        assert res.color_space_size <= 256 * g.max_degree ** 2

    def test_round_count_is_log_star_like(self):
        # From an id space of 10^9 the reduction stabilises within a handful of
        # iterations (log* behaviour), not dozens.
        g = generators.random_regular(100, 6, seed=1)
        res = linial_coloring(g, seed=1, id_space=10 ** 9)
        assert 1 <= res.rounds <= 6

    def test_identity_ids_default(self):
        g = generators.ring(64)
        res = linial_coloring(g)
        assert_proper_coloring(g, res.colors)
        assert res.color_space_size <= 256 * g.max_degree ** 2

    def test_history_is_decreasing(self):
        g = generators.random_regular(150, 8, seed=2)
        res = linial_coloring(g, seed=2, id_space=10 ** 12)
        history = res.metadata["color_space_history"]
        assert all(a > b for a, b in zip(history, history[1:]))

    def test_duplicate_ids_rejected(self):
        g = generators.ring(5)
        with pytest.raises(ValueError):
            linial_coloring(g, ids=np.array([1, 1, 2, 3, 4]))

    def test_custom_target(self):
        g = generators.random_regular(100, 4, seed=4)
        res = linial_coloring(g, seed=4, target_colors=10_000)
        assert res.color_space_size <= 10_000


class TestIteratedReduction:
    def test_already_small_input_is_unchanged(self):
        g = generators.ring(10)
        colors = np.arange(10) % 3
        res = iterated_color_reduction(g, colors, m=3)
        assert res.rounds == 0
        assert np.array_equal(res.colors, colors)

    def test_single_step_from_moderate_space(self):
        g = generators.random_regular(60, 4, seed=6)
        colors = np.random.default_rng(6).permutation(60).astype(np.int64)
        res = iterated_color_reduction(g, colors, m=60, target_colors=50)
        assert_proper_coloring(g, res.colors)
        assert res.color_space_size < 60 or res.rounds == 0

    def test_vectorized_path(self):
        g = generators.random_regular(100, 6, seed=9)
        a = linial_coloring(g, seed=9, id_space=10 ** 6)
        b = linial_coloring(g, seed=9, id_space=10 ** 6, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
