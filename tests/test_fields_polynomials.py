"""Tests for polynomials over F_q, including a property-based check of Lemma 2.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.polynomials import (
    PolynomialFq,
    coefficients_from_index,
    enumerate_polynomials,
    intersection_count,
    polynomial_from_index,
)
from repro.fields.primes import primes_up_to

SMALL_PRIMES = primes_up_to(60)[2:]  # skip 2, 3 to keep fields interesting


class TestConstruction:
    def test_coefficients_from_index_base_q_digits(self):
        assert coefficients_from_index(0, 2, 5) == (0, 0, 0)
        assert coefficients_from_index(7, 2, 5) == (2, 1, 0)
        assert coefficients_from_index(124, 2, 5) == (4, 4, 4)

    def test_coefficients_from_index_out_of_range(self):
        with pytest.raises(ValueError):
            coefficients_from_index(125, 2, 5)
        with pytest.raises(ValueError):
            coefficients_from_index(-1, 2, 5)

    def test_distinct_indices_distinct_polynomials(self):
        polys = enumerate_polynomials(125, 2, 5)
        assert len({p.coefficients for p in polys}) == 125

    def test_enumerate_too_many(self):
        with pytest.raises(ValueError):
            enumerate_polynomials(126, 2, 5)

    def test_non_prime_field_rejected(self):
        with pytest.raises(ValueError):
            PolynomialFq((1, 2), 6)

    def test_coefficient_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PolynomialFq((1, 7), 5)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PolynomialFq((), 5)

    def test_degree_vs_degree_bound(self):
        p = PolynomialFq((3, 0, 0), 5)
        assert p.degree_bound == 2
        assert p.degree == 0
        q = PolynomialFq((0, 0, 2), 5)
        assert q.degree == 2


class TestEvaluation:
    def test_pointwise_matches_naive(self):
        p = PolynomialFq((1, 2, 3), 7)
        for x in range(7):
            assert p(x) == (1 + 2 * x + 3 * x * x) % 7

    def test_evaluate_all_matches_pointwise(self):
        p = polynomial_from_index(123, 3, 11)
        values = p.evaluate_all()
        assert values.shape == (11,)
        assert all(values[x] == p(x) for x in range(11))

    def test_evaluate_many(self):
        p = PolynomialFq((2, 1), 13)
        xs = np.array([0, 5, 25])
        assert p.evaluate_many(xs).tolist() == [p(0), p(5), p(25 % 13)]


class TestLemma21:
    """Lemma 2.1: distinct polynomials of degree <= f agree on at most f points."""

    @settings(max_examples=150, deadline=None)
    @given(
        q=st.sampled_from(SMALL_PRIMES),
        f=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_intersection_bound(self, q, f, data):
        limit = min(q ** (f + 1), 10_000)
        i = data.draw(st.integers(min_value=0, max_value=limit - 1))
        j = data.draw(st.integers(min_value=0, max_value=limit - 1))
        p1 = polynomial_from_index(i, f, q)
        p2 = polynomial_from_index(j, f, q)
        inter = intersection_count(p1, p2)
        if i == j:
            assert inter == q
        else:
            assert inter <= max(p1.degree, p2.degree, 0)
            assert inter <= f

    def test_constant_polynomials_never_meet(self):
        p1 = PolynomialFq((3,), 11)
        p2 = PolynomialFq((5,), 11)
        assert intersection_count(p1, p2) == 0

    def test_fixed_value_hit_at_most_f_times(self):
        # A degree-f polynomial takes any fixed value at most f times (used to
        # bound conflicts with already-colored neighbors).
        q = 13
        for idx in range(40):
            p = polynomial_from_index(idx + q, 2, q)  # degree >= 1 region of the enumeration
            values = p.evaluate_all()
            if p.degree == 0:
                continue
            counts = np.bincount(values, minlength=q)
            assert counts.max() <= p.degree + (0 if p.degree else q)
            assert counts.max() <= 2

    def test_mismatched_fields_rejected(self):
        with pytest.raises(ValueError):
            intersection_count(PolynomialFq((1,), 5), PolynomialFq((1,), 7))
