"""Tests for the Corollary 1.2 parameter settings."""

import numpy as np
import pytest

from helpers import make_input_coloring
from repro.analysis import bounds
from repro.congest import generators
from repro.core import corollaries
from repro.verify.coloring import assert_defective_coloring, assert_proper_coloring, max_defect
from repro.verify.orientation import assert_outdegree_orientation


@pytest.fixture(scope="module")
def workload():
    graph = generators.random_regular(80, 8, seed=13)
    colors, m = make_input_coloring(graph, seed=13)
    return graph, colors, m


class TestLinialOneRound:
    def test_one_round_and_color_bound(self, workload):
        graph, colors, m = workload
        res = corollaries.linial_color_reduction(graph, colors, m)
        assert res.rounds == 1
        assert_proper_coloring(graph, res.colors)
        assert res.color_space_size <= bounds.corollary12_1_colors(graph.max_degree)

    def test_vectorized_agrees(self, workload):
        graph, colors, m = workload
        a = corollaries.linial_color_reduction(graph, colors, m)
        b = corollaries.linial_color_reduction(graph, colors, m, backend="array")
        assert np.array_equal(a.colors, b.colors)


class TestKDeltaColoring:
    @pytest.mark.parametrize("k", [1, 2, 4, 16])
    def test_color_and_round_bounds(self, workload, k):
        graph, colors, m = workload
        delta = graph.max_degree
        res = corollaries.kdelta_coloring(graph, colors, m, k=k)
        assert_proper_coloring(graph, res.colors)
        assert res.color_space_size <= bounds.corollary12_2_colors(delta, k)
        assert res.rounds <= bounds.corollary12_2_rounds(delta, k)

    def test_rounds_monotone_in_k(self, workload):
        graph, colors, m = workload
        rounds = [corollaries.kdelta_coloring(graph, colors, m, k=k, backend="array").rounds
                  for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(rounds, rounds[1:]))


class TestDeltaSquared:
    def test_constant_rounds(self, workload):
        graph, colors, m = workload
        res = corollaries.delta_squared_coloring(graph, colors, m)
        assert res.rounds <= 256
        assert_proper_coloring(graph, res.colors)


class TestOutdegreeColoring:
    @pytest.mark.parametrize("beta", [1, 2, 4])
    def test_orientation_bound(self, workload, beta):
        graph, colors, m = workload
        res = corollaries.outdegree_coloring(graph, colors, m, beta=beta)
        assert_outdegree_orientation(graph, res.colors, res.orientation, beta)
        assert res.rounds <= bounds.corollary12_4_rounds(graph.max_degree, beta) + 1

    def test_invalid_beta(self, workload):
        graph, colors, m = workload
        with pytest.raises(ValueError):
            corollaries.outdegree_coloring(graph, colors, m, beta=0)
        with pytest.raises(ValueError):
            corollaries.outdegree_coloring(graph, colors, m, beta=graph.max_degree)


class TestDefectiveColorings:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_one_round_defect_bound(self, workload, d):
        graph, colors, m = workload
        res = corollaries.defective_coloring_one_round(graph, colors, m, d=d)
        assert res.rounds == 1
        assert_defective_coloring(graph, res.colors, d=d)

    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_multi_round_defect_bound(self, workload, d):
        graph, colors, m = workload
        res = corollaries.defective_coloring(graph, colors, m, d=d)
        assert_defective_coloring(graph, res.colors, d=d)
        assert res.rounds <= bounds.corollary12_6_rounds(graph.max_degree, d) + 1

    def test_pair_encoding_roundtrip(self, workload):
        graph, colors, m = workload
        res = corollaries.defective_coloring(graph, colors, m, d=2)
        stride = res.metadata["pair_encoding_stride"]
        base_colors = res.colors // stride
        parts = res.colors % stride
        assert np.array_equal(parts, res.parts)
        assert base_colors.max() < res.metadata["base_color_space"]

    def test_invalid_d(self, workload):
        graph, colors, m = workload
        with pytest.raises(ValueError):
            corollaries.defective_coloring(graph, colors, m, d=0)
        with pytest.raises(ValueError):
            corollaries.defective_coloring_one_round(graph, colors, m, d=graph.max_degree)

    def test_defect_can_exceed_zero_but_never_d(self):
        # A clique forces actual defects: with d = 2 some vertices must share
        # colors, but never more than 2 same-colored neighbors.
        g = generators.complete_graph(8)
        colors, m = make_input_coloring(g, seed=3)
        res = corollaries.defective_coloring_one_round(g, colors, m, d=2)
        assert 0 <= max_defect(g, res.colors) <= 2


class TestRegisteredRunnerGuarantees:
    def test_defect_bound_is_enforced_not_just_recorded(self):
        # the registered runners' guarantee strings promise a *hard* invariant;
        # a violating coloring must raise, not ship as a record.
        from repro.core.corollaries import _checked_defect

        ring = generators.ring(6)
        monochrome = np.zeros(ring.n, dtype=np.int64)  # defect 2 on a ring
        with pytest.raises(AssertionError, match="max defect"):
            _checked_defect(ring, monochrome, 1)
        assert _checked_defect(ring, monochrome, 2) == 2
