"""Merge validation and canonical output: `repro merge` / merge_shards.

The merge contract: k disjoint, complete shard files of one sweep join into
a file indistinguishable from a single-box run (byte-identical modulo the
wall-clock `seconds` field), and every violation — overlap, missing shard,
hash drift, torn tail, failed cell — fails loudly before anything is written.
"""

import json

import pytest

from repro.engine import BatchRunner
from repro.engine.merge import MergeError, merge_shards
from repro.engine.sink import JsonlSink, open_sink

CELLS = BatchRunner.grid("random_regular", (30, 40), (4, 6), seeds=(0, 1))
PARAMS = {"k": 1}


def run_shards(tmp_path, of, backend="array", suffix=".jsonl", stem="s",
               cells=CELLS):
    """Write the `of` shard files of one sweep; return their paths."""
    runner = BatchRunner(backend=backend)
    paths = []
    for index in range(of):
        path = tmp_path / f"{stem}{index}{suffix}"
        with open_sink(path) as sink:
            runner.run("kdelta", cells, params_grid=[PARAMS], sink=sink,
                       shard=(index, of))
        paths.append(path)
    return paths


def run_full(tmp_path, backend="array", name="full.jsonl", cells=CELLS):
    path = tmp_path / name
    with open_sink(path) as sink:
        BatchRunner(backend=backend).run("kdelta", cells, params_grid=[PARAMS],
                                         sink=sink)
    return path


def normalized(path):
    """The file's lines, parsed, with wall-clock fields dropped."""
    out = []
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        if "record" in obj:
            obj["record"].pop("seconds", None)
        out.append(obj)
    return out


class TestHappyPath:
    @pytest.mark.parametrize("of", [2, 3])
    def test_merged_equals_unsharded_run(self, tmp_path, of):
        shards = run_shards(tmp_path, of)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(shards, merged)
        assert result.cells == len(CELLS)
        assert result.shards == of
        assert normalized(merged) == normalized(run_full(tmp_path))

    def test_single_shard_identity(self, tmp_path):
        (shard,) = run_shards(tmp_path, 1)
        merged = tmp_path / "merged.jsonl"
        merge_shards([shard], merged)
        assert normalized(merged) == normalized(run_full(tmp_path))

    def test_jit_backend_round_trip(self, tmp_path):
        cells = CELLS[:4]
        shards = run_shards(tmp_path, 2, backend="jit", cells=cells)
        merged = tmp_path / "merged.jsonl"
        merge_shards(shards, merged)
        assert normalized(merged) == normalized(
            run_full(tmp_path, backend="jit", cells=cells))

    def test_input_order_irrelevant(self, tmp_path):
        shards = run_shards(tmp_path, 3)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        merge_shards(shards, a)
        merge_shards(list(reversed(shards)), b)
        assert a.read_text() == b.read_text()

    def test_manifest_is_canonical_single_box(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(shards, merged)
        manifest = json.loads(merged.read_text().splitlines()[0])["manifest"]
        assert manifest["shard"] is None
        assert manifest["workers"] == 1
        assert manifest["cells"] == len(CELLS)
        assert result.manifest.grid_hash == manifest["grid_hash"]

    def test_csv_shards_merge(self, tmp_path):
        shards = run_shards(tmp_path, 2, suffix=".csv")
        merged = tmp_path / "merged.csv"
        result = merge_shards(shards, merged)
        assert result.cells == len(CELLS)
        full = run_full(tmp_path)
        merged_rows = merged.read_text().splitlines()
        assert len(merged_rows) == len(CELLS) + 1  # header + one row per cell
        sidecar = json.loads(
            (tmp_path / "merged.csv.manifest.json").read_text())
        assert sidecar["shard"] is None
        full_manifest = json.loads(full.read_text().splitlines()[0])["manifest"]
        assert sidecar["grid_hash"] == full_manifest["grid_hash"]

    def test_merged_file_resumes_with_zero_cells(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        merged = tmp_path / "merged.jsonl"
        merge_shards(shards, merged)
        computed = []

        def progress(done, total, cell, record):
            if cell is not None:
                computed.append(cell)

        with JsonlSink(merged, resume=True) as sink:
            BatchRunner(backend="array").run("kdelta", CELLS,
                                            params_grid=[PARAMS], sink=sink,
                                            progress=progress)
        assert computed == []

    def test_events_carried_over_tagged(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        # Append a provenance event line to shard 1 in the sink's format.
        with shards[1].open("a") as handle:
            handle.write(json.dumps(
                {"event": {"kind": "test-event", "detail": "x"}},
                separators=(",", ":")) + "\n")
        merged = tmp_path / "merged.jsonl"
        result = merge_shards(shards, merged)
        assert result.events == 1
        events = [json.loads(l)["event"] for l in merged.read_text().splitlines()
                  if "event" in json.loads(l)]
        manifest = json.loads(shards[1].read_text().splitlines()[0])["manifest"]
        assert events == [{"shard": manifest["shard"]["index"],
                           "kind": "test-event", "detail": "x"}]


class TestValidation:
    def test_overlapping_shards_rejected(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        with pytest.raises(MergeError, match="overlap"):
            merge_shards([shards[0], shards[0]], tmp_path / "out.jsonl")

    def test_missing_shard_rejected(self, tmp_path):
        shards = run_shards(tmp_path, 3)
        with pytest.raises(MergeError, match="missing"):
            merge_shards(shards[:2], tmp_path / "out.jsonl")

    def test_grid_hash_drift_rejected(self, tmp_path):
        other = BatchRunner.grid("random_regular", (50, 60), (4, 6), seeds=(0, 1))
        a = run_shards(tmp_path, 2, stem="a")
        b = run_shards(tmp_path, 2, stem="b", cells=other)
        with pytest.raises(MergeError, match="grid_hash"):
            merge_shards([a[0], b[1]], tmp_path / "out.jsonl")

    def test_torn_final_line_fails_coverage(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        text = shards[0].read_text()
        assert text.endswith("\n")
        shards[0].write_text(text[:-20])  # tear the last record mid-JSON
        with pytest.raises(MergeError, match="no durable record"):
            merge_shards(shards, tmp_path / "out.jsonl")
        # The torn input was not mutated by the merge attempt.
        assert shards[0].read_text() == text[:-20]

    def test_cell_error_record_refused(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        lines = shards[0].read_text().splitlines()
        failed = json.loads(lines[1])
        failed["record"] = {"error": {"kind": "crash", "type": "Boom",
                                      "message": "injected"}}
        lines[1] = json.dumps(failed, separators=(",", ":"))
        shards[0].write_text("\n".join(lines) + "\n")
        with pytest.raises(MergeError, match="CellError"):
            merge_shards(shards, tmp_path / "out.jsonl")

    def test_unsharded_file_rejected(self, tmp_path):
        full = run_full(tmp_path)
        with pytest.raises(MergeError, match="not a shard file"):
            merge_shards([full], tmp_path / "out.jsonl")

    def test_shard_count_drift_rejected(self, tmp_path):
        two = run_shards(tmp_path, 2, stem="two")
        three = run_shards(tmp_path, 3, stem="three")
        with pytest.raises(MergeError, match="shard-count drift"):
            merge_shards([two[0], three[1]], tmp_path / "out.jsonl")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(MergeError, match="not found"):
            merge_shards([tmp_path / "ghost.jsonl"], tmp_path / "out.jsonl")

    def test_empty_input_list_rejected(self, tmp_path):
        with pytest.raises(MergeError, match="at least one"):
            merge_shards([], tmp_path / "out.jsonl")

    def test_version_drift_rejected(self, tmp_path):
        shards = run_shards(tmp_path, 2)
        lines = shards[1].read_text().splitlines()
        head = json.loads(lines[0])
        head["manifest"]["version"] = "0.0.1"
        lines[0] = json.dumps(head, separators=(",", ":"))
        shards[1].write_text("\n".join(lines) + "\n")
        with pytest.raises(MergeError, match="version"):
            merge_shards(shards, tmp_path / "out.jsonl")

    def test_nothing_written_on_failure(self, tmp_path):
        shards = run_shards(tmp_path, 3)
        out = tmp_path / "out.jsonl"
        with pytest.raises(MergeError):
            merge_shards(shards[:2], out)
        assert not out.exists()
