"""Tests for primality testing and prime selection."""

import pytest
from hypothesis import given, strategies as st

from repro.fields.primes import bertrand_prime, is_prime, next_prime, prime_in_range, primes_up_to


KNOWN_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}


class TestIsPrime:
    def test_small_values(self):
        for n in range(-3, 72):
            assert is_prime(n) == (n in KNOWN_PRIMES)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_large_prime_and_composite(self):
        assert is_prime(1_000_003)
        assert not is_prime(1_000_003 * 7)
        assert is_prime(2_147_483_647)  # Mersenne prime 2^31 - 1

    @given(st.integers(min_value=2, max_value=2000))
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n ** 0.5) + 1))
        assert is_prime(n) == trial


class TestPrimeSelection:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17
        assert next_prime(-5) == 2

    def test_prime_in_range(self):
        assert prime_in_range(10, 20) == 11

    def test_prime_in_range_empty(self):
        with pytest.raises(ValueError):
            prime_in_range(24, 28)

    @given(st.integers(min_value=1, max_value=5000))
    def test_bertrand_prime_in_interval(self, x):
        p = bertrand_prime(x)
        assert is_prime(p)
        assert x < p < 2 * x or (x == 1 and p == 2)

    def test_bertrand_invalid(self):
        with pytest.raises(ValueError):
            bertrand_prime(0)

    def test_primes_up_to(self):
        assert primes_up_to(1) == []
        assert primes_up_to(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert len(primes_up_to(1000)) == 168
