"""Parity and edge-case tests for the frontier-compacted array kernels.

The compacted kernels (lazy sequence evaluation + active-subgraph gathering in
``repro.core.vectorized``, bucketed color-class removal and the Kuhn-
Wattenhofer array path in ``repro.core.reduce``, the cached edge-source array
and :meth:`Graph.incident_csr_entries` in ``repro.congest.graph``) must be
*bit-identical* to the reference implementations — these tests pin that over
random graph families and over the degenerate shapes the compaction logic has
to get right: empty graphs, isolated vertices, ``Delta = 1``, and single-batch
(everyone adopts in round 1) runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.congest.graph import Graph
from repro.congest.ids import InputColoringError
from repro.core import pipelines
from repro.core.algorithm1 import run_mother_algorithm
from repro.core.corollaries import kdelta_coloring, linial_color_reduction
from repro.core.linial import iterated_color_reduction
from repro.core.params import MotherParameters
from repro.core.reduce import kuhn_wattenhofer_reduction, remove_color_class_reduction
from repro.core.vectorized import (
    evaluate_all_sequences,
    run_mother_algorithm_vectorized,
    sequence_coefficients,
)
from repro.engine import get_engine
from repro.verify.coloring import assert_proper_coloring


def edge_case_graphs() -> list[tuple[str, Graph]]:
    return [
        ("empty", Graph(0)),
        ("edgeless", Graph(7)),  # isolated vertices only
        ("single edge + isolated", Graph(5, [(0, 3)])),
        ("perfect matching (Delta=1)", Graph(6, [(0, 1), (2, 3), (4, 5)])),
        ("star + isolated", Graph(8, [(0, i) for i in range(1, 6)])),
    ]


def assert_mother_parity(graph: Graph, colors: np.ndarray, m: int, d: int = 0, k: int = 1):
    ref = run_mother_algorithm(graph, colors, m, d=d, k=k, with_orientation=True)
    vec = run_mother_algorithm_vectorized(graph, colors, m, d=d, k=k, with_orientation=True)
    assert np.array_equal(ref.colors, vec.colors)
    assert np.array_equal(ref.parts, vec.parts)
    assert ref.rounds == vec.rounds
    assert ref.orientation == vec.orientation
    return vec


class TestGraphCompactionPrimitives:
    def test_src_index_matches_repeat_and_is_cached(self):
        g = generators.gnp(40, 0.2, seed=1)
        expected = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
        assert np.array_equal(g.src_index, expected)
        assert g.src_index is g.src_index  # built once, cached
        assert not g.src_index.flags.writeable

    def test_src_index_empty_graph(self):
        assert Graph(0).src_index.size == 0
        assert Graph(4).src_index.size == 0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=50),
        p=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_incident_csr_entries_property(self, n, p, seed):
        g = generators.gnp(n, p, seed=seed)
        rng = np.random.default_rng(seed)
        verts = np.sort(rng.choice(n, size=rng.integers(0, n + 1), replace=False))
        positions, rows = g.incident_csr_entries(verts)
        # Brute force: concatenate every vertex's CSR slice in order.
        expected_pos = np.concatenate(
            [np.arange(g.indptr[v], g.indptr[v + 1]) for v in verts]
        ) if verts.size else np.empty(0, dtype=np.int64)
        expected_rows = np.repeat(np.arange(verts.size), g.degrees[verts]) if verts.size \
            else np.empty(0, dtype=np.int64)
        assert np.array_equal(positions, expected_pos)
        assert np.array_equal(rows, expected_rows)

    def test_incident_csr_entries_empty_selection(self):
        g = generators.ring(6)
        positions, rows = g.incident_csr_entries(np.empty(0, dtype=np.int64))
        assert positions.size == 0 and rows.size == 0


class TestLazySequenceEvaluation:
    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(min_value=4, max_value=5000),
        delta=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_coefficients_reproduce_full_table(self, m, delta, seed):
        params = MotherParameters.derive(m=m, delta=delta, d=0, k=1)
        rng = np.random.default_rng(seed)
        colors = rng.integers(0, m, size=17, dtype=np.int64)
        table = evaluate_all_sequences(colors, params)
        coeffs = sequence_coefficients(colors, params)
        # Horner over the coefficients at every position must equal the table.
        xs = np.arange(params.q, dtype=np.int64)
        acc = np.zeros((colors.size, params.q), dtype=np.int64)
        for j in range(params.f, -1, -1):
            acc = (acc * xs[None, :] + coeffs[:, j][:, None]) % params.q
        assert np.array_equal(acc, table)


class TestMotherKernelEdgeCases:
    @pytest.mark.parametrize("name,graph", edge_case_graphs())
    def test_parity_on_degenerate_graphs(self, name, graph):
        colors = np.arange(graph.n, dtype=np.int64)
        m = max(graph.n, 2)
        res = assert_mother_parity(graph, colors, m)
        if graph.n:
            assert_proper_coloring(graph, res.colors)

    def test_parity_with_defect_on_star(self):
        graph = Graph(8, [(0, i) for i in range(1, 6)])
        colors = np.arange(8, dtype=np.int64)
        assert_mother_parity(graph, colors, 8, d=2, k=1)

    def test_single_batch_adoption(self):
        # Single-batch (Linial-style) run: every node must adopt in round 1 on
        # both backends — the chunked early-exit path of the compacted kernel.
        graph = generators.random_regular(40, 4, seed=9)
        colors, m = make_input_coloring(graph, seed=9)
        a = linial_color_reduction(graph, colors, m, backend="reference")
        b = linial_color_reduction(graph, colors, m, backend="array")
        assert a.rounds == b.rounds == 1
        assert np.array_equal(a.colors, b.colors)
        assert (b.parts == 1).all()

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        p=st.floats(min_value=0.0, max_value=0.5),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_parity_property_with_isolated_vertices(self, n, p, k, seed):
        # gnp with small p routinely produces isolated vertices and Delta = 1
        # components — exactly the shapes frontier compaction must not break.
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        assert_mother_parity(graph, colors, m, k=k)


class TestRemoveColorClassEdgeCases:
    def test_empty_graph(self):
        res = remove_color_class_reduction(Graph(0), np.empty(0, dtype=np.int64),
                                           backend="array")
        assert res.rounds == 0 and res.colors.size == 0

    def test_isolated_vertices_with_high_colors(self):
        g = Graph(6, [(0, 1)])
        colors = np.array([7, 9, 11, 13, 2, 0])
        a = remove_color_class_reduction(g, colors, backend="reference")
        b = remove_color_class_reduction(g, colors, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
        assert b.colors.max() <= g.max_degree

    def test_delta_one_matching(self):
        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        colors = np.array([4, 5, 6, 7, 8, 9])
        a = remove_color_class_reduction(g, colors, backend="reference")
        b = remove_color_class_reduction(g, colors, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
        assert_proper_coloring(g, b.colors, max_colors=2)


class TestKuhnWattenhoferArrayPath:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        p=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_parity(self, n, p, seed):
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        a = kuhn_wattenhofer_reduction(graph, colors, m, backend="reference")
        b = kuhn_wattenhofer_reduction(graph, colors, m, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
        assert a.color_space_size == b.color_space_size
        assert a.metadata["phases"] == b.metadata["phases"]
        assert_proper_coloring(graph, b.colors, max_colors=graph.max_degree + 1)

    def test_empty_graph(self):
        res = kuhn_wattenhofer_reduction(Graph(0), np.empty(0, dtype=np.int64), m=64,
                                         target_colors=4, backend="array")
        assert res.colors.size == 0
        # Round counting on the empty vertex set still follows the schedule.
        ref = kuhn_wattenhofer_reduction(Graph(0), np.empty(0, dtype=np.int64), m=64,
                                         target_colors=4, backend="reference")
        assert res.rounds == ref.rounds and res.metadata["phases"] == ref.metadata["phases"]

    def test_isolated_and_delta_one(self):
        g = Graph(7, [(0, 1), (2, 3)])
        colors = np.array([3, 9, 14, 2, 6, 11, 0])
        a = kuhn_wattenhofer_reduction(g, colors, m=16, backend="reference")
        b = kuhn_wattenhofer_reduction(g, colors, m=16, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds

    def test_unknown_backend_rejected(self):
        g = generators.ring(6)
        with pytest.raises(ValueError):
            kuhn_wattenhofer_reduction(g, np.arange(6) % 3, m=6, backend="gpu")

    def test_engine_contract_routing(self, random_regular8):
        colors, m = make_input_coloring(random_regular8, seed=4)
        via_array = get_engine("array").kuhn_wattenhofer(random_regular8, colors, m)
        via_reference = get_engine("reference").kuhn_wattenhofer(random_regular8, colors, m)
        assert via_array.metadata["backend"] == "array"
        assert via_reference.metadata["backend"] == "reference"
        assert np.array_equal(via_array.colors, via_reference.colors)
        assert via_array.rounds == via_reference.rounds


class TestValidationHoisting:
    def improper(self, graph: Graph) -> np.ndarray:
        return np.zeros(graph.n, dtype=np.int64)  # monochromatic everywhere

    def test_public_entries_still_validate(self):
        g = generators.ring(12)
        bad = self.improper(g)
        with pytest.raises(InputColoringError):
            kdelta_coloring(g, bad, m=12, k=1, backend="array")
        with pytest.raises(InputColoringError):
            iterated_color_reduction(g, bad, m=10**9)
        with pytest.raises(InputColoringError):
            pipelines.theorem13_coloring(g, bad, m=12, backend="array")

    def test_validate_input_false_skips_the_check(self):
        # Opt-out exists for interior calls; on a *proper* coloring the result
        # is identical with and without validation.
        g = generators.random_regular(30, 4, seed=2)
        colors, m = make_input_coloring(g, seed=2)
        a = kdelta_coloring(g, colors, m, k=1, backend="array")
        b = kdelta_coloring(g, colors, m, k=1, backend="array", validate_input=False)
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds

    def test_delta_plus_one_validates_exactly_once(self, monkeypatch):
        import repro.congest.ids as ids_mod
        import repro.core.algorithm1 as alg_mod
        import repro.core.linial as lin_mod
        import repro.core.pipelines as pip_mod
        import repro.core.vectorized as vec_mod

        real = ids_mod.validate_proper_coloring
        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        for mod in (alg_mod, lin_mod, pip_mod, vec_mod):
            monkeypatch.setattr(mod, "validate_proper_coloring", counting)

        # Large enough that Linial actually iterates (id space n^2 > 256 Delta^2);
        # with no reduction step the entry check is skipped too (IDs are
        # uniqueness-checked instead) and the count would be 0.
        g = generators.random_regular(200, 4, seed=5)
        res = pipelines.delta_plus_one_coloring(g, seed=5, backend="array")
        assert_proper_coloring(g, res.colors, max_colors=g.max_degree + 1)
        # Once at the Linial entry; every interior mother call skips it.
        assert len(calls) == 1


class TestCompactedPipelineParityOnDegenerateGraphs:
    @pytest.mark.parametrize("name,graph", edge_case_graphs())
    def test_delta_plus_one_both_backends(self, name, graph):
        a = pipelines.delta_plus_one_coloring(graph, seed=1, backend="reference")
        b = pipelines.delta_plus_one_coloring(graph, seed=1, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
        if graph.n:
            assert_proper_coloring(graph, b.colors, max_colors=max(1, graph.max_degree) + 1)
