"""Tests for the parameter calculus of Theorem 1.1."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import MotherParameters, ParameterError
from repro.fields.primes import is_prime


class TestDerivation:
    def test_linial_setting_constants(self):
        # m = Delta^4, d = 0: f = 4, X = 16 Delta, q < 16 Delta, so k = q gives
        # at most q^2 < 256 Delta^2 colors — the constants of Corollary 1.2.
        delta = 16
        params = MotherParameters.derive(m=delta ** 4, delta=delta, d=0, k=1)
        assert params.f == 4
        assert params.X == 16 * delta
        assert 2 * params.f * delta < params.q < 16 * delta
        assert params.color_space_size <= 256 * delta * delta or params.k == 1

    def test_q_is_prime_and_in_interval(self):
        for delta in (4, 8, 16, 32, 64):
            params = MotherParameters.derive(m=delta ** 4, delta=delta, d=0, k=1)
            assert is_prime(params.q)
            assert params.q > params.max_blocked_tuples

    def test_defective_setting(self):
        delta, d = 16, 4
        params = MotherParameters.derive(m=delta ** 4, delta=delta, d=d, k=1)
        assert params.Z == delta / (d + 1)
        assert params.q > 2 * params.f * params.Z

    def test_enough_polynomials(self):
        params = MotherParameters.derive(m=10 ** 6, delta=4, d=0, k=1)
        assert params.q ** (params.f + 1) >= 10 ** 6

    def test_degenerate_z_equal_one(self):
        # d = Delta - 1 gives Z = 1; the implementation clamps the log base.
        params = MotherParameters.derive(m=100, delta=4, d=3, k=1)
        assert params.q ** (params.f + 1) >= 100

    def test_round_bound_and_batches(self):
        params = MotherParameters.derive(m=256, delta=8, d=0, k=4)
        assert params.num_batches == math.ceil(params.q / 4)
        assert params.num_batches <= params.round_bound

    def test_describe_contains_all_keys(self):
        params = MotherParameters.derive(m=4096, delta=8, d=0, k=2)
        desc = params.describe()
        for key in ("m", "delta", "d", "k", "Z", "f", "q", "X", "round_bound", "color_space"):
            assert key in desc


class TestValidation:
    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            MotherParameters.derive(m=0, delta=4)

    def test_invalid_delta(self):
        with pytest.raises(ParameterError):
            MotherParameters.derive(m=16, delta=0)

    def test_invalid_defect(self):
        with pytest.raises(ParameterError):
            MotherParameters.derive(m=16, delta=4, d=4)
        with pytest.raises(ParameterError):
            MotherParameters.derive(m=16, delta=4, d=-1)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            MotherParameters.derive(m=16, delta=4, k=0)

    def test_constructor_rechecks_invariants(self):
        good = MotherParameters.derive(m=256, delta=8)
        with pytest.raises(ParameterError):
            MotherParameters(m=good.m, delta=good.delta, d=good.d, k=good.k, f=good.f, q=4)
        with pytest.raises(ParameterError):
            MotherParameters(m=good.m, delta=good.delta, d=good.d, k=good.k, f=0, q=good.q)


class TestColorEncoding:
    def test_round_trip(self):
        params = MotherParameters.derive(m=4096, delta=8, d=0, k=3)
        for x in range(params.q):
            for value in (0, 1, params.q - 1):
                encoded = params.encode_color(x, value)
                assert params.decode_color(encoded) == (x % params.k, value)
                assert 0 <= encoded < params.color_space_size or params.k > params.q

    @settings(max_examples=60, deadline=None)
    @given(
        delta=st.integers(min_value=2, max_value=40),
        d_frac=st.floats(min_value=0.0, max_value=0.9),
        k=st.integers(min_value=1, max_value=64),
    )
    def test_property_derived_invariants(self, delta, d_frac, k):
        d = int(d_frac * (delta - 1))
        m = delta ** 4
        params = MotherParameters.derive(m=m, delta=delta, d=d, k=k)
        assert is_prime(params.q)
        assert params.q > 2 * params.f * params.Z
        assert params.q ** (params.f + 1) >= m
        assert params.num_batches >= 1
        assert params.color_space_size >= params.q
