"""Tests for ruling sets (Lemma 3.2, Theorem 1.5, SEW13 baseline, MIS)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.congest.ids import greedy_coloring
from repro.core import ruling_sets
from repro.verify.ruling import assert_ruling_set, domination_radius, is_independent_set


class TestRulingSetFromColoring:
    def test_basic_properties(self):
        g = generators.random_regular(80, 6, seed=1)
        colors = greedy_coloring(g)
        num_colors = int(colors.max()) + 1
        res = ruling_sets.ruling_set_from_coloring(g, colors, num_colors, base=2)
        assert_ruling_set(g, res.vertices, r=res.r)
        assert res.size >= 1

    def test_round_count_is_base_times_phases(self):
        g = generators.random_regular(60, 4, seed=2)
        colors = greedy_coloring(g)
        num_colors = int(colors.max()) + 1
        for base in (2, 3, 5):
            res = ruling_sets.ruling_set_from_coloring(g, colors, num_colors, base=base)
            assert res.rounds == base * res.metadata["phases"]

    def test_larger_base_fewer_phases(self):
        g = generators.random_regular(100, 8, seed=3)
        colors, m = make_input_coloring(g, m=g.n, seed=3)
        small = ruling_sets.ruling_set_from_coloring(g, colors, m, base=2)
        large = ruling_sets.ruling_set_from_coloring(g, colors, m, base=16)
        assert large.r < small.r
        assert_ruling_set(g, small.vertices, r=small.r)
        assert_ruling_set(g, large.vertices, r=large.r)

    def test_invalid_base(self):
        g = generators.ring(6)
        with pytest.raises(ValueError):
            ruling_sets.ruling_set_from_coloring(g, np.zeros(6, dtype=int), 1, base=1)

    def test_colors_out_of_range(self):
        g = generators.ring(6)
        with pytest.raises(ValueError):
            ruling_sets.ruling_set_from_coloring(g, np.arange(6), 3, base=2)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=60),
        p=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=1000),
        base=st.integers(min_value=2, max_value=6),
    )
    def test_property_ruling_set(self, n, p, seed, base):
        g = generators.gnp(n, p, seed=seed)
        colors = greedy_coloring(g)
        num_colors = int(colors.max()) + 1 if g.n else 1
        res = ruling_sets.ruling_set_from_coloring(g, colors, num_colors, base=base)
        assert is_independent_set(g, res.vertices)
        if g.n:
            radius = domination_radius(g, res.vertices)
            assert 0 <= radius <= res.r


class TestMisFromColoring:
    def test_maximal_independent_set(self):
        g = generators.random_regular(70, 6, seed=4)
        colors = greedy_coloring(g)
        res = ruling_sets.mis_from_coloring(g, colors, int(colors.max()) + 1)
        assert is_independent_set(g, res.vertices)
        assert domination_radius(g, res.vertices) <= 1
        assert res.r == 1

    def test_complete_graph_single_vertex(self):
        g = generators.complete_graph(7)
        colors = greedy_coloring(g)
        res = ruling_sets.mis_from_coloring(g, colors, 7)
        assert res.size == 1


class TestTheorem15AndBaseline:
    @pytest.mark.parametrize("r", [2, 3])
    def test_theorem15_valid(self, r):
        g = generators.random_regular(80, 8, seed=5)
        colors, m = make_input_coloring(g, seed=5)
        res = ruling_sets.ruling_set_theorem15(g, colors, m, r=r)
        assert_ruling_set(g, res.vertices, r=max(r, res.r))

    def test_theorem15_requires_r_at_least_two(self):
        g = generators.ring(8)
        colors, m = make_input_coloring(g, seed=1)
        with pytest.raises(ValueError):
            ruling_sets.ruling_set_theorem15(g, colors, m, r=1)

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_sew13_baseline_valid(self, r):
        g = generators.random_regular(80, 8, seed=6)
        colors, m = make_input_coloring(g, seed=6)
        res = ruling_sets.ruling_set_sew13_baseline(g, colors, m, r=r)
        assert_ruling_set(g, res.vertices, r=max(r, res.r))

    def test_theorem15_beats_baseline_ruling_phase(self):
        # The point of Theorem 1.5: fewer colors entering Lemma 3.2 means a
        # smaller base B and hence fewer ruling-phase rounds for the same r.
        g = generators.random_regular(120, 16, seed=7)
        colors, m = make_input_coloring(g, seed=7)
        ours = ruling_sets.ruling_set_theorem15(g, colors, m, r=2, backend="array")
        base = ruling_sets.ruling_set_sew13_baseline(g, colors, m, r=2, backend="array")
        assert ours.metadata["ruling_rounds"] < base.metadata["ruling_rounds"]
