"""Tests for the coloring verification helpers."""

import numpy as np
import pytest

from repro.congest import generators
from repro.verify.coloring import (
    VerificationError,
    assert_defective_coloring,
    assert_proper_coloring,
    color_classes,
    count_colors,
    defect_vector,
    is_proper_coloring,
    max_defect,
)


class TestProperColoring:
    def test_proper_on_ring(self):
        g = generators.ring(6)
        assert is_proper_coloring(g, np.array([0, 1, 0, 1, 0, 1]))

    def test_improper_detected(self):
        g = generators.ring(5)
        assert not is_proper_coloring(g, np.array([0, 1, 0, 1, 0]))

    def test_assert_proper_raises_with_edge_info(self):
        g = generators.path(3)
        with pytest.raises(VerificationError, match="monochromatic"):
            assert_proper_coloring(g, np.array([7, 7, 1]))

    def test_assert_proper_max_colors(self):
        g = generators.path(4)
        with pytest.raises(VerificationError, match="colors"):
            assert_proper_coloring(g, np.array([0, 1, 2, 3]), max_colors=2)

    def test_wrong_shape(self):
        g = generators.path(3)
        with pytest.raises(VerificationError):
            is_proper_coloring(g, np.array([0, 1]))

    def test_empty_graph(self):
        g = generators.empty_graph(4)
        assert is_proper_coloring(g, np.zeros(4))


class TestCountingAndClasses:
    def test_count_colors(self):
        g = generators.path(5)
        assert count_colors(g, np.array([3, 5, 3, 5, 9])) == 3

    def test_count_colors_object_dtype(self):
        g = generators.path(3)
        colors = np.empty(3, dtype=object)
        colors[:] = [(0, 1), (1, 0), (0, 1)]
        assert count_colors(g, colors) == 2

    def test_color_classes_partition(self):
        g = generators.ring(6)
        colors = np.array([0, 1, 0, 1, 0, 1])
        classes = color_classes(g, colors)
        assert sorted(classes) == [0, 1]
        assert classes[0].tolist() == [0, 2, 4]

    def test_count_colors_empty(self):
        g = generators.empty_graph(0)
        assert count_colors(g, np.array([])) == 0


class TestDefects:
    def test_defect_vector_proper(self):
        g = generators.ring(6)
        assert defect_vector(g, np.array([0, 1, 0, 1, 0, 1])).max() == 0

    def test_defect_vector_counts_monochromatic_neighbors(self):
        g = generators.star(5)
        colors = np.array([0, 0, 0, 1, 1])
        vec = defect_vector(g, colors)
        assert vec[0] == 2
        assert vec[1] == 1 and vec[2] == 1
        assert vec[3] == 0

    def test_max_defect(self):
        g = generators.complete_graph(4)
        assert max_defect(g, np.zeros(4)) == 3

    def test_assert_defective_passes(self):
        g = generators.complete_graph(4)
        assert_defective_coloring(g, np.zeros(4), d=3)

    def test_assert_defective_fails(self):
        g = generators.complete_graph(4)
        with pytest.raises(VerificationError, match="defect"):
            assert_defective_coloring(g, np.zeros(4), d=2)

    def test_assert_defective_color_budget(self):
        g = generators.path(4)
        with pytest.raises(VerificationError):
            assert_defective_coloring(g, np.array([0, 1, 2, 3]), d=1, max_colors=3)
